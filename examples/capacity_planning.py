#!/usr/bin/env python
"""SLO-driven capacity planning: from application profile to <n, M>.

The paper assumes the resource requirement comes from "off-line
QoS/resource profiling" (§3) without saying how.  This example shows
the library's profiler doing that job: declare your application's
per-request profile and its service level objective, derive the
``<n, M>`` to buy, deploy it, and verify the SLO holds under the
declared peak load.

Run:  python examples/capacity_planning.py
"""

from repro.core import build_paper_testbed
from repro.core.auth import Credentials
from repro.core.profiling import ResourceProfiler, ServiceLoadSpec
from repro.image.profiles import make_s1_web_content
from repro.sim.rng import RandomStreams
from repro.workload.apps import web_request_mix
from repro.workload.clients import ClientPool
from repro.workload.siege import Siege

# -- 1. Declare what you know about your application ---------------------------
DATASET_MB = 0.1
spec = ServiceLoadSpec(
    request_mix=web_request_mix(DATASET_MB),  # per-request CPU + syscalls
    response_mb=DATASET_MB,
    peak_rps=20.0,                            # expected peak demand
    target_response_s=0.3,                    # the SLO
    working_set_mb=32.0,
    dataset_mb=64.0,
)

# -- 2. Derive <n, M> -----------------------------------------------------------
report = ResourceProfiler().derive(spec)
req = report.requirement
print("profiling result:")
print(f"  per-request holding time on one M: {report.holding_time_s*1e3:.1f} ms")
print(f"  one M sustains:                    {report.unit_capacity_rps:.2f} req/s")
print(f"  max safe utilisation for the SLO:  {report.max_utilisation:.2f}")
print(f"  => requirement:                    {req}")
print(f"  expected response at peak:         {report.expected_response_s*1e3:.0f} ms "
      f"(SLO {spec.target_response_s*1e3:.0f} ms)")

# -- 3. Deploy it ---------------------------------------------------------------
testbed = build_paper_testbed(seed=23)
repo = testbed.add_repository()
repo.publish(make_s1_web_content())
testbed.agent.register_asp("acme", "supersecret")
creds = Credentials("acme", "supersecret")
testbed.run(testbed.agent.service_creation(creds, "web", repo, "web-content", req))
record = testbed.master.get_service("web")
print(f"\ndeployed as: {record.switch.config.render()}")

# -- 4. Replay the declared peak load and check the SLO -------------------------
clients = ClientPool(testbed.lan, n=4)
siege = Siege(testbed.sim, record.switch, clients, RandomStreams(23), DATASET_MB)
result = testbed.run(siege.run_open_loop(rate_rps=spec.peak_rps, duration_s=60.0))

measured = result.mean_response_s()
print(f"\nmeasured at {spec.peak_rps:.0f} req/s for 60 s: "
      f"{result.completed} requests, mean {measured*1e3:.0f} ms, "
      f"p95 {result.overall.percentile(95)*1e3:.0f} ms")
verdict = "MET" if measured <= spec.target_response_s else "MISSED"
print(f"SLO {spec.target_response_s*1e3:.0f} ms: {verdict} "
      "(the profiler prices M's shaped bandwidth conservatively, so the "
      "unshaped testbed comes in well under)")
