#!/usr/bin/env python
"""Observability: trace, meter and export one siege against a service.

Deploys the paper's web-content service on the two-host testbed, replays
an open-loop siege through the service switch under an ambient
:class:`~repro.obs.Observability` hub, then shows all three pillars:

* a per-request latency breakdown (dispatch / queue_wait / cpu_service /
  tx segments that sum to each measured response time),
* the Prometheus text exposition of the platform metrics,
* a Chrome trace JSON export, loadable in Perfetto / chrome://tracing
  and readable with ``soda-obs trace-summary`` / ``soda-obs
  chrome-export``.

Run:  python examples/observability.py [OUT_DIR]

OUT_DIR defaults to ``obs-demo/``; the Chrome trace lands at
``OUT_DIR/siege.chrome.json`` (plus the raw spans and metrics dumps).
"""

import os
import sys

from repro.core import MachineConfig, ResourceRequirement, build_paper_testbed
from repro.core.auth import Credentials
from repro.image.profiles import make_s1_web_content
from repro.obs import Observability
from repro.workload.clients import ClientPool
from repro.workload.siege import Siege

out_dir = sys.argv[1] if len(sys.argv) > 1 else "obs-demo"

# -- 1. Activate observability, then build everything inside it ---------------
obs = Observability(tracing=True, metrics=True)
with obs.activate():
    testbed = build_paper_testbed(seed=11)
    repo = testbed.add_repository()
    repo.publish(make_s1_web_content())
    testbed.agent.register_asp("acme", "supersecret")
    creds = Credentials("acme", "supersecret")
    requirement = ResourceRequirement(n=2, machine=MachineConfig())
    testbed.run(
        testbed.agent.service_creation(creds, "web", repo, "web-content", requirement)
    )
    record = testbed.master.get_service("web")

    # -- 2. Replay an open-loop siege through the switch ----------------------
    clients = ClientPool(testbed.lan, n=2)
    siege = Siege(
        testbed.sim, record.switch, clients, streams=testbed.streams, dataset_mb=0.5
    )
    report = testbed.run(siege.run_open_loop(rate_rps=20.0, duration_s=5.0))

print(
    f"siege: {report.completed} requests, "
    f"mean response {report.mean_response_s() * 1e3:.1f} ms, "
    f"{report.failures} failures"
)

# -- 3. Pillar one: per-request latency breakdown -----------------------------
print("\nper-request latency breakdown (first 10 requests):")
print(obs.breakdown(limit=10))
print("\nhottest span lanes:")
print(obs.flame_summary(top=6))

# -- 4. Pillar two: Prometheus metrics dump -----------------------------------
print("\nplatform metrics (Prometheus text exposition, switch family):")
for line in obs.prometheus().splitlines():
    if "soda_switch" in line or line.startswith("# TYPE soda_switch"):
        print(line)

# -- 5. Pillar three: export for offline tooling ------------------------------
os.makedirs(out_dir, exist_ok=True)
chrome_path = os.path.join(out_dir, "siege.chrome.json")
obs.write_chrome_trace(chrome_path)
obs.write_spans(os.path.join(out_dir, "siege.spans.json"))
obs.write_prometheus(os.path.join(out_dir, "siege.prom"))
print(f"\nwrote {chrome_path} (open in Perfetto or chrome://tracing)")
print(f"inspect offline:  soda-obs trace-summary {out_dir}/siege.spans.json")
