#!/usr/bin/env python
"""The §5 attack-isolation demonstration, end to end.

Two services co-exist on the HUP (Figure 2): the web content service
(2M node on seattle + 1M node on tacoma) and a honeypot whose ghttpd
"victim" server carries a remotely exploitable buffer overflow.  An
attacker repeatedly owns and crashes the honeypot while real clients
browse the web service — and the blast radius provably stops at the
honeypot's guest OS boundary.

Run:  python examples/honeypot_isolation.py
"""

from repro.experiments._testbed import deploy_paper_services
from repro.sim.rng import RandomStreams
from repro.workload.attack import AttackCampaign
from repro.workload.siege import Siege

deployment = deploy_paper_services(seed=21)
testbed = deployment.testbed

print("deployed services:")
for record in (deployment.web, deployment.honeypot):
    placement = ", ".join(
        f"{n.units}M on {n.host.name} ({n.endpoint})" for n in record.nodes
    )
    print(f"  {record.name}: {placement}")

# The attacker machine joins the LAN and goes to work on the honeypot.
attacker = testbed.add_client("attacker")
campaign = AttackCampaign(
    testbed.sim,
    deployment.honeypot.switch,
    attacker,
    siblings=[n for n in deployment.web.nodes if n.host.name == "seattle"],
)

# Meanwhile, legitimate clients keep hammering the web service.
siege = Siege(
    testbed.sim, deployment.web.switch, deployment.clients,
    RandomStreams(21), dataset_mb=0.25,
)

attack_proc = testbed.spawn(campaign.run(waves=5), name="attack-campaign")
report = testbed.run(siege.run_open_loop(rate_rps=10.0, duration_s=45.0))
outcome = testbed.sim.run_until_process(attack_proc)

print(f"\nattack campaign: {outcome.waves} waves")
print(f"  guest-root shells bound:   {outcome.shells_bound}")
print(f"  honeypot guest crashes:    {outcome.guest_crashes}")
print(f"  honeypot reboots:          {outcome.reboots}")
print(f"  HOST OS compromises:       {outcome.host_compromises}")
print(f"  sibling node compromises:  {outcome.sibling_compromises}")
print(f"  contained to the guest:    {outcome.contained}")

print(f"\nweb service during the attack: {report.completed} requests, "
      f"{report.failures} failures, mean {report.mean_response_s() * 1e3:.0f} ms")

# The Figure 3 evidence: ps -ef inside both co-located guests.
web_node = next(n for n in deployment.web.nodes if n.host.name == "seattle")
pot_node = deployment.honeypot.nodes[0]
print("\n--- web content node (seattle), guest ps -ef ---")
print(web_node.vm.processes.ps_ef())
print("\n--- honeypot node (seattle), guest ps -ef ---")
print(pot_node.vm.processes.ps_ef())
print("\nTwo roots, two worlds: each 'root' above is a guest root.")
