#!/usr/bin/env python
"""Market economics end to end: spot prices, bids, budgets, fairness.

Two views of the same subsystem:

1. **The control plane** — a real HUP whose SODA Agent runs the market
   admission hook: a well-funded gold tenant clears the gate while a
   low bidder is priced out and an underfunded one is budget-refused,
   all before the Master spends a cycle on placement.
2. **The market at scale** — the seeded contention scenario (dozens of
   tenants, bursty demand, utilization-driven repricing) run under both
   the market policy and flat-rate FCFS, with revenue, SLA credits,
   Jain's fairness index, and starvation side by side.

Run:  PYTHONPATH=src python examples/market_economics.py
"""

from repro.core import MachineConfig, ResourceRequirement
from repro.core.api import HUPTestbed
from repro.core.auth import Credentials
from repro.core.errors import AdmissionError
from repro.host.machine import make_seattle
from repro.image.profiles import make_s1_web_content
from repro.market import (
    EconomicAdmission,
    MarketAdmissionHook,
    SpotPricer,
    TenantRegistry,
    fast_params,
    run_market_scenario,
)
from repro.sla.contract import ServiceClass

# -- 1. the market gate on a real SODA Agent ------------------------------------
print("== the market gate on the SODA Agent ==")
testbed = HUPTestbed(seed=42)
testbed.add_host(make_seattle(testbed.sim))
testbed.finalize()
repo = testbed.add_repository()
repo.publish(make_s1_web_content())

tenants = TenantRegistry(testbed.agent.registry)
pricer = SpotPricer()
testbed.agent.admission = MarketAdmissionHook(
    tenants, pricer, EconomicAdmission()
)

tenants.register("goldcorp", budget=50.0, bid_per_m_hour=3.0,
                 priority=ServiceClass.GOLD)
tenants.register("pennywise", budget=50.0, bid_per_m_hour=0.4)
tenants.register("shoestring", budget=0.5, bid_per_m_hour=3.0)

requirement = ResourceRequirement(n=1, machine=MachineConfig())
for name in ("goldcorp", "pennywise", "shoestring"):
    creds = Credentials(name, f"{name}-secret")
    try:
        reply = testbed.run(testbed.agent.service_creation(
            creds, f"{name}-web", repo, "web-content", requirement
        ))
        print(f"  {name:<11} ADMITTED  ({reply.service_name} primed in "
              f"{reply.primed_in_s:.1f}s at spot rate {pricer.rate:.2f})")
    except AdmissionError as exc:
        print(f"  {name:<11} REFUSED   ({exc})")

# -- 2. market vs FCFS under seeded contention ----------------------------------
print("\n== market vs FCFS under bursty contention ==")
params = fast_params(duration_s=200.0, n_tenants=80)
for policy in ("market", "fcfs"):
    report = run_market_scenario(seed=7, policy=policy, params=params)
    acc = report.accountant
    lo = min(r for _t, _u, r in report.price_history)
    hi = max(r for _t, _u, r in report.price_history)
    print(f"  {policy:>6}: revenue {report.revenue():7.2f}  "
          f"credits {report.total_credits():6.2f}  "
          f"jain {acc.jain_goodput():.3f}  "
          f"starved {len(acc.starved()):3d}  "
          f"rejected {report.rejection_rate():.0%}  "
          f"preempted {report.preempted:3d}  "
          f"rate {lo:.2f}-{hi:.2f}")
    assert report.conservation_holds()
    assert report.over_budget_tenants() == []
print("  (conservation + budget invariants checked on both runs)")
