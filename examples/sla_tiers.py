#!/usr/bin/env python
"""Three SLA tiers under a load spike: shedding, breach, credit.

One ASP hosts the same web content service three times — under gold,
silver, and bronze contracts — and fires an identical overload spike at
each.  Watch the SLA subsystem work end to end:

* class-priority shedding drops bronze traffic first, then silver,
  keeping gold's backlog (and latency) the flattest;
* gold's SLO monitor still records breaches during the spike, and a
  breach escalator turns them into a real SODA_service_resizing call;
* at settlement the violations become billing credits, and the invoice
  nets accrual minus credits.

Run:  python examples/sla_tiers.py
"""

from repro.core import MachineConfig, ResourceRequirement, build_paper_testbed
from repro.core.auth import Credentials
from repro.core.autoscaler import AutoscalerConfig, ReactiveAutoscaler
from repro.image.profiles import make_s1_web_content
from repro.sim.rng import RandomStreams
from repro.sla import (
    BreachEscalator,
    PenaltySettler,
    SLAContract,
    SLOMonitor,
    compliance_result,
    compliance_summary,
)
from repro.workload.clients import ClientPool
from repro.workload.replay import TraceReplay, poisson_trace

SPIKE_RPS = 30.0        # ~3x one machine instance's capacity
SPIKE_DURATION_S = 45.0
DATASET_MB = 0.25
MONITOR_S = 90.0

# -- one service per tier, each with a contract ---------------------------------
testbed = build_paper_testbed(seed=17)
repo = testbed.add_repository()
repo.publish(make_s1_web_content())
testbed.agent.register_asp("acme", "supersecret")
creds = Credentials("acme", "supersecret")

contracts = {
    "gold": SLAContract.gold(p95_s=0.5),
    "silver": SLAContract.silver(p95_s=1.5),
    "bronze": SLAContract.bronze(p95_s=5.0),
}
records, monitors = {}, {}
for name, contract in contracts.items():
    testbed.run(
        testbed.agent.service_creation(
            creds, name, repo, "web-content",
            ResourceRequirement(n=1, machine=MachineConfig()), sla=contract,
        )
    )
    records[name] = testbed.master.get_service(name)
    monitors[name] = SLOMonitor(testbed.sim, name, contract, check_period_s=5.0)
    monitors[name].attach(records[name].switch)
    testbed.spawn(monitors[name].run(MONITOR_S), name=f"slo:{name}")
    objectives = ", ".join(str(o) for o in contract.latency)
    print(f"{name:>6}: {objectives}; shed limit "
          f"{records[name].switch.shedder.queue_limit} queued requests")

# -- sustained gold breaches force capacity, not just credits -------------------
autoscaler = ReactiveAutoscaler(
    testbed.sim, testbed.agent, creds, "gold", repo,
    AutoscalerConfig(target_response_s=1000.0, min_units=1, max_units=2,
                     check_period_s=10.0),
)
BreachEscalator(autoscaler, sustained=2).wire(monitors["gold"])
testbed.spawn(autoscaler.run(MONITOR_S), name="autoscaler")

# -- the identical spike against every tier -------------------------------------
streams = RandomStreams(17)
clients = ClientPool(testbed.lan, n=6)
for name in contracts:
    trace = poisson_trace(
        streams.spawn(f"load-{name}"), SPIKE_RPS, SPIKE_DURATION_S,
        dataset_mb=DATASET_MB,
    )
    testbed.spawn(
        TraceReplay(testbed.sim, records[name].switch, clients, trace).run(),
        name=f"replay:{name}",
    )
testbed.sim.run()

# -- what shedding did -----------------------------------------------------------
print(f"\nspike: {SPIKE_RPS:.0f} req/s for {SPIKE_DURATION_S:.0f} s at each tier")
for name in ("bronze", "silver", "gold"):
    monitor = monitors[name]
    first = monitor.first_shed_time
    when = f"first at t={first:.1f}s" if first is not None else "never"
    print(f"{name:>6}: shed {monitor.total_shed:4d} of "
          f"{monitor.total_requests} requests ({when}); "
          f"{len(monitor.violations)} SLO violations")

print(f"\ngold breaches escalated: {autoscaler.breach_resizes} resize(s)")
for decision in autoscaler.decisions:
    print(f"  t={decision.time:5.1f}s  {decision.from_units}M -> "
          f"{decision.to_units}M ({decision.reason})")

# -- settlement: violations become credits, netted on the invoice ----------------
settler = PenaltySettler(testbed.agent.ledger)
for name, contract in contracts.items():
    settlement = settler.settle(
        name, "acme", contract.penalties, monitors[name].violations,
        now=testbed.now,
    )
    if settlement.credit > 0:
        capped = " (capped)" if settlement.capped else ""
        print(f"{name:>6}: {settlement.n_violations} violations -> "
              f"credit {settlement.credit:.4f}{capped}")

gross = testbed.agent.ledger.gross("acme", testbed.now)
credit = testbed.agent.sla_credit(creds)
invoice = testbed.agent.invoice(creds)
print(f"\ninvoice: gross {gross:.4f} - SLA credits {credit:.4f} "
      f"= {invoice:.4f}")

summaries = [
    compliance_summary(monitors[name], "acme", testbed.agent.ledger, testbed.now)
    for name in ("gold", "silver", "bronze")
]
print("\n" + compliance_result(summaries).render())
