#!/usr/bin/env python
"""Replacing the request switching policy with a service-specific one.

"the service provider can replace the default request switching policy
with a service-specific policy" (§3.4).  This example compares the
default weighted round-robin against an ASP-written policy that pins
all requests to the biggest node, and shows that even a *broken* custom
policy degrades only its own service.

Run:  python examples/custom_switch_policy.py
"""

from repro.core.policies import CustomPolicy
from repro.experiments._testbed import deploy_paper_services
from repro.sim.rng import RandomStreams
from repro.workload.siege import Siege


def measure(policy_name: str, policy=None, seed: int = 31) -> None:
    deployment = deploy_paper_services(seed=seed)
    testbed = deployment.testbed
    if policy is not None:
        deployment.web.switch.set_policy(policy)
    siege = Siege(
        testbed.sim, deployment.web.switch, deployment.clients,
        RandomStreams(seed), dataset_mb=1.0,
    )
    report = testbed.run(siege.run_open_loop(rate_rps=4.0, duration_s=40.0))
    per_node = {
        node.name.split("@")[1]: report.requests_served_by(node.name)
        for node in deployment.web.nodes
    }
    print(f"{policy_name:<34} mean RT {report.mean_response_s() * 1e3:7.1f} ms   "
          f"p95 {report.overall.percentile(95) * 1e3:7.1f} ms   per-node {per_node}")


print("policy comparison on the 2M (seattle) + 1M (tacoma) layout:\n")

# 1. The SODA default.
measure("weighted round-robin (default)")

# 2. An ASP-specific policy: "my data is hot on the big node".
pin_to_biggest = CustomPolicy(
    lambda candidates, weights: max(candidates, key=lambda n: weights.get(n.name, 1)),
    name="pin-to-biggest",
)
measure("custom: pin to the biggest node", pin_to_biggest)

# 3. A *broken* custom policy returning garbage.  The switch contains
#    the damage (falls back to a healthy node) — and other services on
#    the HUP are untouched by construction (§5).
broken = CustomPolicy(lambda candidates, weights: None, name="broken")
measure("custom: broken (returns None)", broken)

print("\nAll three runs completed: an ill-behaving policy hurts only its "
      "own service's balance, never the platform.")
