#!/usr/bin/env python
"""Quickstart: host a service on a HUP in ~40 lines.

Builds the paper's two-host testbed (seattle + tacoma on a 100 Mbps
LAN), registers an ASP, publishes the web content service image, makes
a SODA_service_creation call for <3, M>, serves a few client requests
through the service switch, resizes, and tears down.

Run:  python examples/quickstart.py
"""

from repro.core import MachineConfig, ResourceRequirement, build_paper_testbed
from repro.core.auth import Credentials
from repro.image.profiles import make_s1_web_content
from repro.workload.apps import web_request

# -- 1. Assemble the HUP -----------------------------------------------------
testbed = build_paper_testbed(seed=7)
repo = testbed.add_repository()
repo.publish(make_s1_web_content())

# -- 2. Register as an ASP ----------------------------------------------------
testbed.agent.register_asp("acme", "supersecret", contact="ops@acme.example")
creds = Credentials("acme", "supersecret")

# -- 3. SODA_service_creation: <3, M> with the Table 1 machine config ---------
requirement = ResourceRequirement(n=3, machine=MachineConfig())
reply = testbed.run(
    testbed.agent.service_creation(creds, "web", repo, "web-content", requirement)
)
print(f"service created in {reply.primed_in_s:.1f} simulated seconds")
print(f"virtual service nodes: {list(reply.node_endpoints)}")
print(f"switch endpoint:       {reply.switch_endpoint}")

record = testbed.master.get_service("web")
print("\nservice configuration file (paper Table 3 format):")
print(record.switch.config.render())

# -- 4. Serve client requests through the service switch ----------------------
client = testbed.add_client("laptop-1")


def browse(sim):
    for i in range(6):
        response = yield sim.process(record.switch.serve(web_request(client, 0.5)))
        print(
            f"  request {i}: {response.elapsed * 1e3:6.1f} ms "
            f"(served by {response.node_name})"
        )


print("\nserving 6 requests (0.5 MB dataset):")
testbed.run(browse(testbed.sim))

# -- 5. Resize to <4, M> (the two-host HUP's ceiling), then tear down ----------
testbed.run(testbed.agent.service_resizing(creds, "web", repo, 4))
print(f"\nresized: total capacity now {testbed.master.get_service('web').total_units} M")

testbed.run(testbed.agent.service_teardown(creds, "web"))
print(f"torn down; invoice: {testbed.agent.invoice(creds):.6f} machine-hours' worth")
