#!/usr/bin/env python
"""The paper's motivating scenario (§1): a bioinformatics institute
outsources its genome matching service to a HUP.

"a bioinformatics institute wishes to provide a genome matching service
to the research community, without using its limited IT resources.  It
can make a service creation call to a HUP, and the entire image of the
genome matching service will be downloaded to and bootstrapped in the
HUP."

The script creates the S_III (LFS, 400 MB) genome service, watches the
priming pipeline (download -> tailor -> boot), monitors it like the
institute's staff would, scales it up when the community piles on, and
inspects the bill.

Run:  python examples/genome_service.py
"""

from repro.core import MachineConfig, ResourceRequirement, build_paper_testbed
from repro.core.auth import Credentials
from repro.image.profiles import make_s3_lfs

# The institute's machine publishes the (heavy) service image.
testbed = build_paper_testbed(seed=13)
repo = testbed.add_repository("bio-institute")
image = make_s3_lfs()
repo.publish(image)
print(f"published {image.name}: {image.size_mb:.0f} MB "
      f"({len(image.tailored_rootfs().services)} system services after tailoring)")

testbed.agent.register_asp("bio-institute", "genomes-rock")
creds = Credentials("bio-institute", "genomes-rock")

# Genome matching is compute-heavy: a beefier M than Table 1's example.
machine = MachineConfig(cpu_mhz=1024.0, mem_mb=256.0, disk_mb=2048.0, bw_mbps=10.0)
requirement = ResourceRequirement(n=1, machine=machine)

reply = testbed.run(
    testbed.agent.service_creation(creds, "genome-matching", repo, image.name, requirement)
)
print(f"\nprimed in {reply.primed_in_s:.1f} s "
      f"(400 MB image download dominates on the 100 Mbps LAN)")
print(f"node: {reply.node_endpoints[0]} (capacity {reply.node_capacities[0]} M)")

# Staff monitoring "as if the service were hosted locally" (§1): the ASP
# has guest-root visibility into its own node, and only its own node.
record = testbed.agent.service_info(creds, "genome-matching")
node = record.nodes[0]
print(f"\nstaff view of node {node.name} (guest OS ps -ef):")
print(node.vm.processes.ps_ef())

# Demand grows: the community piles on, the institute resizes to <2, M>
# (a second 1024 MHz instance lands on tacoma).
testbed.run(testbed.agent.service_resizing(creds, "genome-matching", repo, 2))
record = testbed.agent.service_info(creds, "genome-matching")
print(f"\nafter resize: {record.total_units} machine instances across "
      f"{len(record.nodes)} virtual service node(s)")
print(record.switch.config.render())

# A month later, the bill arrives (simulated seconds are cheap).
testbed.sim.run(until=testbed.now + 30 * 24 * 3600.0)
print(f"\n30-day invoice: {testbed.agent.invoice(creds):.1f} "
      f"(machine-instance-hours at the default rate)")

testbed.run(testbed.agent.service_teardown(creds, "genome-matching"))
print("service torn down — the institute's own IT was never touched.")
