#!/usr/bin/env python
"""Elastic hosting: a diurnal workload, the resizing API, and billing.

A long-lived application service (§1) sees daily load swings.  This
example drives the web content service with a diurnal (sinusoidal)
arrival trace, lets a reactive autoscaler call SODA_service_resizing
as latency moves, and compares the machine-hours billed against static
peak provisioning — the utility-computing pitch, quantified with
nothing but the paper's own API.

Run:  python examples/diurnal_autoscaler.py
"""

from repro.core import MachineConfig, ResourceRequirement, build_paper_testbed
from repro.core.auth import Credentials
from repro.core.autoscaler import AutoscalerConfig, ReactiveAutoscaler
from repro.image.profiles import make_s1_web_content
from repro.sim.rng import RandomStreams
from repro.workload.clients import ClientPool
from repro.workload.replay import TraceReplay, diurnal_trace

PERIOD_S = 600.0         # one compressed "day"
DURATION_S = 2 * PERIOD_S
DATASET_MB = 0.5

# -- deploy at minimal capacity -------------------------------------------------
testbed = build_paper_testbed(seed=29)
repo = testbed.add_repository()
repo.publish(make_s1_web_content())
testbed.agent.register_asp("acme", "supersecret")
creds = Credentials("acme", "supersecret")
testbed.run(
    testbed.agent.service_creation(
        creds, "web", repo, "web-content",
        ResourceRequirement(n=1, machine=MachineConfig()),
    )
)
record = testbed.master.get_service("web")

# -- the workload: two compressed days of diurnal traffic -----------------------
streams = RandomStreams(29)
trace = diurnal_trace(
    streams, base_rps=2.0, peak_factor=8.0, period_s=PERIOD_S,
    duration_s=DURATION_S, dataset_mb=DATASET_MB,
)
print(f"trace: {len(trace)} requests over {DURATION_S:.0f} s "
      f"(rate swings 2..16 req/s across each {PERIOD_S:.0f} s 'day')")

clients = ClientPool(testbed.lan, n=4)
replay = TraceReplay(testbed.sim, record.switch, clients, trace)

# -- the controller ---------------------------------------------------------------
autoscaler = ReactiveAutoscaler(
    testbed.sim, testbed.agent, creds, "web", repo,
    AutoscalerConfig(
        target_response_s=0.25, min_units=1, max_units=4,
        check_period_s=30.0, min_samples=4,
    ),
)

replay_proc = testbed.spawn(replay.run(), name="diurnal-replay")
testbed.run(autoscaler.run(DURATION_S))
report = testbed.sim.run_until_process(replay_proc)

# -- results ------------------------------------------------------------------------
print(f"\nserved {report.completed} requests, {report.failures} failures; "
      f"mean RT {report.mean_response_s()*1e3:.0f} ms, "
      f"p95 {report.overall.percentile(95)*1e3:.0f} ms")

print(f"\nautoscaler: {autoscaler.scale_ups} scale-ups, "
      f"{autoscaler.scale_downs} scale-downs")
for decision in autoscaler.decisions:
    direction = "+" if decision.to_units > decision.from_units else "-"
    print(f"  t={decision.time:7.1f}s  {decision.from_units}M -> "
          f"{decision.to_units}M ({direction}) after observing "
          f"{decision.observed_response_s*1e3:.0f} ms ({decision.reason})")

elastic_hours = testbed.agent.ledger.machine_hours("web", now=testbed.now)
peak_units = max(units for _, units in autoscaler.capacity_timeline)
static_hours = peak_units * testbed.now / 3600.0
print(f"\nbilling: elastic {elastic_hours:.3f} machine-hours vs "
      f"{static_hours:.3f} if statically provisioned at the peak "
      f"({peak_units}M) — {100 * (1 - elastic_hours / static_hours):.0f}% saved")
