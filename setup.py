"""Legacy setup shim: the sandbox has no `wheel` package and no network,
so PEP 660 editable installs (which build a wheel) fail. `setup.py
develop` installs an egg-link without building a wheel."""
from setuptools import setup

setup()
