"""Benchmark: regenerate Table 4 (syscall-level slow-down)."""

from conftest import run_benched

from repro.experiments import table4_syscall


def test_bench_table4(benchmark):
    result = run_benched(benchmark, table4_syscall.run)
    assert result.all_within_tolerance
    # Every syscall shows a 18-30x slow-down; gettimeofday is worst.
    slowdowns = {row[0]: float(row[3].rstrip("x")) for row in result.rows}
    for name, factor in slowdowns.items():
        assert 18.0 <= factor <= 30.0, name
    assert max(slowdowns, key=slowdowns.get) == "gettimeofday"
