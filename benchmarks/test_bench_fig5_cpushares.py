"""Benchmark: regenerate Figure 5 (CPU shares under both schedulers)."""

from conftest import run_benched

from repro.experiments import fig5_cpushares


def test_bench_fig5(benchmark):
    result = run_benched(benchmark, fig5_cpushares.run, fast=False)
    assert result.all_within_tolerance
    vanilla = next(r for r in result.rows if "unmodified" in r[0])
    prop = next(r for r in result.rows if "proportional" in r[0])
    # (a) vanilla: clearly unequal, comp on top.
    v_web, v_comp, v_log = (float(x) for x in vanilla[1:4])
    assert v_comp == max(v_web, v_comp, v_log)
    assert float(vanilla[4]) > 0.25  # max-min spread
    # (b) proportional: near-equal thirds, small spread.
    p_shares = [float(x) for x in prop[1:4]]
    for share in p_shares:
        assert abs(share - 1 / 3) < 0.05
    assert float(prop[4]) < 0.1
