"""Benchmark: regenerate Table 3 (the service configuration file)."""

from conftest import run_benched

from repro.experiments import table3_config


def test_bench_table3(benchmark):
    result = run_benched(benchmark, table3_config.run)
    assert result.all_within_tolerance
    # Two BackEnd directives with capacities 2 and 1 on port 8080.
    assert len(result.rows) == 2
    capacities = sorted(int(r[3]) for r in result.rows)
    assert capacities == [1, 2]
    assert all(r[0] == "BackEnd" for r in result.rows)
    assert all(r[2] == "8080" for r in result.rows)
