"""Benchmark: rootfs tailoring on/off ablation."""

from conftest import run_benched

from repro.experiments import ablation_tailoring


def test_bench_ablation_tailoring(benchmark):
    result = run_benched(benchmark, ablation_tailoring.run)
    assert result.all_within_tolerance
    times = {
        (row[0], row[1]): float(row[4]) for row in result.rows
    }
    # Tailoring wins big on both hosts.
    for host in ("seattle", "tacoma"):
        assert times[("untailored", host)] > 3 * times[("tailored", host)]
