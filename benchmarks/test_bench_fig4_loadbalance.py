"""Benchmark: regenerate Figure 4 (load balancing across 2M/1M nodes)."""

from conftest import run_benched

from repro.experiments import fig4_loadbalance


def test_bench_fig4(benchmark):
    result = run_benched(benchmark, fig4_loadbalance.run)
    assert result.all_within_tolerance
    # Response time grows monotonically with dataset size on both nodes.
    seattle = result.series["seattle mean response time (s) vs dataset (MB)"][1]
    tacoma = result.series["tacoma mean response time (s) vs dataset (MB)"][1]
    assert all(b > a for a, b in zip(seattle, seattle[1:]))
    assert all(b > a for a, b in zip(tacoma, tacoma[1:]))
    # Per-size: seattle serves ~2x the requests at ~equal response time.
    for row in result.rows:
        ratio = float(row[6])
        assert 1.7 <= ratio <= 2.3
