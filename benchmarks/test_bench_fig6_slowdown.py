"""Benchmark: regenerate Figure 6 (application-level slow-down)."""

from conftest import run_benched

from repro.experiments import fig6_slowdown


def test_bench_fig6(benchmark):
    result = run_benched(benchmark, fig6_slowdown.run, fast=False)
    assert result.all_within_tolerance
    slowdowns = [float(row[4].rstrip("x")) for row in result.rows]
    # Modest (1.2-2x), far below Table 4's ~23x, and flat across sizes.
    for factor in slowdowns:
        assert 1.2 <= factor <= 2.0
    assert max(slowdowns) - min(slowdowns) < 0.15
    # Scenario ordering per size: VM+switch >= host+switch >= direct.
    for row in result.rows:
        vm, host_switch, direct = float(row[1]), float(row[2]), float(row[3])
        assert vm > host_switch >= direct
