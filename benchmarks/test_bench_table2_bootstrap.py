"""Benchmark: regenerate Table 2 (service bootstrapping times).

Shape assertions: every cell within 25% of the paper; tacoma slower
than seattle; the 400 MB S_III boots faster than the 253 MB S_IV.
"""

from conftest import run_benched

from repro.experiments import table2_bootstrap


def _cell(result, profile, column):
    row = next(r for r in result.rows if r[0] == profile)
    return float(row[column].split()[0])


def test_bench_table2(benchmark):
    result = run_benched(benchmark, table2_bootstrap.run, fast=False)
    assert result.all_within_tolerance

    for profile in ("S_I", "S_II", "S_III", "S_IV"):
        seattle = _cell(result, profile, 3)
        tacoma = _cell(result, profile, 4)
        assert tacoma > seattle, f"{profile}: tacoma must be slower"

    # Boot time is not ordered by image size (the paper's explicit point).
    assert _cell(result, "S_III", 3) < _cell(result, "S_IV", 3)
    # The RAM/disk asymmetry drives S_III's tacoma blow-up.
    s3_ratio = _cell(result, "S_III", 4) / _cell(result, "S_III", 3)
    s1_ratio = _cell(result, "S_I", 4) / _cell(result, "S_I", 3)
    assert s3_ratio > 2 * s1_ratio
