"""Benchmark harness configuration.

Each benchmark regenerates one paper table/figure via its experiment
module and asserts the *shape* of the result (who wins, by roughly what
factor) — absolute times are simulated, so what pytest-benchmark
measures is the reproduction pipeline's own cost, and what the
assertions check is fidelity to the paper.
"""

import pytest


def run_benched(benchmark, run_fn, seed=0, fast=True, rounds=1):
    """Run an experiment under the benchmark timer, once."""
    return benchmark.pedantic(
        lambda: run_fn(seed=seed, fast=fast), rounds=rounds, iterations=1
    )
