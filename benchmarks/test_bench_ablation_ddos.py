"""Benchmark: the §3.5 DDoS caveat and shaper mitigation."""

from conftest import run_benched

from repro.experiments import ablation_ddos


def test_bench_ablation_ddos(benchmark):
    result = run_benched(benchmark, ablation_ddos.run)
    assert result.all_within_tolerance
    unshaped = next(r for r in result.rows if r[0].startswith("off"))
    shaped = next(r for r in result.rows if "ENFORCED" in r[0])
    # Flood hurts the neighbour without shaping, not with it.
    assert float(unshaped[3].rstrip("x")) > 1.15
    assert float(shaped[3].rstrip("x")) < 1.1
