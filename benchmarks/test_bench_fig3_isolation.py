"""Benchmark: regenerate Figure 3 (attack isolation)."""

from conftest import run_benched

from repro.experiments import fig3_isolation


def test_bench_fig3(benchmark):
    result = run_benched(benchmark, fig3_isolation.run)
    assert result.all_within_tolerance
    metrics = {row[0]: int(row[1]) for row in result.rows}
    # The honeypot was repeatedly owned and crashed...
    assert metrics["guest-root shells bound"] >= 3
    assert metrics["honeypot guest crashes"] >= 3
    # ...while nothing escaped the guest and the web service never failed.
    assert metrics["host OS compromises"] == 0
    assert metrics["sibling (web) node compromises"] == 0
    assert metrics["web request failures during attack"] == 0
    assert metrics["web requests completed during attack"] > 0
    # The Figure 3 ps -ef evidence is attached.
    assert "httpd_19_5" in result.notes and "ghttpd" in result.notes
