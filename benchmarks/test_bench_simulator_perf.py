"""Performance benchmarks of the reproduction's own substrate.

Unlike the table/figure benches (which check fidelity), these measure
the simulator's wall-clock cost: event-kernel throughput, LAN fluid
recomputation under flow churn, scheduler quantum loops, and a full
service-creation round trip.  Regressions here make every experiment
slower.
"""

from repro.core import MachineConfig, ResourceRequirement, build_paper_testbed
from repro.core.auth import Credentials
from repro.host.scheduler import ProportionalShareScheduler, figure5_groups
from repro.image.profiles import make_s1_web_content
from repro.net.lan import LAN
from repro.sim import Simulator
from repro.sim.rng import RandomStreams


def test_bench_kernel_event_throughput(benchmark):
    """Process 100k timeout events."""

    def run():
        sim = Simulator()

        def ticker(sim, n):
            for _ in range(n):
                yield sim.timeout(1.0)

        for _ in range(10):
            sim.process(ticker(sim, 10_000))
        sim.run()
        return sim.now

    now = benchmark(run)
    assert now == 10_000.0


def test_bench_lan_flow_churn(benchmark):
    """2000 staggered flows through the max-min fair allocator."""

    def run():
        sim = Simulator()
        lan = LAN(sim, bandwidth_mbps=100.0)
        nics = [lan.nic(f"n{i}", 1000.0) for i in range(20)]
        streams = RandomStreams(seed=0)

        def source(sim, src, dst):
            for _ in range(100):
                flow = lan.transfer(src, dst, size_mb=streams.uniform("s", 0.05, 0.5))
                yield flow.done

        for i in range(10):
            sim.process(source(sim, nics[2 * i], nics[2 * i + 1]))
        sim.run()
        return sim.now

    now = benchmark(run)
    assert now > 0


def test_bench_scheduler_quantum_loop(benchmark):
    """60 simulated seconds of stride scheduling (6000 quanta)."""

    def run():
        scheduler = ProportionalShareScheduler(figure5_groups(), RandomStreams(0))
        return scheduler.run(60.0)

    trace = benchmark(run)
    assert abs(trace.horizon_s - 60.0) < 0.011  # 6000 quanta of 10 ms


def test_bench_service_creation_roundtrip(benchmark):
    """Full create -> teardown through Agent/Master/Daemon/UML."""

    def run():
        testbed = build_paper_testbed(seed=0)
        repo = testbed.add_repository()
        repo.publish(make_s1_web_content())
        testbed.agent.register_asp("acme", "supersecret")
        creds = Credentials("acme", "supersecret")
        requirement = ResourceRequirement(n=2, machine=MachineConfig())
        testbed.run(
            testbed.agent.service_creation(creds, "web", repo, "web-content", requirement)
        )
        testbed.run(testbed.agent.service_teardown(creds, "web"))
        return testbed.now

    now = benchmark(run)
    assert now > 0
