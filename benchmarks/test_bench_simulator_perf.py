"""Performance benchmarks of the reproduction's own substrate.

Unlike the table/figure benches (which check fidelity), these measure
the simulator's wall-clock cost: event-kernel throughput, LAN fluid
recomputation under flow churn, scheduler quantum loops, and a full
service-creation round trip.  Regressions here make every experiment
slower.

The workloads live in :mod:`repro.bench` so this pytest-benchmark suite
and the ``python -m repro.bench`` baseline tracker measure the exact
same work.  ``BENCH_simulator.json`` in the repo root holds the tracked
trajectory; compare a fresh run against it with::

    python -m repro.bench --dry-run --compare
"""

from repro.bench import (
    bench_fleet_scale_throughput,
    bench_kernel_event_throughput,
    bench_lan_flow_churn,
    bench_scheduler_quantum_loop,
    bench_service_creation_roundtrip,
    bench_switch_dispatch_throughput,
)


def test_bench_kernel_event_throughput(benchmark):
    """Process 100k timeout events."""
    now = benchmark(bench_kernel_event_throughput)
    assert now == 10_000.0


def test_bench_lan_flow_churn(benchmark):
    """2000 staggered flows through the max-min fair allocator."""
    now = benchmark(bench_lan_flow_churn)
    assert now > 0


def test_bench_scheduler_quantum_loop(benchmark):
    """60 simulated seconds of stride scheduling (6000 quanta)."""
    horizon = benchmark(bench_scheduler_quantum_loop)
    assert abs(horizon - 60.0) < 0.011  # 6000 quanta of 10 ms


def test_bench_service_creation_roundtrip(benchmark):
    """Full create -> teardown through Agent/Master/Daemon/UML."""
    now = benchmark(bench_service_creation_roundtrip)
    assert now > 0


def test_bench_fleet_scale_throughput(benchmark):
    """1M+ background requests over 1000 hosts, fluid vs discrete.

    The composite is heavy (two fleet runs per round), so it runs once —
    pytest-benchmark still records the wall clock, and the acceptance
    ratios are asserted on the returned fields.
    """
    result = benchmark.pedantic(bench_fleet_scale_throughput, rounds=1, iterations=1)
    assert result["fluid_requests"] >= 1_000_000
    assert result["event_reduction_x"] >= 5.0
    assert result["wall_speedup_x"] >= 5.0


def test_bench_switch_dispatch_throughput(benchmark):
    """Bursty arrivals through one switch, batched vs unbatched dispatch."""
    result = benchmark.pedantic(
        bench_switch_dispatch_throughput, rounds=1, iterations=1
    )
    assert result["batched_events"] < result["unbatched_events"]
    assert result["batches_dispatched"] > 0
