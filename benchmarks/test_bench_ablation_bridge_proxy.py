"""Benchmark: bridging vs proxying ablation (footnote 3)."""

from conftest import run_benched

from repro.experiments import ablation_bridge_proxy


def test_bench_ablation_bridge_proxy(benchmark):
    result = run_benched(benchmark, ablation_bridge_proxy.run)
    assert result.all_within_tolerance
    bridge_rt = float(next(r for r in result.rows if "bridging" in r[0])[1])
    proxy_rt = float(next(r for r in result.rows if "proxying" in r[0])[1])
    assert proxy_rt > bridge_rt  # the repro hint: proxy less performant
    proxy_relays = int(next(r for r in result.rows if "proxying" in r[0])[2])
    assert proxy_relays > 0
