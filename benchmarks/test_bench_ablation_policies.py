"""Benchmark: switching-policy ablation on heterogeneous nodes."""

from conftest import run_benched

from repro.experiments import ablation_policies


def test_bench_ablation_policies(benchmark):
    result = run_benched(benchmark, ablation_policies.run)
    assert result.all_within_tolerance
    rows = {row[0]: row for row in result.rows}
    wrr = rows["weighted-round-robin (default)"]
    rr = rows["round-robin (weight-blind)"]
    # Weight-blind RR overloads the 1M node: worse tail latency.
    assert float(rr[2]) > float(wrr[2])
    # And sends it ~half the traffic vs WRR's third.
    assert float(rr[3]) > float(wrr[3]) + 0.1
