"""Benchmark: placement-strategy ablation."""

from conftest import run_benched

from repro.experiments import ablation_placement


def test_bench_ablation_placement(benchmark):
    result = run_benched(benchmark, ablation_placement.run, fast=False)
    assert result.all_within_tolerance
    rows = {row[0]: row for row in result.rows}
    # Worst-fit spreads utilisation at least as evenly as first-fit.
    assert float(rows["worst-fit"][2]) <= float(rows["first-fit"][2])
    # All strategies admit a sensible number of services.
    for row in rows.values():
        assert int(row[1]) >= 1
