"""Benchmark: unequal CPU shares from the admission path."""

from conftest import run_benched

from repro.experiments import ablation_scheduler_shares


def test_bench_ablation_scheduler_shares(benchmark):
    result = run_benched(benchmark, ablation_scheduler_shares.run, fast=False)
    assert result.all_within_tolerance
    # In every scenario the proportional scheduler lands each group
    # within 15% of its entitlement, while vanilla misses somewhere.
    prop_rows = [r for r in result.rows if r[1] == "proportional"]
    for row in prop_rows:
        for cell in row[2:]:
            got = float(cell.split()[0])
            want = float(cell.split("want ")[1].rstrip(")"))
            assert abs(got - want) / want < 0.15
