"""Benchmark: regenerate Table 1 (machine configuration M)."""

from conftest import run_benched

from repro.experiments import table1_requirements


def test_bench_table1(benchmark):
    result = run_benched(benchmark, table1_requirements.run)
    assert result.all_within_tolerance
    assert result.rows[0] == ["CPU", "512MHz"]
    assert result.rows[3] == ["Bandwidth", "10Mbps"]
