"""Benchmark: regenerate §4.3's download-time measurement."""

from conftest import run_benched

from repro.experiments import download_time


def test_bench_download_time(benchmark):
    result = run_benched(benchmark, download_time.run, fast=False)
    assert result.all_within_tolerance
    # Linear in size: r^2 from the fit is recorded as a comparison.
    r_squared = next(c for c in result.comparisons if "r^2" in c.name)
    assert r_squared.measured > 0.999
    # Goodput is flat (bandwidth-dominated regime).
    goodputs = [float(row[2]) for row in result.rows]
    assert max(goodputs) - min(goodputs) < 5.0
