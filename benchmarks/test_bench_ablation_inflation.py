"""Benchmark: the footnote-2 inflation factor sweep."""

from conftest import run_benched

from repro.experiments import ablation_inflation


def test_bench_ablation_inflation(benchmark):
    result = run_benched(benchmark, ablation_inflation.run, fast=False)
    assert result.all_within_tolerance
    capacities = result.series["HUP capacity (M units) vs inflation"][1]
    ratios = result.series["node/native service-time ratio vs inflation"][1]
    # Capacity falls (weakly) as inflation grows; delivered speed rises.
    assert all(b <= a for a, b in zip(capacities, capacities[1:]))
    assert all(b < a for a, b in zip(ratios, ratios[1:]))
    # The paper's 1.5 sits near the knee: within 5% of native-M.
    factors = result.series["HUP capacity (M units) vs inflation"][0]
    knee = ratios[factors.index(1.5)]
    assert 0.9 < knee < 1.05
