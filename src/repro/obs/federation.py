"""Federation-wide observability: traces, metrics and profiles that
survive the shard boundary.

The PR 4 observability stack is single-kernel: one tracer, one registry,
one profiler attached to one simulator.  A federated run
(:mod:`repro.sim.parallel`) is many sub-kernels in many processes, so
each pillar needs a federation layer:

* **Cross-shard trace propagation** — a picklable :class:`TraceContext`
  (trace id, parent span id, origin shard) rides every
  :class:`~repro.sim.parallel.ShardMessage`.  Each shard runs its own
  :class:`~repro.obs.tracing.RequestTracer` whose span/trace IDs are
  *namespaced by shard name* (``"us-east:00000042"``): IDs depend only
  on the shard's deterministic event order, never on the process
  layout, so the reassembled federation-wide trace set is bit-identical
  across worker counts.  :func:`merge_shard_spans` is the reassembly:
  concatenate per-shard span logs and sort on ``(trace, span)`` — the
  zero-padded IDs make lexical order creation order.
* **Metrics federation** — per-shard registry snapshots
  (:meth:`~repro.obs.metrics.MetricsRegistry.dump`) ship to the
  coordinator at every epoch barrier; :class:`FederatedMetrics` keeps
  the newest snapshot per shard and merges them into one exposition
  with a ``shard`` label: counters *sum* into any existing child,
  gauges are last-write-wins per ``(shard, name, labels)``, histogram
  bucket counts add.  Federation-level gauges report the epoch number,
  per-worker barrier wait, and messages exchanged.
* **Epoch critical-path profiler** — :class:`FederationProfiler` takes
  the coordinator's per-epoch per-shard ``process_time`` accounting and
  attributes wall time to compute vs barrier stall per worker: the
  critical path is the sum over epochs of the slowest worker's CPU, the
  achievable-speedup bound is total CPU over critical path, and the
  multi-lane Chrome export draws one lane per shard with epoch barriers
  as instant events (``soda-obs federation-summary`` /
  ``chrome-export --federated``).

Everything here observes and never perturbs: no events are scheduled,
no RNG streams are touched, and nothing feeds back into a shard digest
— federated digests are bit-identical with the whole stack on or off
(pinned by the determinism guard).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "TraceContext",
    "FederationObservability",
    "FederatedMetrics",
    "FederationProfiler",
    "FederationObsResult",
    "merge_shard_spans",
    "trace_completeness",
    "FEDPROFILE_FORMAT",
]

#: On-disk format tag for a federation profile document.
FEDPROFILE_FORMAT = "soda-fedprofile/1"


@dataclass(frozen=True)
class TraceContext:
    """The picklable trace handle that rides a cross-shard message.

    Pure data — shards cannot share live :class:`~repro.obs.tracing.Span`
    objects across process boundaries, so the message plane carries the
    identifying pair plus the origin shard.  IDs are the shard-namespaced
    strings minted by a namespaced tracer, so a context is meaningful on
    any shard and any worker layout.
    """

    trace_id: str
    span_id: str
    origin: str


@dataclass(frozen=True)
class FederationObservability:
    """Which observability pillars a federated run enables (picklable).

    Passed to :func:`repro.sim.parallel.run_federation`; each shard —
    wherever its process lives — builds its own tracer/registry/profiler
    from this spec.  All pillars default on: constructing the spec *is*
    the opt-in.
    """

    tracing: bool = True
    metrics: bool = True
    profile: bool = True
    span_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.span_capacity is not None and self.span_capacity < 1:
            raise ValueError(
                f"span_capacity must be >= 1, got {self.span_capacity}"
            )

    @property
    def enabled(self) -> bool:
        return self.tracing or self.metrics or self.profile


# ---------------------------------------------------------------------------
# Trace reassembly.
# ---------------------------------------------------------------------------

def merge_shard_spans(
    per_shard: Dict[str, List[Dict[str, Any]]]
) -> List[Dict[str, Any]]:
    """Reassemble per-shard span logs into one federation-wide list.

    Sorted by ``(trace, span)``: shard-namespaced IDs are zero-padded,
    so lexical order is per-shard creation order, and the merged order
    is a pure function of the span set — identical for every worker
    layout.
    """
    merged = [
        dict(span) for shard in sorted(per_shard) for span in per_shard[shard]
    ]
    merged.sort(key=lambda s: (str(s.get("trace")), str(s.get("span"))))
    return merged


def trace_completeness(spans: List[Dict[str, Any]]) -> Dict[str, int]:
    """Audit a merged span set: orphan parents and unfinished spans.

    A parent reference is *orphaned* when no span in the same trace
    carries that span id — a propagation bug (or ring-buffer eviction).
    The CI smoke job fails on any non-zero count here.
    """
    ids_by_trace: Dict[Any, set] = {}
    for span in spans:
        ids_by_trace.setdefault(span.get("trace"), set()).add(span.get("span"))
    orphans = 0
    open_spans = 0
    for span in spans:
        parent = span.get("parent")
        if parent is not None and parent not in ids_by_trace[span.get("trace")]:
            orphans += 1
        if span.get("end") is None:
            open_spans += 1
    return {
        "spans": len(spans),
        "traces": len(ids_by_trace),
        "orphan_parents": orphans,
        "open_spans": open_spans,
    }


# ---------------------------------------------------------------------------
# Metrics federation.
# ---------------------------------------------------------------------------

class FederatedMetrics:
    """Merges per-shard registry snapshots into one exposition.

    The coordinator calls :meth:`update` with each shard's
    :meth:`~repro.obs.metrics.MetricsRegistry.dump` at every epoch
    barrier (newest snapshot wins — dumps are cumulative) and
    :meth:`note_epoch` / :meth:`note_barrier_wait` with its own
    accounting.  :meth:`merge_into` applies the merge rules against any
    registry; :meth:`render` produces the standalone Prometheus text.
    """

    def __init__(self) -> None:
        self._dumps: Dict[str, List[Dict[str, Any]]] = {}
        self.epoch = 0
        self.messages = 0
        self.barrier_wait_s: Dict[str, float] = {}

    def update(self, shard: str, dump: List[Dict[str, Any]]) -> None:
        """Adopt a shard's cumulative registry snapshot (newest wins)."""
        self._dumps[shard] = dump

    def note_epoch(self, epoch: int, messages: int) -> None:
        self.epoch = epoch
        self.messages = messages

    def note_barrier_wait(self, wait_by_worker: Dict[str, float]) -> None:
        self.barrier_wait_s = dict(wait_by_worker)

    @property
    def shards(self) -> List[str]:
        return sorted(self._dumps)

    def merge_into(self, registry: MetricsRegistry) -> None:
        """Apply the merge rules into ``registry``, adding a ``shard`` label.

        Counters ``inc`` into any existing child (the *sum* rule),
        gauges ``set`` — last write wins per ``(shard, name, labels)``,
        which is deterministic because shards merge in sorted order and
        each shard contributes exactly its newest snapshot — and
        histogram bucket counts, sums and counts add element-wise.
        """
        for shard in self.shards:
            for family in self._dumps[shard]:
                labels = ("shard",) + tuple(family["labels"])
                kind = family["kind"]
                if kind == "histogram":
                    metric = registry.histogram(
                        family["name"], family["help"], labels,
                        buckets=family["buckets"],
                    )
                    for key, state in family["children"]:
                        child = metric.labels(
                            **dict(zip(labels, (shard,) + tuple(key)))
                        )
                        child.sum += state["sum"]
                        child.count += state["count"]
                        for i, count in enumerate(state["counts"]):
                            child.counts[i] += count
                elif kind == "gauge":
                    metric = registry.gauge(
                        family["name"], family["help"], labels
                    )
                    for key, value in family["children"]:
                        metric.set(
                            value, **dict(zip(labels, (shard,) + tuple(key)))
                        )
                else:
                    metric = registry.counter(
                        family["name"], family["help"], labels
                    )
                    for key, value in family["children"]:
                        metric.inc(
                            value, **dict(zip(labels, (shard,) + tuple(key)))
                        )
        registry.gauge(
            "soda_federation_epoch",
            "Epoch barriers completed by the federated run.",
        ).set(float(self.epoch))
        registry.gauge(
            "soda_federation_messages_exchanged",
            "Cross-shard messages exchanged over the whole run.",
        ).set(float(self.messages))
        if self.barrier_wait_s:
            wait = registry.gauge(
                "soda_federation_barrier_wait_seconds",
                "CPU-seconds each worker spent waiting at epoch barriers.",
                ("worker",),
            )
            for worker in sorted(self.barrier_wait_s):
                wait.set(self.barrier_wait_s[worker], worker=worker)

    def render(self) -> str:
        """The merged Prometheus text exposition (a fresh registry)."""
        registry = MetricsRegistry()
        self.merge_into(registry)
        return registry.render()


# ---------------------------------------------------------------------------
# The epoch critical-path profiler.
# ---------------------------------------------------------------------------

class FederationProfiler:
    """Attributes federated wall time to compute vs barrier stall.

    Fed one ``{shard: cpu_seconds}`` record per epoch (the coordinator's
    ``process_time`` accounting), with a fixed shard→worker assignment.
    Per epoch the slowest worker sets the barrier: every other worker
    *stalls* for the difference.  The **critical path** is the sum over
    epochs of the slowest worker's CPU — the wall time the barrier
    structure would cost on dedicated cores — and the
    **achievable-speedup bound** is total CPU over critical path.
    """

    def __init__(self, epoch_s: float, shard_worker: Dict[str, int]):
        if epoch_s <= 0:
            raise ValueError(f"epoch_s must be positive, got {epoch_s}")
        if not shard_worker:
            raise ValueError("profiler needs at least one shard")
        self.epoch_s = epoch_s
        self.shard_worker = dict(shard_worker)
        self.shards = sorted(shard_worker)
        self.n_workers = 1 + max(shard_worker.values())
        #: Per epoch: {shard: cpu seconds} (every shard present).
        self.epochs: List[Dict[str, float]] = []

    # -- recording ----------------------------------------------------------
    def record_epoch(self, busy_by_shard: Dict[str, float]) -> None:
        unknown = set(busy_by_shard) - set(self.shard_worker)
        if unknown:
            raise ValueError(f"unknown shards in epoch record: {sorted(unknown)}")
        self.epochs.append(
            {s: float(busy_by_shard.get(s, 0.0)) for s in self.shards}
        )

    # -- attribution --------------------------------------------------------
    def worker_busy(self, epoch_busy: Dict[str, float]) -> List[float]:
        """One epoch's ``{shard: cpu}`` summed per worker."""
        busy = [0.0] * self.n_workers
        for shard, cpu in epoch_busy.items():
            busy[self.shard_worker[shard]] += cpu
        return busy

    @property
    def n_epochs(self) -> int:
        return len(self.epochs)

    @property
    def critical_path_s(self) -> float:
        return sum(max(self.worker_busy(e)) for e in self.epochs)

    @property
    def total_busy_s(self) -> float:
        return sum(sum(e.values()) for e in self.epochs)

    def worker_totals(self) -> List[float]:
        totals = [0.0] * self.n_workers
        for epoch in self.epochs:
            for worker, busy in enumerate(self.worker_busy(epoch)):
                totals[worker] += busy
        return totals

    def shard_totals(self) -> Dict[str, float]:
        return {
            shard: sum(epoch[shard] for epoch in self.epochs)
            for shard in self.shards
        }

    def barrier_wait_by_worker(self) -> List[float]:
        """Per worker: CPU-seconds idled waiting for the epoch's slowest."""
        waits = [0.0] * self.n_workers
        for epoch in self.epochs:
            busy = self.worker_busy(epoch)
            slowest = max(busy)
            for worker, b in enumerate(busy):
                waits[worker] += slowest - b
        return waits

    @property
    def barrier_wait_s(self) -> float:
        return sum(self.barrier_wait_by_worker())

    @property
    def stall_fraction(self) -> float:
        denominator = self.n_workers * self.critical_path_s
        return self.barrier_wait_s / denominator if denominator else 0.0

    @property
    def achievable_speedup(self) -> float:
        """Upper bound on dedicated-core speedup given the barriers."""
        critical = self.critical_path_s
        return self.total_busy_s / critical if critical else 1.0

    # -- reporting ----------------------------------------------------------
    def render(self) -> str:
        """The terminal report: per-worker compute vs stall attribution."""
        if not self.epochs:
            return "(no epochs profiled)"
        totals = self.worker_totals()
        waits = self.barrier_wait_by_worker()
        critical = self.critical_path_s
        by_worker: Dict[int, List[str]] = {}
        for shard in self.shards:
            by_worker.setdefault(self.shard_worker[shard], []).append(shard)
        lines = [
            f"federation profile: {len(self.shards)} shards on "
            f"{self.n_workers} workers, {self.n_epochs} epochs "
            f"(lookahead {self.epoch_s * 1e3:.0f} ms)",
            f"worker CPU {self.total_busy_s:.4f} s; critical path "
            f"{critical:.4f} s; achievable speedup "
            f"{self.achievable_speedup:.2f}x; barrier stall "
            f"{self.stall_fraction:.1%}",
        ]
        shard_w = max(
            [len(", ".join(by_worker.get(w, ()))) for w in range(self.n_workers)]
            + [6]
        )
        lines.append(
            f"{'worker':<6}  {'shards':<{shard_w}}  {'busy s':>9}  "
            f"{'stall s':>9}  {'stall':>6}"
        )
        for worker in range(self.n_workers):
            wall = totals[worker] + waits[worker]
            share = waits[worker] / wall if wall else 0.0
            lines.append(
                f"{worker:<6}  {', '.join(by_worker.get(worker, ())):<{shard_w}}  "
                f"{totals[worker]:>9.4f}  {waits[worker]:>9.4f}  {share:>6.1%}"
            )
        slowest = max(self.shard_totals().items(), key=lambda kv: (kv[1], kv[0]))
        lines.append(
            f"slowest shard: {slowest[0]} ({slowest[1]:.4f} s CPU)"
        )
        return "\n".join(lines)

    # -- serialization ------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """The ``soda-fedprofile/1`` JSON document."""
        return {
            "format": FEDPROFILE_FORMAT,
            "epoch_s": self.epoch_s,
            "shard_worker": dict(self.shard_worker),
            "epochs": [dict(epoch) for epoch in self.epochs],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "FederationProfiler":
        if (
            not isinstance(payload, dict)
            or payload.get("format") != FEDPROFILE_FORMAT
        ):
            raise ValueError(f"not a {FEDPROFILE_FORMAT} document")
        profiler = cls(payload["epoch_s"], payload["shard_worker"])
        for epoch in payload["epochs"]:
            profiler.record_epoch(epoch)
        return profiler

    # -- Chrome export ------------------------------------------------------
    def chrome_trace(self) -> Dict[str, Any]:
        """A multi-lane Chrome trace: one lane per shard, barriers as
        instant events.

        The timeline is *dedicated-core* time: epoch ``e`` starts at the
        cumulative critical path before it; shards sharing a worker
        stack sequentially (sorted order — the worker's real execution
        order), and the barrier instant marks where the epoch's slowest
        worker finishes.
        """
        events: List[Dict[str, Any]] = [
            {
                "name": "process_name", "ph": "M", "ts": 0,
                "pid": 1, "tid": 0, "args": {"name": "federation"},
            },
            {
                "name": "thread_name", "ph": "M", "ts": 0,
                "pid": 1, "tid": 0, "args": {"name": "epoch barriers"},
            },
        ]
        tids = {shard: i + 1 for i, shard in enumerate(self.shards)}
        for shard, tid in tids.items():
            events.append(
                {
                    "name": "thread_name", "ph": "M", "ts": 0,
                    "pid": 1, "tid": tid,
                    "args": {
                        "name": f"shard:{shard} [w{self.shard_worker[shard]}]"
                    },
                }
            )
        t = 0.0
        for number, epoch in enumerate(self.epochs, start=1):
            offsets = [t] * self.n_workers
            for shard in self.shards:
                worker = self.shard_worker[shard]
                busy = epoch[shard]
                events.append(
                    {
                        "name": f"epoch {number}",
                        "cat": "compute",
                        "ph": "X",
                        "ts": offsets[worker] * 1e6,
                        "dur": busy * 1e6,
                        "pid": 1,
                        "tid": tids[shard],
                        "args": {"epoch": number, "busy_s": busy},
                    }
                )
                offsets[worker] += busy
            t += max(self.worker_busy(epoch))
            events.append(
                {
                    "name": f"barrier {number}",
                    "ph": "i",
                    "s": "g",
                    "ts": t * 1e6,
                    "pid": 1,
                    "tid": 0,
                    "args": {"epoch": number},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}


# ---------------------------------------------------------------------------
# The assembled result.
# ---------------------------------------------------------------------------

@dataclass
class FederationObsResult:
    """Everything a federated run observed, reassembled coordinator-side.

    Attached to :class:`~repro.sim.parallel.FederationRun` when an
    observability spec was passed; never part of the digest.
    """

    spans: List[Dict[str, Any]] = field(default_factory=list)
    spans_dropped: int = 0
    metrics: Optional[FederatedMetrics] = None
    profiler: Optional[FederationProfiler] = None
    kernel_profiles: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def trace_stats(self) -> Dict[str, int]:
        return trace_completeness(self.spans)
