"""Observability for the SODA substrate: tracing, metrics, profiling.

Paper §1 demands that an ASP can "perform service monitoring and
management, as if the service were hosted locally."  This package is
that capability for the reproduction, three pillars in one hub:

* **request tracing** (:mod:`repro.obs.tracing`) — every request
  decomposes into dispatch / queue_wait / cpu_service / tx spans that
  sum to its measured response time; exportable to Chrome trace JSON
  (:mod:`repro.obs.export`) and text flame summaries.
* **metrics** (:mod:`repro.obs.metrics`) — labeled counters, gauges and
  histograms over switch outcomes, node state, admissions, priming,
  SLA breaches/credits, LAN allocator flushes and scheduler batches,
  with Prometheus text exposition (:mod:`repro.obs.prometheus`).
* **kernel profiling** (:mod:`repro.obs.profiler`) — events fired and
  wall-time per callback site inside the event kernel, plus heap-depth
  high-water marks.

The carried-over hard constraint: observability **observes, never
perturbs**.  Instrumentation reads simulated time and appends to plain
Python structures; it never schedules events, so experiment digests are
bit-identical with the whole stack enabled or disabled (pinned by
``tests/sim/test_determinism_guard.py``).

Usage — explicit attach::

    obs = Observability(profile=True)
    obs.attach(sim)            # sets sim.metrics / sim.obs_tracer / profiler

or ambient, which also covers simulators built *inside* experiment
code (each :class:`~repro.core.api.HUPTestbed` attaches itself)::

    obs = Observability()
    with obs.activate():
        result = fig4.run(seed=0)
    print(obs.flame_summary())
    print(obs.prometheus())
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional

from repro.obs.export import (
    breakdown_table,
    chrome_trace,
    flame_summary,
    load_federation_profile,
    load_spans_json,
    spans_payload,
    write_chrome_trace,
    write_federation_profile,
    write_spans_json,
)
from repro.obs.federation import (
    FederatedMetrics,
    FederationObsResult,
    FederationObservability,
    FederationProfiler,
    TraceContext,
    merge_shard_spans,
    trace_completeness,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry_of,
)
from repro.obs.profiler import KernelProfiler, profiler_of
from repro.obs.prometheus import render as render_prometheus
from repro.obs.tracing import RequestTracer, Span, SpanContext, tracer_of

__all__ = [
    "Observability",
    "active",
    "ambient_registry",
    "RequestTracer",
    "Span",
    "SpanContext",
    "tracer_of",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "registry_of",
    "KernelProfiler",
    "profiler_of",
    "render_prometheus",
    "chrome_trace",
    "write_chrome_trace",
    "write_spans_json",
    "spans_payload",
    "load_spans_json",
    "write_federation_profile",
    "load_federation_profile",
    "flame_summary",
    "breakdown_table",
    "TraceContext",
    "FederationObservability",
    "FederatedMetrics",
    "FederationProfiler",
    "FederationObsResult",
    "merge_shard_spans",
    "trace_completeness",
]

#: Stack of ambiently activated hubs; newest wins.
_ACTIVE: List["Observability"] = []


def active() -> Optional["Observability"]:
    """The ambiently active hub, if any (see :meth:`Observability.activate`)."""
    return _ACTIVE[-1] if _ACTIVE else None


def ambient_registry() -> Optional[MetricsRegistry]:
    """The active hub's metrics registry, for components without a
    simulator handle (the host CPU scheduler, the penalty settler)."""
    hub = active()
    return hub.registry if hub is not None else None


class Observability:
    """One tracer + one registry + one profiler, attachable to sims."""

    def __init__(
        self,
        tracing: bool = True,
        metrics: bool = True,
        profile: bool = False,
        span_capacity: Optional[int] = None,
    ):
        self.tracer: Optional[RequestTracer] = (
            RequestTracer(capacity=span_capacity) if tracing else None
        )
        self.registry: Optional[MetricsRegistry] = MetricsRegistry() if metrics else None
        self.profiler: Optional[KernelProfiler] = KernelProfiler() if profile else None
        #: Extra JSON-ready documents experiments deposit for the runner
        #: to write next to the span/metric files (e.g. the federation
        #: profile under the key ``"fedprofile"``).
        self.artifacts: dict = {}

    # -- attachment ---------------------------------------------------------
    def attach(self, sim) -> None:
        """Attach the enabled pillars to ``sim``.

        Tracing and metrics ride on attributes (``sim.obs_tracer``,
        ``sim.metrics``) that instrumented components look up; the
        profiler installs via :meth:`Simulator.set_profiler`.  One hub
        may be attached to several consecutive simulators; spans record
        which (epoch) they came from.
        """
        if self.tracer is not None:
            self.tracer.begin_epoch()
            sim.obs_tracer = self.tracer
        if self.registry is not None:
            sim.metrics = self.registry
        if self.profiler is not None:
            sim.set_profiler(self.profiler)

    @contextmanager
    def activate(self):
        """Ambient activation: every testbed built inside attaches itself."""
        _ACTIVE.append(self)
        try:
            yield self
        finally:
            _ACTIVE.remove(self)

    # -- convenience reporting ----------------------------------------------
    def prometheus(self) -> str:
        if self.registry is None:
            raise ValueError("metrics are disabled on this hub")
        return render_prometheus(self.registry)

    def flame_summary(self, top: int = 0) -> str:
        if self.tracer is None:
            raise ValueError("tracing is disabled on this hub")
        return flame_summary(self.tracer.spans(), top=top)

    def breakdown(self, limit: int = 0) -> str:
        if self.tracer is None:
            raise ValueError("tracing is disabled on this hub")
        return breakdown_table(self.tracer.requests(), limit=limit)

    def write_spans(self, path: str) -> None:
        if self.tracer is None:
            raise ValueError("tracing is disabled on this hub")
        write_spans_json(path, self.tracer.spans())

    def write_chrome_trace(self, path: str) -> None:
        if self.tracer is None:
            raise ValueError("tracing is disabled on this hub")
        write_chrome_trace(path, self.tracer.spans())

    def write_prometheus(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.prometheus())

    def kernel_profile(self, top: int = 20) -> str:
        if self.profiler is None:
            raise ValueError("profiling is disabled on this hub")
        return self.profiler.render(top=top)
