"""Distributed request tracing over the simulated request path.

A :class:`RequestTracer` attached to a simulator (``sim.obs_tracer``)
collects :class:`Span` records.  Instrumented components — the workload
client, :meth:`repro.core.switch.ServiceSwitch.serve`, the virtual
service node — open one *root* span per request and one child span per
segment of the serving path:

``dispatch``
    client → switch transfer, switch queueing, request classification
    and the forward hop to the chosen back-end.
``queue_wait``
    waiting for a free worker at the virtual service node.
``cpu_service``
    guest CPU service time (syscall-interposition model, plus the
    proxy relay cost in proxy mode).
``tx``
    response transmission back to the client over the LAN.

The segments tile the request interval — each starts where the previous
one ended — so their durations sum to the measured response time (the
determinism guard asserts this to 1e-9).

Span and trace IDs are **deterministic**: they are per-tracer sequence
numbers (never ``uuid4``/``Date.now``-style wall-clock material), so a
seeded run produces bit-identical traces.  Timestamps are simulated
seconds.

Federated runs (:mod:`repro.sim.parallel`) give each shard its own
tracer constructed with a ``namespace`` — the shard name — and IDs
become zero-padded strings like ``"us-east:00000042"``.  Because each
shard's sequence depends only on its own deterministic event order,
namespaced IDs are stable across process layouts, and the zero padding
makes lexical order equal creation order so the reassembled federation
trace set (:func:`repro.obs.federation.merge_shard_spans`) is
bit-identical across worker counts.  A remote parent crosses the
process boundary as a :class:`repro.obs.federation.TraceContext`;
``start_span`` accepts it anywhere a :class:`Span` parent is accepted.

Observes-never-perturbs: starting or finishing a span touches no
simulated state and schedules no events.  With no tracer attached,
instrumentation sites cost one attribute lookup.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = [
    "Span",
    "SpanContext",
    "RequestTracer",
    "tracer_of",
    "STATUS_OK",
    "STATUS_FAILED",
    "STATUS_SHED",
    "STATUS_OPEN",
]

STATUS_OPEN = "open"
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_SHED = "shed"


class SpanContext:
    """The identifying triple of a span, cheap to pass around."""

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(self, trace_id: int, span_id: int, parent_id: Optional[int]):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpanContext(trace={self.trace_id}, span={self.span_id})"


class Span:
    """One named, timed segment of work attributed to a lane.

    ``lane`` names where the work happened (a node, a switch, a client)
    and becomes the per-node row in the Chrome trace export.
    """

    __slots__ = ("context", "name", "lane", "start", "end", "status", "epoch", "attrs")

    def __init__(
        self,
        context: SpanContext,
        name: str,
        lane: str,
        start: float,
        epoch: int,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.context = context
        self.name = name
        self.lane = lane
        self.start = start
        self.end: Optional[float] = None
        self.status = STATUS_OPEN
        self.epoch = epoch
        self.attrs: Optional[Dict[str, Any]] = attrs

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    def annotate(self, **attrs: Any) -> "Span":
        """Attach key/value detail (kept out of the timing model)."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs.update(attrs)
        return self

    def finish(self, end: float, status: str = STATUS_OK) -> "Span":
        """Close the span at simulated time ``end``."""
        if self.end is not None:
            raise ValueError(f"span {self.name!r} already finished")
        if end < self.start:
            raise ValueError(f"span {self.name!r} ends before it starts")
        self.end = end
        self.status = status
        return self

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (see :mod:`repro.obs.export`)."""
        return {
            "trace": self.context.trace_id,
            "span": self.context.span_id,
            "parent": self.context.parent_id,
            "name": self.name,
            "lane": self.lane,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "epoch": self.epoch,
            "attrs": dict(self.attrs) if self.attrs else {},
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        end = f"{self.end:.6f}" if self.end is not None else "…"
        return f"<Span {self.name!r} lane={self.lane!r} [{self.start:.6f}, {end}] {self.status}>"


class RequestTracer:
    """Collects spans for one observability session.

    One tracer may serve several consecutive simulators (an experiment
    that builds a fresh testbed per data point): call
    :meth:`begin_epoch` per simulator and spans record which epoch they
    belong to, which the Chrome export maps to one process block each.

    ``capacity`` bounds memory as a ring buffer over *spans*: when full,
    the oldest spans are evicted (``dropped`` counts them) and the
    newest are retained — the same newest-wins semantics as
    :class:`repro.sim.trace.Tracer`.
    """

    def __init__(self, capacity: Optional[int] = None, namespace: Optional[str] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.namespace = namespace
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self.dropped = 0
        self.epoch = 0
        self._next_trace = 0
        self._next_span = 0

    def _id(self, n: int):
        """Sequence number ``n`` as an ID: a plain int, or — namespaced —
        a zero-padded string whose lexical order is creation order."""
        if self.namespace is None:
            return n
        return f"{self.namespace}:{n:08d}"

    # -- session management -------------------------------------------------
    def begin_epoch(self) -> int:
        """Start a new epoch (one per simulator attached); returns it."""
        self.epoch += 1
        return self.epoch

    def clear(self) -> None:
        self._spans.clear()
        self.dropped = 0

    # -- span creation ------------------------------------------------------
    def start_span(
        self,
        name: str,
        lane: str,
        start: float,
        parent: Optional[Any] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span; with ``parent=None`` it roots a new trace.

        ``parent`` is a local :class:`Span` or any object carrying
        ``trace_id``/``span_id`` — e.g. a remote
        :class:`repro.obs.federation.TraceContext` that rode a
        cross-shard message.
        """
        self._next_span += 1
        if parent is None:
            self._next_trace += 1
            context = SpanContext(self._id(self._next_trace), self._id(self._next_span), None)
        elif isinstance(parent, Span):
            context = SpanContext(
                parent.context.trace_id, self._id(self._next_span), parent.context.span_id
            )
        else:
            context = SpanContext(
                parent.trace_id, self._id(self._next_span), parent.span_id
            )
        span = Span(context, name, lane, start, self.epoch, attrs or None)
        self._append(span)
        return span

    def adopt(self, span) -> Span:
        """Append an externally-built span (federated reassembly).

        Accepts a :class:`Span` or its :meth:`Span.to_dict` form; the
        span keeps its original IDs and counts against ``capacity`` like
        any locally-created span.
        """
        if isinstance(span, dict):
            context = SpanContext(span["trace"], span["span"], span.get("parent"))
            adopted = Span(
                context,
                span["name"],
                span["lane"],
                span["start"],
                span.get("epoch", self.epoch),
                dict(span["attrs"]) if span.get("attrs") else None,
            )
            if span.get("end") is not None:
                adopted.finish(span["end"], span.get("status", STATUS_OK))
        else:
            adopted = span
        self._append(adopted)
        return adopted

    def _append(self, span: Span) -> None:
        if self.capacity is not None and len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(span)

    # -- queries ------------------------------------------------------------
    def spans(self) -> List[Span]:
        """All retained spans, in creation order."""
        return list(self._spans)

    def finished_spans(self) -> List[Span]:
        return [s for s in self._spans if s.finished]

    def roots(self, status: Optional[str] = None) -> List[Span]:
        """Root spans (one per traced request), optionally by status."""
        return [
            s
            for s in self._spans
            if s.context.parent_id is None and (status is None or s.status == status)
        ]

    def children_of(self, root: Span) -> List[Span]:
        """Direct children of ``root`` in start order (ties: creation order)."""
        trace_id = root.context.trace_id
        parent_id = root.context.span_id
        kids = [
            s
            for s in self._spans
            if s.context.trace_id == trace_id and s.context.parent_id == parent_id
        ]
        kids.sort(key=lambda s: s.start)
        return kids

    def requests(self, status: Optional[str] = None) -> List[Tuple[Span, List[Span]]]:
        """``(root, segments)`` pairs for every traced request."""
        return [(root, self.children_of(root)) for root in self.roots(status)]

    def __len__(self) -> int:
        return len(self._spans)


def tracer_of(sim) -> Optional[RequestTracer]:
    """The tracer attached to ``sim``, if any (else ``None``)."""
    return getattr(sim, "obs_tracer", None)
