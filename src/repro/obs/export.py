"""Trace exports: span JSON, Chrome trace-event JSON, flame summaries.

Three consumers of a :class:`~repro.obs.tracing.RequestTracer`:

* :func:`write_spans_json` / :func:`load_spans_json` — the on-disk span
  format (``soda-spans/1``), the interchange the ``soda-obs`` CLI reads.
* :func:`chrome_trace` — the Chrome trace-event format (an object with a
  ``traceEvents`` list of ``ph``/``ts``/``pid``/``tid`` events) loadable
  in Perfetto or ``chrome://tracing``.  Each tracer epoch (one simulator)
  becomes one *process* block and each lane (one node / switch / client)
  one named *thread* row, so the per-node timeline reads directly off
  the UI.
* :func:`flame_summary` — a terminal-friendly aggregate: wall-clock per
  (lane, span name), the "where does request time go" table.

All outputs are deterministic for a seeded run: span order is creation
order and aggregate tables sort on (total time, lane, name).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence, Union

from repro.obs.federation import FEDPROFILE_FORMAT
from repro.obs.tracing import Span

__all__ = [
    "SPANS_FORMAT",
    "FEDPROFILE_FORMAT",
    "spans_payload",
    "write_spans_json",
    "load_spans_json",
    "write_federation_profile",
    "load_federation_profile",
    "chrome_trace",
    "write_chrome_trace",
    "flame_summary",
    "breakdown_table",
]

SPANS_FORMAT = "soda-spans/1"

SpanLike = Union[Span, Dict[str, Any]]


def _as_dict(span: SpanLike) -> Dict[str, Any]:
    return span.to_dict() if isinstance(span, Span) else span


def spans_payload(spans: Iterable[SpanLike]) -> Dict[str, Any]:
    """The ``soda-spans/1`` JSON document for ``spans``."""
    return {
        "format": SPANS_FORMAT,
        "spans": [_as_dict(s) for s in spans],
    }


def write_spans_json(path: str, spans: Iterable[SpanLike]) -> None:
    with open(path, "w") as handle:
        json.dump(spans_payload(spans), handle, indent=1)
        handle.write("\n")


def load_spans_json(path: str) -> List[Dict[str, Any]]:
    """Load and validate a ``soda-spans/1`` document; returns the spans."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("format") != SPANS_FORMAT:
        raise ValueError(f"{path}: not a {SPANS_FORMAT} document")
    spans = payload.get("spans")
    if not isinstance(spans, list):
        raise ValueError(f"{path}: missing span list")
    return spans


# -- federation profile documents -------------------------------------------


def write_federation_profile(path: str, payload: Dict[str, Any]) -> None:
    """Write a ``soda-fedprofile/1`` document (see
    :meth:`repro.obs.federation.FederationProfiler.to_payload`)."""
    if not isinstance(payload, dict) or payload.get("format") != FEDPROFILE_FORMAT:
        raise ValueError(f"{path}: payload is not a {FEDPROFILE_FORMAT} document")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")


def load_federation_profile(path: str) -> Dict[str, Any]:
    """Load and validate a ``soda-fedprofile/1`` document."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("format") != FEDPROFILE_FORMAT:
        raise ValueError(f"{path}: not a {FEDPROFILE_FORMAT} document")
    for key in ("epoch_s", "shard_worker", "epochs"):
        if key not in payload:
            raise ValueError(f"{path}: missing {key!r}")
    return payload


# -- Chrome trace-event format ---------------------------------------------


def chrome_trace(spans: Iterable[SpanLike]) -> Dict[str, Any]:
    """Spans as a Chrome trace-event JSON object.

    Finished spans become complete (``ph: "X"``) events with
    microsecond timestamps; open spans are skipped.  ``pid`` is the
    span's epoch (one simulator per process block), ``tid`` the lane's
    first-seen index, and metadata events name both.
    """
    events: List[Dict[str, Any]] = []
    lane_ids: Dict[tuple, int] = {}  # (epoch, lane) -> tid
    seen_pids: Dict[int, bool] = {}
    for span in spans:
        data = _as_dict(span)
        if data.get("end") is None:
            continue
        pid = int(data.get("epoch") or 0)
        lane = str(data.get("lane", ""))
        key = (pid, lane)
        tid = lane_ids.get(key)
        if tid is None:
            tid = len(lane_ids) + 1
            lane_ids[key] = tid
            if pid not in seen_pids:
                seen_pids[pid] = True
                events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "ts": 0,
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": f"sim-{pid}"},
                    }
                )
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        args: Dict[str, Any] = {
            "trace": data.get("trace"),
            "span": data.get("span"),
            "status": data.get("status"),
        }
        attrs = data.get("attrs") or {}
        if attrs:
            args.update(attrs)
        events.append(
            {
                "name": str(data.get("name", "span")),
                "cat": str(data.get("status", "ok")),
                "ph": "X",
                "ts": data["start"] * 1e6,
                "dur": (data["end"] - data["start"]) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: Iterable[SpanLike]) -> None:
    with open(path, "w") as handle:
        json.dump(chrome_trace(spans), handle, indent=1)
        handle.write("\n")


# -- flame summary ----------------------------------------------------------


def flame_summary(spans: Iterable[SpanLike], top: int = 0) -> str:
    """Aggregate finished spans by (lane, name) into a text table.

    Rows sort by total simulated seconds, descending — the flame view of
    where request time goes.  ``top`` truncates (0 keeps everything).
    """
    totals: Dict[tuple, List[float]] = {}  # (lane, name) -> [count, total, max]
    for span in spans:
        data = _as_dict(span)
        if data.get("end") is None:
            continue
        duration = data["end"] - data["start"]
        key = (str(data.get("lane", "")), str(data.get("name", "")))
        entry = totals.get(key)
        if entry is None:
            totals[key] = [1.0, duration, duration]
        else:
            entry[0] += 1.0
            entry[1] += duration
            if duration > entry[2]:
                entry[2] = duration
    if not totals:
        return "(no finished spans)"
    rows = sorted(totals.items(), key=lambda kv: (-kv[1][1], kv[0]))
    if top > 0:
        rows = rows[:top]
    lane_w = max(4, max(len(lane) for (lane, _), _ in rows))
    name_w = max(4, max(len(name) for (_, name), _ in rows))
    lines = [
        f"{'lane':<{lane_w}}  {'span':<{name_w}}  {'count':>7}  "
        f"{'total s':>10}  {'mean ms':>9}  {'max ms':>9}"
    ]
    for (lane, name), (count, total, peak) in rows:
        lines.append(
            f"{lane:<{lane_w}}  {name:<{name_w}}  {int(count):>7}  "
            f"{total:>10.4f}  {total / count * 1e3:>9.3f}  {peak * 1e3:>9.3f}"
        )
    return "\n".join(lines)


def breakdown_table(requests: Sequence[tuple], limit: int = 0) -> str:
    """Per-request latency breakdown for ``(root, segments)`` pairs.

    One row per traced request: total response time plus one column per
    segment name in path order.  Used by ``examples/observability.py``.
    """
    finished = [(r, segs) for r, segs in requests if r.finished]
    if limit > 0:
        finished = finished[:limit]
    if not finished:
        return "(no traced requests)"
    names: List[str] = []
    for _root, segments in finished:
        for segment in segments:
            if segment.finished and segment.name not in names:
                names.append(segment.name)
    header = (
        f"{'trace':>5}  {'lane':<14}  {'total ms':>9}  "
        + "  ".join(f"{name + ' ms':>14}" for name in names)
    )
    lines = [header]
    for root, segments in finished:
        by_name = {s.name: s for s in segments if s.finished}
        cells = []
        for name in names:
            segment = by_name.get(name)
            cells.append(
                f"{segment.duration * 1e3:>14.3f}" if segment is not None else f"{'-':>14}"
            )
        lines.append(
            f"{root.context.trace_id:>5}  {root.lane:<14}  "
            f"{root.duration * 1e3:>9.3f}  " + "  ".join(cells)
        )
    return "\n".join(lines)
