"""``soda-obs``: inspect observability artefacts from the command line.

Subcommands over files the experiments runner (or an example) wrote:

* ``soda-obs trace-summary run.spans.json`` — the flame table plus
  per-request counts for a ``soda-spans/1`` file.
* ``soda-obs chrome-export run.spans.json -o run.chrome.json`` —
  convert spans to Chrome trace-event JSON (open in Perfetto or
  ``chrome://tracing``).  With ``--federated`` the input is a
  ``soda-fedprofile/1`` document instead, and the export is the
  multi-lane federation timeline (one lane per shard, epoch barriers
  as instant events).
* ``soda-obs federation-summary run.fedprofile.json`` — the epoch
  critical-path report: per-worker compute vs barrier stall, the
  critical path, and the achievable-speedup bound.
* ``soda-obs metrics-dump run.prom [--grep switch]`` — validate and
  print a Prometheus text dump, optionally filtered.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.obs.export import (
    chrome_trace,
    flame_summary,
    load_federation_profile,
    load_spans_json,
)
from repro.obs.federation import FederationProfiler

__all__ = ["main"]


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    spans = load_spans_json(args.spans)
    finished = [s for s in spans if s.get("end") is not None]
    roots = [s for s in finished if s.get("parent") is None]
    failed = [s for s in roots if s.get("status") != "ok"]
    print(f"{args.spans}: {len(spans)} spans, {len(roots)} requests, "
          f"{len(failed)} not-ok")
    if roots:
        total = sum(s["end"] - s["start"] for s in roots)
        print(f"request time: total {total:.4f} s, "
              f"mean {total / len(roots) * 1e3:.3f} ms")
    print()
    print(flame_summary(spans, top=args.top))
    return 0


def _default_out(path: str, suffix: str) -> str:
    # "x.spans.json" -> "x.chrome.json", but "x.fedprofile.json" ->
    # "x.fedprofile.chrome.json" — the two exports of one run must not
    # collide on a default name.
    for known in (".spans.json", ".json"):
        if path.endswith(known):
            return path[: -len(known)] + suffix
    return path + suffix


def _cmd_chrome_export(args: argparse.Namespace) -> int:
    if args.federated:
        profiler = FederationProfiler.from_payload(
            load_federation_profile(args.spans)
        )
        trace = profiler.chrome_trace()
    else:
        trace = chrome_trace(load_spans_json(args.spans))
    out = args.out or _default_out(args.spans, ".chrome.json")
    with open(out, "w") as handle:
        json.dump(trace, handle, indent=1)
        handle.write("\n")
    print(f"wrote {out} ({len(trace['traceEvents'])} events)")
    return 0


def _cmd_federation_summary(args: argparse.Namespace) -> int:
    profiler = FederationProfiler.from_payload(
        load_federation_profile(args.profile)
    )
    print(f"{args.profile}:")
    print(profiler.render())
    return 0


def _cmd_metrics_dump(args: argparse.Namespace) -> int:
    with open(args.metrics) as handle:
        text = handle.read()
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line or line.startswith("#"):
            continue
        head, _, value = line.rpartition(" ")
        if not head:
            print(f"{args.metrics}:{lineno}: malformed sample {line!r}", file=sys.stderr)
            return 1
        try:
            float(value)
        except ValueError:
            print(
                f"{args.metrics}:{lineno}: non-numeric value {value!r}", file=sys.stderr
            )
            return 1
        samples += 1
    shown = text.splitlines()
    if args.grep:
        shown = [line for line in shown if args.grep in line]
    for line in shown:
        print(line)
    print(f"# {samples} samples ok", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="soda-obs",
        description="Inspect SODA observability artefacts (spans, metrics).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser("trace-summary", help="flame summary of a spans file")
    summary.add_argument("spans", help="a soda-spans/1 JSON file")
    summary.add_argument("--top", type=int, default=0, help="keep only the top N rows")

    chrome = sub.add_parser("chrome-export", help="convert spans to Chrome trace JSON")
    chrome.add_argument(
        "spans", help="a soda-spans/1 file (or soda-fedprofile/1 with --federated)"
    )
    chrome.add_argument("-o", "--out", default=None, help="output path")
    chrome.add_argument(
        "--federated",
        action="store_true",
        help="input is a soda-fedprofile/1 document; export the "
        "multi-lane federation timeline",
    )

    federation = sub.add_parser(
        "federation-summary",
        help="critical-path report for a soda-fedprofile/1 file",
    )
    federation.add_argument("profile", help="a soda-fedprofile/1 JSON file")

    dump = sub.add_parser("metrics-dump", help="validate/print a Prometheus dump")
    dump.add_argument("metrics", help="a Prometheus text exposition file")
    dump.add_argument("--grep", default=None, help="only print lines containing this")

    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    if args.command == "trace-summary":
        return _cmd_trace_summary(args)
    if args.command == "chrome-export":
        return _cmd_chrome_export(args)
    if args.command == "federation-summary":
        return _cmd_federation_summary(args)
    return _cmd_metrics_dump(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
