"""Kernel profiling: where does the event loop spend its wall-time?

A :class:`KernelProfiler` installed on a
:class:`~repro.sim.kernel.Simulator` (``sim.set_profiler(profiler)``)
makes the kernel dispatch every heap entry through a profiled loop that
records, per *callback site*:

* how many events fired there, and
* the wall-clock (host) time their callbacks consumed,

plus the heap-depth high-water mark over the run.  Sites are derived
from what the kernel already knows — the resumed process's name, the
event type and its first callback's owner — and normalised so instance
suffixes (``siege-worker-3``, ``serve:web@seattle#0``) aggregate into
one row.

The profiler measures **wall time only**; it never reads or writes
simulated state, so a profiled run produces bit-identical simulation
results (the determinism guard pins this).  With no profiler installed
the kernel keeps its allocation-free fast loop — the opt-in costs one
``is not None`` check per :meth:`~repro.sim.kernel.Simulator.run` call,
not per event.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

__all__ = ["SiteStats", "KernelProfiler", "profiler_of"]

_INSTANCE_DIGITS = re.compile(r"\d+")


class SiteStats:
    """Aggregate for one callback site."""

    __slots__ = ("events", "wall_s")

    def __init__(self) -> None:
        self.events = 0
        self.wall_s = 0.0


class KernelProfiler:
    """Counts events and wall-time per callback site; tracks heap depth."""

    def __init__(self, collapse_instances: bool = True):
        #: site -> SiteStats
        self.sites: Dict[str, SiteStats] = {}
        self.events_total = 0
        self.wall_s_total = 0.0
        self.heap_high_water = 0
        self.collapse_instances = collapse_instances
        self._site_cache: Dict[str, str] = {}

    # -- kernel-facing API (called from the profiled loop) -------------------
    def install(self, sim, reset: bool = False) -> "KernelProfiler":
        """Attach to ``sim``; subsequent runs use the profiled loop.

        Statistics **accumulate** across ``run(until=...)`` resumptions
        and re-installs — a federated shard advancing in epoch slices
        profiles the whole run, not the last slice.  Pass ``reset=True``
        (or call :meth:`reset`) to zero the site stats and heap
        high-water explicitly.
        """
        if reset:
            self.reset()
        sim.set_profiler(self)
        return self

    def record(self, site: str, wall_s: float) -> None:
        """One dispatched heap entry at ``site`` costing ``wall_s``."""
        if self.collapse_instances:
            normalised = self._site_cache.get(site)
            if normalised is None:
                normalised = _INSTANCE_DIGITS.sub("N", site)
                self._site_cache[site] = normalised
            site = normalised
        stats = self.sites.get(site)
        if stats is None:
            stats = SiteStats()
            self.sites[site] = stats
        stats.events += 1
        stats.wall_s += wall_s
        self.events_total += 1
        self.wall_s_total += wall_s

    def note_heap_depth(self, depth: int) -> None:
        if depth > self.heap_high_water:
            self.heap_high_water = depth

    # -- reporting -----------------------------------------------------------
    def top_sites(self, n: int = 0) -> List[Tuple[str, SiteStats]]:
        """Sites by wall time, descending (``n`` truncates; 0 keeps all)."""
        rows = sorted(
            self.sites.items(), key=lambda kv: (-kv[1].wall_s, kv[0])
        )
        return rows[:n] if n > 0 else rows

    def snapshot(self) -> Dict[str, object]:
        return {
            "events_total": self.events_total,
            "wall_s_total": self.wall_s_total,
            "heap_high_water": self.heap_high_water,
            "sites": {
                site: {"events": s.events, "wall_s": s.wall_s}
                for site, s in sorted(self.sites.items())
            },
        }

    def render(self, top: int = 20) -> str:
        """Terminal table: the kernel's wall-time flame, widest first."""
        if not self.events_total:
            return "(no events profiled)"
        rows = self.top_sites(top)
        site_w = max(4, max(len(site) for site, _ in rows))
        lines = [
            f"kernel profile: {self.events_total} events, "
            f"{self.wall_s_total * 1e3:.2f} ms wall, "
            f"heap high-water {self.heap_high_water}",
            f"{'site':<{site_w}}  {'events':>9}  {'wall ms':>10}  "
            f"{'us/event':>9}  {'share':>6}",
        ]
        for site, stats in rows:
            share = stats.wall_s / self.wall_s_total if self.wall_s_total else 0.0
            lines.append(
                f"{site:<{site_w}}  {stats.events:>9}  {stats.wall_s * 1e3:>10.3f}  "
                f"{stats.wall_s / stats.events * 1e6:>9.2f}  {share:>6.1%}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero all statistics: site stats, totals, heap high-water."""
        self.sites.clear()
        self._site_cache.clear()
        self.events_total = 0
        self.wall_s_total = 0.0
        self.heap_high_water = 0

    # Backwards-compatible alias (pre-federation name).
    clear = reset


def profiler_of(sim) -> Optional[KernelProfiler]:
    """The profiler installed on ``sim``, if any."""
    return getattr(sim, "_profiler", None)
