"""Labeled metrics: counters, gauges and histograms.

A :class:`MetricsRegistry` owns a flat namespace of named metrics, each
carrying a fixed tuple of label *names* and any number of label-*value*
children.  Components instrument themselves against a registry attached
to their simulator (``sim.metrics``); with no registry attached every
instrumentation site is a cheap ``None`` check, so experiments pay
nothing for the machinery they do not use.

Design constraints inherited from the simulation substrate:

* **Determinism** — metrics only *observe*.  Updating a counter never
  touches simulated state, never allocates events, and never iterates a
  set; the exposition (:mod:`repro.obs.prometheus`) sorts metrics by
  name and children by label values so two identical runs render
  byte-identical text.
* **Snapshot queries mid-sim** — all state is plain Python numbers, so
  a registry can be read at any simulated instant without draining or
  locking anything.

>>> registry = MetricsRegistry()
>>> requests = registry.counter(
...     "soda_switch_requests_total", "Requests by outcome", ("service", "outcome"))
>>> requests.inc(service="web", outcome="ok")
>>> requests.value(service="web", outcome="ok")
1.0
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry_of",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram buckets, tuned for request latencies in seconds.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, math.inf,
)

_VALID_FIRST = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")


def _check_name(name: str) -> str:
    if not name or name[0] not in _VALID_FIRST:
        raise ValueError(f"invalid metric name {name!r}")
    return name


class _CounterChild:
    """One label-value combination of a counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount


class _GaugeChild:
    """One label-value combination of a gauge."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _HistogramChild:
    """One label-value combination of a histogram."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]):
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        # Linear scan: bucket lists are short and the constant beats
        # bisect for the typical low-latency observation.
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return


class _Metric:
    """Base: a named family with fixed label names and value children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Tuple[str, ...]):
        self.name = _check_name(name)
        self.help = help
        self.label_names = tuple(label_names)
        self._children: Dict[Tuple[str, ...], object] = {}

    def _new_child(self) -> object:
        raise NotImplementedError

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, got {tuple(labels)}"
            )
        return tuple(str(labels[k]) for k in self.label_names)

    def labels(self, **labels: str):
        """The child for one label-value combination (created on demand)."""
        key = self._key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def samples(self) -> List[Tuple[Tuple[str, ...], object]]:
        """(label values, child) pairs, sorted for deterministic output."""
        return sorted(self._children.items())

    def __len__(self) -> int:
        return len(self._children)


class Counter(_Metric):
    """A monotonically increasing value (events, totals)."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).inc(amount)

    def value(self, **labels: str) -> float:
        return self.labels(**labels).value


class Gauge(_Metric):
    """A value that can go up and down (inflight, utilisation)."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float, **labels: str) -> None:
        self.labels(**labels).set(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).inc(amount)

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).dec(amount)

    def value(self, **labels: str) -> float:
        return self.labels(**labels).value


class Histogram(_Metric):
    """A distribution with cumulative buckets, a sum and a count."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Iterable[float]] = None,
    ):
        super().__init__(name, help, label_names)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if not bounds:
            raise ValueError(f"{name}: histogram needs at least one bucket")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"{name}: bucket bounds must be sorted: {bounds}")
        if not math.isinf(bounds[-1]):
            bounds = bounds + (math.inf,)
        self.buckets = bounds

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float, **labels: str) -> None:
        self.labels(**labels).observe(value)


class MetricsRegistry:
    """A flat namespace of metrics, snapshot-queryable at any instant."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> _Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric) or (
                existing.label_names != metric.label_names
            ):
                raise ValueError(
                    f"metric {metric.name!r} already registered as "
                    f"{existing.kind}{existing.label_names}"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labels: Tuple[str, ...] = ()
    ) -> Counter:
        """Get or create a counter (idempotent for identical shape)."""
        return self._register(Counter(name, help, labels))  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labels: Tuple[str, ...] = ()) -> Gauge:
        """Get or create a gauge (idempotent for identical shape)."""
        return self._register(Gauge(name, help, labels))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Tuple[str, ...] = (),
        buckets: Optional[Iterable[float]] = None,
    ) -> Histogram:
        """Get or create a histogram (idempotent for identical shape)."""
        return self._register(Histogram(name, help, labels, buckets))  # type: ignore[return-value]

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def collect(self) -> List[_Metric]:
        """All metrics, sorted by name (deterministic exposition order)."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, Dict[Tuple[str, ...], float]]:
        """``{metric name: {label values: scalar}}`` for counters/gauges;
        histograms contribute ``name_sum`` and ``name_count`` entries."""
        out: Dict[str, Dict[Tuple[str, ...], float]] = {}
        for metric in self.collect():
            if isinstance(metric, Histogram):
                sums = {k: c.sum for k, c in metric.samples()}  # type: ignore[union-attr]
                counts = {k: float(c.count) for k, c in metric.samples()}  # type: ignore[union-attr]
                out[f"{metric.name}_sum"] = sums
                out[f"{metric.name}_count"] = counts
            else:
                out[metric.name] = {k: c.value for k, c in metric.samples()}  # type: ignore[union-attr]
        return out

    def dump(self) -> List[Dict[str, object]]:
        """A picklable, registry-free snapshot of every family.

        The shard→coordinator wire format for metrics federation: plain
        lists/dicts/numbers only, so it crosses a multiprocessing pipe
        and merges via :class:`repro.obs.federation.FederatedMetrics`
        without importing this module on the far side.  Children are
        sorted (via :meth:`_Metric.samples`) for deterministic merges.
        """
        out: List[Dict[str, object]] = []
        for metric in self.collect():
            family: Dict[str, object] = {
                "name": metric.name,
                "help": metric.help,
                "kind": metric.kind,
                "labels": list(metric.label_names),
            }
            if isinstance(metric, Histogram):
                family["buckets"] = list(metric.buckets)
                family["children"] = [
                    (
                        list(key),
                        {
                            "counts": list(child.counts),  # type: ignore[union-attr]
                            "sum": child.sum,  # type: ignore[union-attr]
                            "count": child.count,  # type: ignore[union-attr]
                        },
                    )
                    for key, child in metric.samples()
                ]
            else:
                family["children"] = [
                    (list(key), child.value)  # type: ignore[union-attr]
                    for key, child in metric.samples()
                ]
            out.append(family)
        return out

    def render(self) -> str:
        """Prometheus text exposition (see :mod:`repro.obs.prometheus`)."""
        from repro.obs.prometheus import render

        return render(self)

    def __len__(self) -> int:
        return len(self._metrics)


def registry_of(sim) -> Optional[MetricsRegistry]:
    """The registry attached to ``sim``, if any (else ``None``).

    Mirrors the :func:`repro.sim.trace.trace` convention: observability
    is attached to the simulator object, and every instrumentation site
    degrades to one attribute lookup when nothing is attached.
    """
    return getattr(sim, "metrics", None)
