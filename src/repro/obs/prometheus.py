"""Prometheus text exposition for a :class:`~repro.obs.metrics.MetricsRegistry`.

Implements the classic ``text/plain; version=0.0.4`` format: ``# HELP``
and ``# TYPE`` headers per family, one ``name{labels} value`` sample
line per child, histograms expanded into cumulative ``_bucket`` series
plus ``_sum``/``_count``.  Output is fully deterministic: families sort
by name, children by label values.

The exposition is a *pull* format — dump it at experiment end, or at any
simulated instant for a mid-run snapshot.
"""

from __future__ import annotations

import math
from typing import List

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = ["render", "format_value", "escape_label_value"]


def escape_label_value(value: str) -> str:
    """Escape per the exposition format: backslash, quote, newline."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_value(value: float) -> str:
    """Render a sample value (ints without trailing .0, +Inf spelled out)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(names, values) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{escape_label_value(value)}"' for name, value in zip(names, values)
    )
    return "{" + inner + "}"


def _bucket_labels_text(names, values, le: float) -> str:
    inner = [
        f'{name}="{escape_label_value(value)}"' for name, value in zip(names, values)
    ]
    inner.append(f'le="{format_value(le)}"')
    return "{" + ",".join(inner) + "}"


def render(registry: MetricsRegistry) -> str:
    """The whole registry as Prometheus exposition text."""
    lines: List[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for values, child in metric.samples():
                cumulative = 0
                for bound, count in zip(child.buckets, child.counts):  # type: ignore[union-attr]
                    cumulative += count
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_bucket_labels_text(metric.label_names, values, bound)}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{metric.name}_sum{_labels_text(metric.label_names, values)}"
                    f" {format_value(child.sum)}"  # type: ignore[union-attr]
                )
                lines.append(
                    f"{metric.name}_count{_labels_text(metric.label_names, values)}"
                    f" {child.count}"  # type: ignore[union-attr]
                )
        else:
            for values, child in metric.samples():
                lines.append(
                    f"{metric.name}{_labels_text(metric.label_names, values)}"
                    f" {format_value(child.value)}"  # type: ignore[union-attr]
                )
    return "\n".join(lines) + ("\n" if lines else "")
