"""Capped exponential backoff for switch-side retries.

A :class:`BackoffPolicy` is the duck-typed object the
:class:`~repro.core.switch.ServiceSwitch` failover engine consults: it
needs only ``max_attempts`` and ``delay(attempt)``.  The policy lives
here (not in core) so the core switch keeps zero imports from the fault
layer — installing a policy is what opts a switch into retrying.

The delay sequence is deterministic (no jitter): determinism is the
whole point of the fault subsystem, and the simulated workload already
de-synchronises retries naturally through queueing.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BackoffPolicy"]


@dataclass(frozen=True)
class BackoffPolicy:
    """``delay(k) = min(cap_s, base_s * factor**(k-1))`` for attempt k.

    With ``factor >= 1`` (validated) the sequence is monotone
    non-decreasing and capped at ``cap_s`` — both properties are pinned
    by ``tests/property/test_fault_properties.py``.
    """

    base_s: float = 0.05
    factor: float = 2.0
    cap_s: float = 1.0
    max_attempts: int = 4

    def __post_init__(self) -> None:
        if self.base_s <= 0:
            raise ValueError(f"base delay must be positive, got {self.base_s}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1 (monotone), got {self.factor}")
        if self.cap_s < self.base_s:
            raise ValueError(
                f"cap {self.cap_s} must be >= base delay {self.base_s}"
            )
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def delay(self, attempt: int) -> float:
        """Backoff before attempt ``attempt + 1`` (``attempt`` is 1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        return min(self.cap_s, self.base_s * self.factor ** (attempt - 1))

    def delays(self) -> tuple:
        """The full delay sequence (one entry per possible retry)."""
        return tuple(self.delay(k) for k in range(1, self.max_attempts))
