"""Switch-side health checking: quarantine dead replicas, restore live ones.

The paper's service switch only skips a crashed node at dispatch time;
between the crash and the watchdog's reboot the node keeps getting
probed by dispatch decisions.  A :class:`SwitchHealthChecker` makes the
failure detection explicit: it periodically probes every back-end of
one switch — a tiny LAN round-trip raced against a timeout, so a node
behind a stalled link is detected as dead even though its guest OS is
fine — and flips the switch's quarantine set accordingly.  Quarantined
nodes stay behind the switch (the watchdog reboots them in place) but
receive no traffic until a probe succeeds again.
"""

from __future__ import annotations

from typing import Any, Generator, List, Tuple

from repro.core.node import VirtualServiceNode
from repro.core.switch import ServiceSwitch
from repro.net.lan import LAN
from repro.obs.metrics import registry_of
from repro.sim.kernel import Event, Simulator

__all__ = ["SwitchHealthChecker"]

# A health probe is a trivial request/ack exchange.
PROBE_SIZE_MB = 0.0005


class SwitchHealthChecker:
    """Periodically probes one switch's back-ends; manages quarantine."""

    def __init__(
        self,
        sim: Simulator,
        switch: ServiceSwitch,
        lan: LAN,
        period_s: float = 1.0,
        probe_timeout_s: float = 0.5,
    ):
        if period_s <= 0:
            raise ValueError(f"period must be positive, got {period_s}")
        if probe_timeout_s <= 0:
            raise ValueError(f"probe timeout must be positive, got {probe_timeout_s}")
        self.sim = sim
        self.switch = switch
        self.lan = lan
        self.period_s = period_s
        self.probe_timeout_s = probe_timeout_s
        self.probes = 0
        self.quarantines = 0
        self.recoveries = 0
        #: (time, node name, "quarantine" | "restore")
        self.log: List[Tuple[float, str, str]] = []

    def run(self, duration_s: float) -> Generator[Event, Any, None]:
        """Probe every back-end each period (a sim process)."""
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        deadline = self.sim.now + duration_s
        while self.sim.now < deadline:
            for node in list(self.switch.nodes):
                healthy = yield from self._probe(node)
                self._apply(node, healthy)
            yield self.sim.timeout(self.period_s)

    def _probe(self, node: VirtualServiceNode) -> Generator[Event, Any, bool]:
        """One liveness probe; True iff the node answered in time."""
        self.probes += 1
        if node.torn_down or not node.is_available:
            return False
        home_nic = self.switch.home_node.host.nic
        if node.host.nic is home_nic:
            # Co-located with the switch: no wire to fail, the state
            # check above is the whole probe.
            return True
        flow = self.lan.transfer(
            home_nic, node.host.nic, PROBE_SIZE_MB,
            label=f"health:{self.switch.service_name}:{node.name}",
        )
        guard = self.sim.timeout(self.probe_timeout_s)
        yield self.sim.any_of([flow.done, guard])
        # A stalled/partitioned link freezes the probe flow: the guard
        # fires first and the node is treated as unreachable even though
        # its guest is running.  The abandoned flow drains (harmlessly)
        # whenever the link comes back.
        return flow.done.triggered and node.is_available

    def _apply(self, node: VirtualServiceNode, healthy: bool) -> None:
        quarantined = node.name in self.switch.quarantined
        if healthy and quarantined:
            self.switch.unquarantine(node)
            self.recoveries += 1
            self.log.append((self.sim.now, node.name, "restore"))
            self._obs("restore")
        elif not healthy and not quarantined:
            self.switch.quarantine(node)
            self.quarantines += 1
            self.log.append((self.sim.now, node.name, "quarantine"))
            self._obs("quarantine")

    def _obs(self, action: str) -> None:
        registry = registry_of(self.sim)
        if registry is not None:
            registry.counter(
                "soda_health_transitions_total",
                "Quarantine/restore transitions made by health checkers.",
                ("service", "action"),
            ).inc(service=self.switch.service_name, action=action)
