"""Fault schedules: what breaks, when, for how long.

A :class:`FaultSchedule` is an immutable, sorted plan of
:class:`FaultEvent` instants — either written explicitly (regression
tests pin exact scenarios) or drawn from named seeded streams
(:func:`seeded_campaign`, for chaos soaks).  The schedule is pure data:
arming it against a live testbed is the
:class:`~repro.faults.injector.FaultInjector`'s job, which keeps
schedules hashable, comparable and printable — the determinism guard
literally compares them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

from repro.sim.rng import RandomStreams

__all__ = ["FaultKind", "FaultEvent", "FaultSchedule", "seeded_campaign"]


class FaultKind(enum.Enum):
    """What breaks.  Values order deterministically in schedules."""

    NODE_CRASH = "node_crash"        # one guest OS panics
    HOST_OUTAGE = "host_outage"      # a host drops: guests crash, link dark
    LINK_STALL = "link_stall"        # switch-to-node (host) link freezes
    LAN_DEGRADE = "lan_degrade"      # shared segment capacity × factor
    PARTITION = "partition"          # segment splits into two islands


# Kinds that describe a condition with an extent in time (and therefore
# need duration_s > 0); a NODE_CRASH is an instant — recovery is the
# watchdog's business, not the schedule's.
_DURABLE = (
    FaultKind.HOST_OUTAGE,
    FaultKind.LINK_STALL,
    FaultKind.LAN_DEGRADE,
    FaultKind.PARTITION,
)


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One planned fault.

    ``target`` names what breaks: a node name (NODE_CRASH), a host name
    (HOST_OUTAGE, LINK_STALL), or a ``|``-joined NIC-name group for
    PARTITION; LAN_DEGRADE ignores it.  ``factor`` is the capacity
    multiplier for LAN_DEGRADE.
    """

    at: float
    kind: FaultKind
    target: str = ""
    duration_s: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"fault instant must be >= 0, got {self.at}")
        if self.duration_s < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration_s}")
        if self.kind in _DURABLE and self.duration_s == 0:
            raise ValueError(f"{self.kind.value} needs a positive duration")
        if not 0 < self.factor <= 1:
            raise ValueError(f"degrade factor must be in (0, 1], got {self.factor}")
        if self.kind is not FaultKind.LAN_DEGRADE and self.factor != 1.0:
            raise ValueError("factor is only meaningful for lan_degrade")
        if self.kind in (FaultKind.NODE_CRASH, FaultKind.HOST_OUTAGE,
                         FaultKind.LINK_STALL, FaultKind.PARTITION) and not self.target:
            raise ValueError(f"{self.kind.value} needs a target")

    @property
    def ends_at(self) -> float:
        return self.at + self.duration_s

    def sort_key(self) -> Tuple[float, str, str]:
        return (self.at, self.kind.value, self.target)


class FaultSchedule:
    """An immutable, time-sorted sequence of fault events."""

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=FaultEvent.sort_key)
        )

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self.events == other.events

    def __hash__(self) -> int:
        return hash(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultSchedule({len(self.events)} events, horizon={self.horizon:g}s)"

    @property
    def horizon(self) -> float:
        """The instant the last fault has fully played out."""
        return max((e.ends_at for e in self.events), default=0.0)

    def of_kind(self, kind: FaultKind) -> Tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.kind is kind)


def seeded_campaign(
    streams: RandomStreams,
    duration_s: float,
    node_names: Sequence[str],
    host_names: Sequence[str] = (),
    n_crashes: int = 3,
    n_stalls: int = 1,
    stall_s: float = 2.0,
    n_outages: int = 0,
    outage_s: float = 2.0,
    n_degrades: int = 1,
    degrade_s: float = 5.0,
    degrade_factor: float = 0.3,
    window: Tuple[float, float] = (0.1, 0.8),
) -> FaultSchedule:
    """Draw a random campaign from named streams (reproducible by seed).

    Fault instants land in ``[window[0], window[1]] * duration_s`` so
    durable faults finish — and watchdog reboots complete — before the
    scenario drains.  Each fault family draws from its own named stream,
    so e.g. adding a stall never perturbs which nodes crash.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    lo, hi = window
    if not 0 <= lo <= hi <= 1:
        raise ValueError(f"window must satisfy 0 <= lo <= hi <= 1, got {window}")
    if (n_crashes or n_outages or n_stalls) and not (node_names or host_names):
        raise ValueError("campaign needs node/host names to target")

    def _at(stream: str) -> float:
        return streams.uniform(stream, lo * duration_s, hi * duration_s)

    events = []
    for _ in range(n_crashes):
        target = node_names[streams.choice("faults-crash-target", len(node_names))]
        events.append(FaultEvent(_at("faults-crash-at"), FaultKind.NODE_CRASH, target))
    stall_targets = tuple(host_names) or tuple(node_names)
    for _ in range(n_stalls):
        target = stall_targets[streams.choice("faults-stall-target", len(stall_targets))]
        events.append(
            FaultEvent(
                _at("faults-stall-at"), FaultKind.LINK_STALL, target,
                duration_s=stall_s,
            )
        )
    for _ in range(n_outages):
        target = host_names[streams.choice("faults-outage-target", len(host_names))]
        events.append(
            FaultEvent(
                _at("faults-outage-at"), FaultKind.HOST_OUTAGE, target,
                duration_s=outage_s,
            )
        )
    for _ in range(n_degrades):
        events.append(
            FaultEvent(
                _at("faults-degrade-at"), FaultKind.LAN_DEGRADE,
                duration_s=degrade_s, factor=degrade_factor,
            )
        )
    return FaultSchedule(events)
