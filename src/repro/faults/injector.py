"""Arms a :class:`~repro.faults.schedule.FaultSchedule` against a testbed.

One simulated process per fault event sleeps until the event's instant
and then mutates the platform — crashing guests, stalling links,
degrading the segment — and, for durable faults, restores the nominal
condition when the duration elapses.  Every action is appended to a
plain-tuple :attr:`FaultInjector.log`, which is the comparable artefact
the determinism guard pins: same seed + same schedule ⇒ identical log.

Observability: injections emit spans (lane ``faults``) and a
``soda_faults_injected_total`` counter, but never *schedule* anything —
the obs stack observes the injection processes that exist anyway, so
digests stay bit-identical with obs on or off.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.node import VirtualServiceNode
from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule
from repro.guestos.uml import UmlState
from repro.net.lan import LAN
from repro.obs.metrics import registry_of
from repro.obs.tracing import tracer_of
from repro.sim.kernel import Event, Process, Simulator

__all__ = ["FaultInjector"]


class FaultInjector:
    """Executes fault events against live nodes and the LAN."""

    def __init__(
        self,
        sim: Simulator,
        lan: LAN,
        nodes: Sequence[VirtualServiceNode] = (),
        wan_links: Sequence[Any] = (),
    ):
        self.sim = sim
        self.lan = lan
        self.nodes: List[VirtualServiceNode] = list(nodes)
        # WAN links registered by name: a LINK_STALL whose target names
        # one of these freezes the whole link (both gateway NICs) via
        # WanLink.stall()/restore() instead of a single LAN NIC.
        self.wan_links: Dict[str, Any] = {link.name: link for link in wan_links}
        #: (time, kind value, target, phase) — phase is "inject",
        #: "restore", or "skip" (target not in a faultable state).
        self.log: List[Tuple[float, str, str, str]] = []
        self.injected: Dict[str, int] = {}
        # LAN_DEGRADE restores to the bandwidth seen at arm time; with
        # overlapping degrades the *last* restore wins (counted so the
        # nominal rate only returns when every degrade has lapsed).
        self._nominal_bandwidth = lan.bandwidth_mbps
        self._degrades_active = 0

    def add_nodes(self, nodes: Sequence[VirtualServiceNode]) -> None:
        self.nodes.extend(nodes)

    def add_wan_link(self, link: Any) -> None:
        """Register a :class:`~repro.net.wan.WanLink` as a stall target."""
        if link.name in self.wan_links:
            raise ValueError(f"WAN link {link.name!r} already registered")
        self.wan_links[link.name] = link

    # -- arming -------------------------------------------------------------
    def arm(self, schedule: FaultSchedule) -> List[Process]:
        """Start one background process per event; returns the processes.

        Event instants are *relative to arming* — a schedule written for
        ``at=5.0`` fires five simulated seconds after ``arm`` is called,
        however long deployment took to reach that point.
        """
        base = self.sim.now
        return [
            self.sim.process(
                self._fire(event, base), name=f"fault:{event.kind.value}"
            )
            for event in schedule
        ]

    # -- bookkeeping --------------------------------------------------------
    def _record(self, kind: FaultKind, target: str, phase: str) -> None:
        self.log.append((self.sim.now, kind.value, target, phase))
        if phase == "inject":
            self.injected[kind.value] = self.injected.get(kind.value, 0) + 1
            registry = registry_of(self.sim)
            if registry is not None:
                registry.counter(
                    "soda_faults_injected_total",
                    "Faults injected into the platform, by kind.",
                    ("kind",),
                ).inc(kind=kind.value)

    def _span(self, event: FaultEvent):
        tracer = tracer_of(self.sim)
        if tracer is None:
            return None
        return tracer.start_span(
            f"fault:{event.kind.value}", lane="faults", start=self.sim.now,
            target=event.target,
        )

    # -- the per-event process ---------------------------------------------
    def _fire(self, event: FaultEvent, base: float) -> Generator[Event, Any, None]:
        if base + event.at > self.sim.now:
            yield self.sim.timeout(base + event.at - self.sim.now)
        if event.kind is FaultKind.NODE_CRASH:
            self._crash_node(event)
            return
        span = None
        if event.kind is FaultKind.HOST_OUTAGE:
            span = self._host_outage(event)
        elif event.kind is FaultKind.LINK_STALL:
            span = self._link_stall_start(event)
        elif event.kind is FaultKind.LAN_DEGRADE:
            span = self._degrade_start(event)
        elif event.kind is FaultKind.PARTITION:
            span = self._partition_start(event)
        yield self.sim.timeout(event.duration_s)
        if event.kind is FaultKind.LINK_STALL and event.target in self.wan_links:
            self.wan_links[event.target].restore()
        elif event.kind is FaultKind.HOST_OUTAGE or event.kind is FaultKind.LINK_STALL:
            self.lan.unstall_nic(self.lan.find_nic(event.target))
        elif event.kind is FaultKind.LAN_DEGRADE:
            self._degrades_active -= 1
            if self._degrades_active == 0:
                self.lan.set_bandwidth(self._nominal_bandwidth)
        elif event.kind is FaultKind.PARTITION:
            self.lan.heal_partition()
        self._record(event.kind, event.target, "restore")
        if span is not None:
            span.finish(self.sim.now)

    def _node_named(self, name: str) -> Optional[VirtualServiceNode]:
        for node in self.nodes:
            if node.name == name:
                return node
        return None

    def _crash_node(self, event: FaultEvent) -> None:
        node = self._node_named(event.target)
        if (
            node is None
            or node.torn_down
            or node.vm.state not in (UmlState.RUNNING, UmlState.BOOTING)
        ):
            # Already crashed / stopped / unknown: a fault that finds
            # nothing to break is logged, not an error — random
            # campaigns may well hit the same node twice.
            self._record(event.kind, event.target, "skip")
            return
        span = self._span(event)
        node.vm.crash(cause=f"fault-injection@{event.at:g}")
        self._record(event.kind, event.target, "inject")
        if span is not None:
            span.finish(self.sim.now)

    def _host_outage(self, event: FaultEvent):
        """Crash every guest on the host and darken its link."""
        span = self._span(event)
        for node in self.nodes:
            if (
                node.host.name == event.target
                and not node.torn_down
                and node.vm.state in (UmlState.RUNNING, UmlState.BOOTING)
            ):
                node.vm.crash(cause=f"host-outage@{event.at:g}")
        self.lan.stall_nic(self.lan.find_nic(event.target))
        self._record(event.kind, event.target, "inject")
        return span

    def _link_stall_start(self, event: FaultEvent):
        span = self._span(event)
        if event.target in self.wan_links:
            self.wan_links[event.target].stall()
        else:
            self.lan.stall_nic(self.lan.find_nic(event.target))
        self._record(event.kind, event.target, "inject")
        return span

    def _degrade_start(self, event: FaultEvent):
        span = self._span(event)
        self._degrades_active += 1
        self.lan.set_bandwidth(self._nominal_bandwidth * event.factor)
        self._record(event.kind, event.target, "inject")
        return span

    def _partition_start(self, event: FaultEvent):
        span = self._span(event)
        group = [self.lan.find_nic(name) for name in event.target.split("|")]
        self.lan.partition(group)
        self._record(event.kind, event.target, "inject")
        return span
