"""Deterministic fault injection (extension).

Paper §3.5 concedes SODA only "jails" a fault inside one service —
recovery is the operator's job.  This package plays the adversary *and*
the operator's tooling so that story can be tested end to end:

* :mod:`repro.faults.schedule` — :class:`FaultSchedule`: what breaks,
  when, for how long; explicit or drawn from seeded streams.
* :mod:`repro.faults.injector` — :class:`FaultInjector`: arms a
  schedule against live nodes and the LAN; keeps a comparable log.
* :mod:`repro.faults.retry` — :class:`BackoffPolicy`: capped
  exponential backoff the switch failover engine consults.
* :mod:`repro.faults.health` — :class:`SwitchHealthChecker`:
  probe-based quarantine of dead replicas.
* :mod:`repro.faults.chaos` — the full chaos scenario harness shared
  by the experiment, the soak test, and the determinism guard.

Everything is a pure function of (seed, schedule): same inputs, same
fault log, same digests — with observability on or off.
"""

from repro.faults.health import SwitchHealthChecker
from repro.faults.injector import FaultInjector
from repro.faults.retry import BackoffPolicy
from repro.faults.schedule import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    seeded_campaign,
)

__all__ = [
    "BackoffPolicy",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "SwitchHealthChecker",
    "seeded_campaign",
]
