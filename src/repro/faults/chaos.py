"""The chaos scenario: three SLA tiers served through a fault campaign.

One reusable harness shared by the ``ablation_faults`` experiment, the
chaos soak test, and the determinism guard.  It builds a three-host HUP
(WORST_FIT placement, so each tier's two replicas land on different
hosts), deploys gold/silver/bronze services with the full resilience
stack armed — capacity-aware shedding, switch retry/backoff with a
timeout budget, per-service health checkers, and node watchdogs — then
drives open-loop Poisson load through a seeded fault campaign and
accounts for every request: ``served + failed + shed == issued``.

Everything observable is folded into :meth:`ChaosReport.digest`, a
plain dict of exact numbers the determinism guard compares ``==``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import HUPTestbed, MachineConfig, PlacementStrategy, ResourceRequirement
from repro.core.auth import Credentials
from repro.core.errors import RequestSheddedError, RequestTimeoutError, SODAError
from repro.core.recovery import NodeWatchdog
from repro.faults.health import SwitchHealthChecker
from repro.faults.injector import FaultInjector
from repro.faults.retry import BackoffPolicy
from repro.faults.schedule import FaultSchedule, seeded_campaign
from repro.host.machine import Host
from repro.image.profiles import make_s1_web_content
from repro.sla import SLAContract
from repro.sla.enforcement import ClassPriorityShedder
from repro.workload.apps import web_request
from repro.workload.clients import ClientPool

__all__ = ["ClassStats", "ChaosReport", "run_chaos_scenario"]

CLASSES = ("gold", "silver", "bronze")

# How long the watchdogs/health checkers outlive the load window, so the
# last campaign fault is detected, rebooted and un-quarantined before
# the simulation drains.
TAIL_S = 15.0


@dataclass
class ClassStats:
    """Request accounting for one service class."""

    issued: int = 0
    served: int = 0
    failed: int = 0
    shed: int = 0
    timeouts: int = 0  # sub-count of failed

    @property
    def accounted(self) -> int:
        return self.served + self.failed + self.shed

    @property
    def availability(self) -> float:
        """Fraction of issued requests that were served."""
        return self.served / self.issued if self.issued else 1.0


@dataclass
class ChaosReport:
    """Everything observable about one chaos run."""

    seed: int
    duration_s: float
    window_s: float
    stats: Dict[str, ClassStats]
    #: (relative time, class name, "ok" | "failed" | "shed") per request.
    outcomes: Tuple[Tuple[float, str, str], ...]
    fault_log: Tuple[Tuple[float, str, str, str], ...]
    #: node name -> (detected_at, restored_at) per watchdog reboot.
    reboots: Dict[str, Tuple[Tuple[float, float], ...]]
    health_log: Dict[str, Tuple[Tuple[float, str, str], ...]]
    failovers: Dict[str, int]
    post_faults_ok: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def total_reboots(self) -> int:
        return sum(len(r) for r in self.reboots.values())

    def recovery_times(self) -> Tuple[float, ...]:
        return tuple(
            restored - detected
            for records in self.reboots.values()
            for detected, restored in records
        )

    def availability_timeline(self) -> Tuple[Tuple[float, float], ...]:
        """Per-window platform availability: (window start, ok fraction).

        Windows with no issued requests are skipped (the fluid model
        issues continuously, so in practice every window has traffic).
        """
        buckets: Dict[int, List[int]] = {}
        for time_rel, _cls, outcome in self.outcomes:
            index = int(time_rel // self.window_s)
            ok_total = buckets.setdefault(index, [0, 0])
            ok_total[1] += 1
            if outcome == "ok":
                ok_total[0] += 1
        return tuple(
            (index * self.window_s, ok / total)
            for index, (ok, total) in sorted(buckets.items())
            if total
        )

    def min_window_availability(self) -> float:
        timeline = self.availability_timeline()
        return min((fraction for _start, fraction in timeline), default=1.0)

    def digest(self) -> dict:
        """Exact-number digest for bit-identical comparison."""
        return {
            "seed": self.seed,
            "stats": {
                name: (s.issued, s.served, s.failed, s.shed, s.timeouts)
                for name, s in self.stats.items()
            },
            "outcomes": self.outcomes,
            "faults": self.fault_log,
            "reboots": self.reboots,
            "health": self.health_log,
            "failovers": self.failovers,
            "timeline": self.availability_timeline(),
            "post_faults_ok": self.post_faults_ok,
        }


def default_campaign(
    testbed: HUPTestbed, node_names: List[str], duration_s: float
) -> FaultSchedule:
    """The standard chaos campaign drawn from the testbed's seed."""
    return seeded_campaign(
        testbed.streams.spawn("chaos-campaign"),
        duration_s,
        node_names=node_names,
        host_names=list(testbed.hosts),
        n_crashes=4,
        n_stalls=1,
        stall_s=2.0,
        n_outages=1,
        outage_s=2.0,
        n_degrades=1,
        degrade_s=6.0,
        degrade_factor=0.3,
    )


def run_chaos_scenario(
    seed: int = 0,
    duration_s: float = 60.0,
    campaign: Optional[FaultSchedule] = None,
    with_faults: bool = True,
    rate_rps: float = 8.0,
    dataset_mb: float = 0.1,
    window_s: float = 5.0,
    request_timeout_s: float = 6.0,
) -> ChaosReport:
    """Run the chaos scenario once and account for every request.

    ``campaign=None`` with ``with_faults=True`` arms the seeded default
    campaign; ``with_faults=False`` runs the identical deployment and
    load with no faults at all (the ablation baseline).
    """
    tb = HUPTestbed(seed=seed, strategy=PlacementStrategy.WORST_FIT)
    for i in range(3):
        tb.add_host(
            Host(
                tb.sim, name=f"chaos{i}", cpu_mhz=2600.0, ram_mb=2048.0,
                disk_mb=60_000.0, disk_rate_mbs=50.0,
            )
        )
    tb.finalize()
    repo = tb.add_repository()
    repo.publish(make_s1_web_content())
    tb.agent.register_asp("acme", "supersecret")
    creds = Credentials("acme", "supersecret")

    contracts = {
        "gold": SLAContract.gold(p95_s=0.5),
        "silver": SLAContract.silver(p95_s=1.5),
        "bronze": SLAContract.bronze(p95_s=5.0),
    }
    records = {}
    watchdogs: Dict[str, NodeWatchdog] = {}
    checkers: Dict[str, SwitchHealthChecker] = {}
    for name, contract in contracts.items():
        requirement = ResourceRequirement(n=2, machine=MachineConfig())
        tb.run(
            tb.agent.service_creation(
                creds, name, repo, "web-content", requirement, sla=contract
            ),
            name=f"create:{name}",
        )
        record = tb.master.get_service(name)
        records[name] = record
        switch = record.switch
        # The resilience stack: degradation-aware shedding, retry with
        # capped backoff, a per-request budget, health quarantine, and
        # in-place reboot of crashed guests.
        switch.shedder = ClassPriorityShedder(
            contract.service_class, capacity_aware=True
        )
        switch.retry_policy = BackoffPolicy()
        switch.request_timeout_s = request_timeout_s
        watchdog = NodeWatchdog(tb.sim, record, poll_s=0.5)
        for host_name, daemon in tb.daemons.items():
            watchdog.attach_networking(host_name, daemon.networking)
        watchdogs[name] = watchdog
        tb.spawn(watchdog.watch(duration_s + TAIL_S), name=f"watchdog:{name}")
        checker = SwitchHealthChecker(
            tb.sim, switch, tb.lan, period_s=0.5, probe_timeout_s=0.4
        )
        checkers[name] = checker
        tb.spawn(checker.run(duration_s + TAIL_S), name=f"health:{name}")

    all_nodes = [node for record in records.values() for node in record.nodes]
    injector = FaultInjector(tb.sim, tb.lan, all_nodes)
    if with_faults and campaign is None:
        campaign = default_campaign(tb, [n.name for n in all_nodes], duration_s)
    if with_faults and campaign is not None and len(campaign):
        injector.arm(campaign)

    clients = ClientPool(tb.lan, n=6)
    load = tb.streams.spawn("chaos-load")
    start = tb.now
    stats = {name: ClassStats() for name in contracts}
    outcomes: List[Tuple[float, str, str]] = []

    def one_request(name, switch):
        request = web_request(clients.next_client(), dataset_mb, label=name)
        s = stats[name]
        try:
            yield from switch.serve(request)
        except RequestSheddedError:
            s.shed += 1
            outcomes.append((tb.now - start, name, "shed"))
        except RequestTimeoutError:
            s.failed += 1
            s.timeouts += 1
            outcomes.append((tb.now - start, name, "failed"))
        except SODAError:
            s.failed += 1
            outcomes.append((tb.now - start, name, "failed"))
        else:
            s.served += 1
            outcomes.append((tb.now - start, name, "ok"))

    def drive(name, switch):
        deadline = start + duration_s
        stream = f"chaos-arrivals-{name}"
        while True:
            yield tb.sim.timeout(load.exponential(stream, 1.0 / rate_rps))
            if tb.now >= deadline:
                break
            stats[name].issued += 1
            tb.spawn(one_request(name, switch), name=f"req:{name}")

    for name in contracts:
        tb.spawn(drive(name, records[name].switch), name=f"drive:{name}")

    tb.sim.run()  # drain: drivers, requests, faults, watchdogs, checkers

    # Post-campaign probe: every tier must serve again after the last
    # watchdog reboot (part of the scenario, hence of the digest).
    post_before = len(outcomes)
    for name in contracts:
        stats[name].issued += 1
        tb.run(one_request(name, records[name].switch), name=f"post:{name}")
    post_ok = sum(
        1 for _t, _n, outcome in outcomes[post_before:] if outcome == "ok"
    )

    report = ChaosReport(
        seed=seed,
        duration_s=duration_s,
        window_s=window_s,
        stats=stats,
        outcomes=tuple(outcomes),
        fault_log=tuple(injector.log),
        reboots={
            name: tuple(
                (r.detected_at - start, r.restored_at - start)
                for r in watchdogs[name].history
            )
            for name in contracts
        },
        health_log={name: tuple(checkers[name].log) for name in contracts},
        failovers={name: records[name].switch.failovers for name in contracts},
        post_faults_ok=post_ok,
    )
    return report
