"""SODA reproduction: service hosting utility platforms, simulated.

A full reimplementation of *SODA: a Service-On-Demand Architecture for
Application Service Hosting Utility Platforms* (Jiang & Xu, HPDC 2003)
as a deterministic discrete-event simulation.  Start with
:func:`repro.core.build_paper_testbed` for the paper's two-host setup,
or assemble your own HUP with :class:`repro.core.HUPTestbed`.

Package map: :mod:`repro.sim` (event kernel), :mod:`repro.net` (LAN /
WAN / HTTP), :mod:`repro.host` (machines, schedulers, shaping,
bridging), :mod:`repro.guestos` (UML guests, rootfs tailoring, syscall
costs), :mod:`repro.image` (service images), :mod:`repro.workload`
(siege, attacks), :mod:`repro.core` (SODA itself), :mod:`repro.metrics`
and :mod:`repro.experiments` (the paper's tables and figures).
"""

__version__ = "1.0.0"
