"""CSV export of experiment results.

The text renderers target terminals; plotting pipelines want CSV.
Every :class:`~repro.metrics.report.ExperimentResult` exports its table,
its series, and its comparison block as separate CSV documents.
"""

from __future__ import annotations

import csv
import io
from typing import Dict

from repro.metrics.report import ExperimentResult

__all__ = ["table_csv", "series_csv", "comparisons_csv", "export_all"]


def table_csv(result: ExperimentResult) -> str:
    """The result's main table as CSV (header + rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow(row)
    return buffer.getvalue()


def series_csv(result: ExperimentResult, name: str) -> str:
    """One named series as two-column CSV."""
    if name not in result.series:
        raise KeyError(
            f"no series {name!r} in {result.experiment_id}; "
            f"have {sorted(result.series)}"
        )
    x, y = result.series[name]
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["x", "y"])
    for xv, yv in zip(x, y):
        writer.writerow([xv, yv])
    return buffer.getvalue()


def comparisons_csv(result: ExperimentResult) -> str:
    """The paper-vs-measured block as CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["check", "paper", "measured", "within_tolerance", "note"])
    for c in result.comparisons:
        writer.writerow(
            [
                c.name,
                "" if c.paper is None else c.paper,
                c.measured,
                "" if c.within_tolerance is None else c.within_tolerance,
                c.note,
            ]
        )
    return buffer.getvalue()


def export_all(result: ExperimentResult) -> Dict[str, str]:
    """Every document for one result, keyed by suggested filename."""
    documents = {f"{result.experiment_id}.csv": table_csv(result)}
    if result.comparisons:
        documents[f"{result.experiment_id}_comparisons.csv"] = comparisons_csv(result)
    for index, name in enumerate(sorted(result.series)):
        documents[f"{result.experiment_id}_series{index}.csv"] = series_csv(result, name)
    return documents
