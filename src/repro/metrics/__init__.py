"""Measurement analysis and report rendering.

* :mod:`repro.metrics.stats` — summary statistics, confidence
  intervals, and least-squares fits (used e.g. to verify download time
  is linear in image size, §4.3).
* :mod:`repro.metrics.report` — plain-text table and chart renderers
  plus the :class:`ExperimentResult` container every experiment module
  returns; EXPERIMENTS.md is generated from these.
"""

from repro.metrics.report import Comparison, ExperimentResult, render_chart, render_table
from repro.metrics.stats import confidence_interval_95, linear_fit, summarize

__all__ = [
    "Comparison",
    "ExperimentResult",
    "confidence_interval_95",
    "linear_fit",
    "render_chart",
    "render_table",
    "summarize",
]
