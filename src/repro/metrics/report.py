"""Experiment result containers and plain-text rendering.

Every experiment module returns an :class:`ExperimentResult`; the
runner renders it as the table/figure the paper printed plus a
paper-vs-measured comparison block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Comparison", "ExperimentResult", "render_table", "render_chart"]


@dataclass(frozen=True)
class Comparison:
    """One paper-vs-measured check."""

    name: str
    paper: Optional[float]
    measured: float
    tolerance_rel: float = 0.25
    note: str = ""

    @property
    def within_tolerance(self) -> Optional[bool]:
        """None when the paper reports no number (shape-only checks)."""
        if self.paper is None:
            return None
        if self.paper == 0:
            return abs(self.measured) <= self.tolerance_rel
        return abs(self.measured - self.paper) / abs(self.paper) <= self.tolerance_rel


@dataclass
class ExperimentResult:
    """What one experiment produced."""

    experiment_id: str
    title: str
    headers: List[str] = field(default_factory=list)
    rows: List[List[str]] = field(default_factory=list)
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]] = field(default_factory=dict)
    comparisons: List[Comparison] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *cells) -> None:
        self.rows.append([str(c) for c in cells])

    def compare(
        self,
        name: str,
        paper: Optional[float],
        measured: float,
        tolerance_rel: float = 0.25,
        note: str = "",
    ) -> Comparison:
        comparison = Comparison(name, paper, measured, tolerance_rel, note)
        self.comparisons.append(comparison)
        return comparison

    @property
    def all_within_tolerance(self) -> bool:
        return all(c.within_tolerance is not False for c in self.comparisons)

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            parts.append(render_table(self.headers, self.rows))
        for name, (x, y) in self.series.items():
            parts.append(f"-- {name} --")
            parts.append(render_chart(x, y))
        if self.comparisons:
            comp_rows = []
            for c in self.comparisons:
                status = {True: "ok", False: "OFF", None: "--"}[c.within_tolerance]
                paper = "n/a" if c.paper is None else f"{c.paper:g}"
                comp_rows.append([c.name, paper, f"{c.measured:.4g}", status, c.note])
            parts.append("paper vs measured:")
            parts.append(
                render_table(["check", "paper", "measured", "status", "note"], comp_rows)
            )
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Markdown-ish fixed-width table."""
    if not headers:
        raise ValueError("headers required")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} has {len(row)} cells, expected {len(headers)}")
    cells = [list(map(str, headers))] + [list(map(str, r)) for r in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |")
        if idx == 0:
            lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    return "\n".join(lines)


def render_chart(
    x: Sequence[float], y: Sequence[float], width: int = 50, height: int = 12
) -> str:
    """A small ASCII scatter/line chart (figures in a terminal)."""
    if len(x) != len(y):
        raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
    if not x:
        raise ValueError("empty series")
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    x_lo, x_hi = float(xa.min()), float(xa.max())
    y_lo, y_hi = float(ya.min()), float(ya.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for xv, yv in zip(xa, ya):
        col = int((xv - x_lo) / x_span * (width - 1))
        row = int((yv - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = [f"{y_hi:10.3g} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{y_lo:10.3g} +" + "".join(grid[-1]))
    lines.append(" " * 12 + f"{x_lo:<10.4g}{'':^{max(0, width - 20)}}{x_hi:>10.4g}")
    return "\n".join(lines)
