"""Summary statistics for experiment analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["Summary", "summarize", "confidence_interval_95", "linear_fit"]

# Two-sided 97.5% normal quantile (large-sample CI).
_Z975 = 1.959963984540054


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    if len(values) == 0:
        raise ValueError("cannot summarise an empty sample")
    arr = np.asarray(values, dtype=float)
    return Summary(
        n=len(arr),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if len(arr) > 1 else 0.0,
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )


def confidence_interval_95(values: Sequence[float]) -> Tuple[float, float]:
    """Large-sample 95% CI for the mean (z-based)."""
    if len(values) < 2:
        raise ValueError("need at least two observations for a CI")
    arr = np.asarray(values, dtype=float)
    mean = float(arr.mean())
    half = _Z975 * float(arr.std(ddof=1)) / np.sqrt(len(arr))
    return mean - half, mean + half


def linear_fit(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float, float]:
    """Least-squares ``y = slope*x + intercept``; returns (slope,
    intercept, r_squared).

    Used to check the §4.3 claim that image download time "grows
    linearly with the size of the service image".
    """
    if len(x) != len(y):
        raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
    if len(x) < 2:
        raise ValueError("need at least two points for a fit")
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if np.allclose(xa, xa[0]):
        raise ValueError("x values are all identical")
    slope, intercept = np.polyfit(xa, ya, 1)
    predicted = slope * xa + intercept
    ss_res = float(np.sum((ya - predicted) ** 2))
    ss_tot = float(np.sum((ya - ya.mean()) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return float(slope), float(intercept), r_squared
