"""Run a compiled scenario against the simulated HUP.

``run_scenario(spec, seed, policy)`` deploys one web-content service
per tenant load on the paper testbed (§4: *seattle* + *tacoma*),
replays each tenant's compiled arrival trace against its service
switch, and accounts for every request — ``served + failed + shed ==
issued`` holds for every tenant in every run (the conservation
invariant the property suite pins).

Policy arms (the matrix dimension of the ``scenario-matrix``
experiment):

* ``fcfs`` — the paper's behaviour: no SLA, no shedding, first come
  first served at every switch.
* ``sla`` — each service carries the SLA contract of its load's class
  (gold/silver/bronze) and a capacity-aware
  :class:`~repro.sla.enforcement.ClassPriorityShedder`, so bronze sheds
  first under pressure.
* ``market`` — a spot gate in front of every switch: a
  :class:`~repro.market.pricing.SpotPricer` reprices platform capacity
  from master utilization on a seeded cadence, each tenant carries a
  bid drawn (by class) from the ``scenario:<name>:bids`` stream, and a
  request whose tenant is priced out (bid < spot rate at arrival) is
  shed at the gate without entering the switch.

Background arms: ``background_hosts > 0`` attaches an aggregated fluid
fleet (:meth:`~repro.core.api.HUPTestbed.add_fluid_fleet`) for the
scenario's duration.  Fluid clusters own their own LAN segments and
``fluid:*`` streams, so the focus digest is bit-identical with the
fleet attached or not — the hybrid-fidelity contract, re-checked by a
``scenario-matrix`` comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.core import MachineConfig, ResourceRequirement, build_paper_testbed
from repro.core.auth import Credentials
from repro.core.errors import RequestSheddedError, SODAError
from repro.faults.chaos import ClassStats
from repro.image.profiles import paper_profiles
from repro.market.pricing import PricingParams, SpotPricer
from repro.scenario.compile import CompiledScenario, compile_scenario
from repro.scenario.spec import ScenarioSpec
from repro.sim.kernel import Event
from repro.sla import SLAContract
from repro.sla.enforcement import ClassPriorityShedder
from repro.workload.apps import web_request
from repro.workload.clients import ClientPool

__all__ = ["POLICIES", "ScenarioReport", "run_scenario"]

POLICIES = ("fcfs", "sla", "market")

_CONTRACTS = {
    "gold": lambda: SLAContract.gold(p95_s=0.5),
    "silver": lambda: SLAContract.silver(p95_s=1.5),
    "bronze": lambda: SLAContract.bronze(p95_s=5.0),
}

#: Per-class spot bid ranges ($/machine-hour) for the market gate.
_BID_RANGES = {"gold": (1.5, 4.0), "silver": (0.8, 2.0), "bronze": (0.3, 1.0)}


@dataclass
class ScenarioReport:
    """Everything observable about one scenario run."""

    scenario: str
    seed: int
    policy: str
    compiled_sha: str
    stats: Dict[str, ClassStats] = field(default_factory=dict)
    #: (relative time, tenant, "ok" | "failed" | "shed") per request.
    outcomes: Tuple[Tuple[float, str, str], ...] = ()
    #: tenant -> (sum of response times, max response time), exact floats.
    response_s: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    #: spot (time, utilization, rate) ticks; empty off the market arm.
    price_history: Tuple[Tuple[float, float, float], ...] = ()
    priced_out: int = 0
    background_hosts: int = 0
    finished_at: float = 0.0

    @property
    def issued(self) -> int:
        return sum(s.issued for s in self.stats.values())

    @property
    def served(self) -> int:
        return sum(s.served for s in self.stats.values())

    def conservation_holds(self) -> bool:
        return all(s.accounted == s.issued for s in self.stats.values())

    def mean_response_s(self, tenant: str) -> float:
        total, _peak = self.response_s.get(tenant, (0.0, 0.0))
        count = self.stats[tenant].served
        return total / count if count else 0.0

    def digest(self) -> dict:
        """Exact-float digest for the determinism guard (``==`` only)."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "policy": self.policy,
            "compiled": self.compiled_sha,
            "stats": {
                name: (s.issued, s.served, s.failed, s.shed)
                for name, s in sorted(self.stats.items())
            },
            "outcomes": self.outcomes,
            "response_s": dict(sorted(self.response_s.items())),
            "prices": self.price_history,
            "priced_out": self.priced_out,
            "finished_at": self.finished_at,
        }


def run_scenario(
    spec: ScenarioSpec,
    seed: int = 0,
    policy: str = "fcfs",
    compiled: Optional[CompiledScenario] = None,
    nodes_per_service: int = 1,
    n_clients: int = 4,
    background_hosts: int = 0,
) -> ScenarioReport:
    """Compile (unless given) and run one scenario cell to completion."""
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")
    if compiled is None:
        compiled = compile_scenario(spec, seed)
    elif compiled.spec != spec or compiled.seed != seed:
        raise ValueError("compiled scenario does not match (spec, seed)")

    tb = build_paper_testbed(seed=seed)
    repo = tb.add_repository()
    for image in paper_profiles().values():
        repo.publish(image)
    tb.agent.register_asp("scenario-asp", "scenario-secret")
    creds = Credentials("scenario-asp", "scenario-secret")

    switches = {}
    for load in spec.loads:
        contract = _CONTRACTS[load.sla_class]() if policy == "sla" else None
        requirement = ResourceRequirement(
            n=nodes_per_service, machine=MachineConfig()
        )
        tb.run(
            tb.agent.service_creation(
                creds, load.tenant, repo, "web-content", requirement, sla=contract
            ),
            name=f"create:{load.tenant}",
        )
        record = tb.master.get_service(load.tenant)
        record.switch.tenant = load.tenant
        if policy == "sla":
            record.switch.shedder = ClassPriorityShedder(
                contract.service_class, capacity_aware=True
            )
        switches[load.tenant] = record.switch

    # The market arm: a spot gate priced from platform utilization.
    pricer: Optional[SpotPricer] = None
    bids: Dict[str, float] = {}
    if policy == "market":
        pricer = SpotPricer(
            PricingParams(interval_s=max(1.0, spec.duration_s / 30.0)),
            streams=tb.streams,
            utilization_fn=tb.master.utilization,
        )
        bid_stream = f"scenario:{spec.name}:bids"
        for load in spec.loads:  # declared order: draw sequence is part of the seed
            low, high = _BID_RANGES[load.sla_class]
            bids[load.tenant] = tb.streams.uniform(bid_stream, low, high)
        tb.spawn(pricer.run(tb.sim, spec.duration_s), name="scenario-spot")

    clients = ClientPool(tb.lan, n=n_clients)
    if background_hosts > 0:
        fleet = tb.add_fluid_fleet(
            n_hosts=background_hosts,
            n_clusters=max(1, min(4, background_hosts // 25)),
        )
        fleet.start(spec.duration_s)

    report = ScenarioReport(
        scenario=spec.name,
        seed=seed,
        policy=policy,
        compiled_sha=compiled.digest_sha(),
        stats={load.tenant: ClassStats() for load in spec.loads},
        background_hosts=background_hosts,
    )
    outcomes: List[Tuple[float, str, str]] = []
    response_s: Dict[str, List[float]] = {
        load.tenant: [0.0, 0.0] for load in spec.loads
    }
    start = tb.now

    def one_request(tenant: str, size_mb: float) -> Generator[Event, Any, None]:
        stats = report.stats[tenant]
        if pricer is not None and bids[tenant] < pricer.rate:
            report.priced_out += 1
            stats.shed += 1
            outcomes.append((tb.now - start, tenant, "shed"))
            return
        issued_at = tb.now
        request = web_request(clients.next_client(), size_mb, label=tenant)
        try:
            yield from switches[tenant].serve(request)
        except RequestSheddedError:
            stats.shed += 1
            outcomes.append((tb.now - start, tenant, "shed"))
        except SODAError:
            stats.failed += 1
            outcomes.append((tb.now - start, tenant, "failed"))
        else:
            stats.served += 1
            elapsed = tb.now - issued_at
            totals = response_s[tenant]
            totals[0] += elapsed
            totals[1] = max(totals[1], elapsed)
            outcomes.append((tb.now - start, tenant, "ok"))

    def drive(tenant: str) -> Generator[Event, Any, None]:
        for offset, size_mb in compiled.trace_of(tenant).arrivals:
            gap = start + offset - tb.now
            if gap > 0:
                yield tb.sim.timeout(gap)
            report.stats[tenant].issued += 1
            tb.spawn(one_request(tenant, size_mb), name=f"req:{tenant}")

    for load in spec.loads:
        tb.spawn(drive(load.tenant), name=f"drive:{load.tenant}")

    tb.sim.run()  # drain: drivers, requests, the pricer, the fleet

    report.outcomes = tuple(outcomes)
    report.response_s = {
        tenant: (totals[0], totals[1]) for tenant, totals in response_s.items()
    }
    if pricer is not None:
        report.price_history = tuple(pricer.history)
    # Focus clock, not drain clock: a background fleet (or the pricer)
    # may outlive the last focus request, and the hybrid-fidelity
    # contract promises the *focus* digest is fleet-independent.
    report.finished_at = max((t for t, _tenant, _o in outcomes), default=0.0)
    return report
