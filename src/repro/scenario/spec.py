"""Declarative scenario specs: what a workload *is*, as pure data.

SODA's evaluation (§5) drives siege-style open/closed loops and one
DDoS campaign; a hosting utility's actual tenants bring diurnal cycles,
flash crowds, heavy-tailed payloads, correlated bursts, and batch jobs
riding next to interactive traffic.  This module describes all of those
as **frozen dataclasses** — no RNG, no simulator, no side effects — so
a scenario is a value: hashable, comparable, serializable to and from
YAML-ish plain dicts, and compiled (see :mod:`repro.scenario.compile`)
to seeded arrival traces that are a pure function of ``(spec, seed)``.

The vocabulary
--------------
* :class:`SizeModel` — per-request dataset size: fixed, lognormal, or
  truncated Pareto.  Dataset MB drives both the CPU demand and the
  bytes moved (see :mod:`repro.workload.apps`), so heavy-tailed sizes
  *are* heavy-tailed service times.
* arrival models — :class:`ConstantArrivals` (homogeneous Poisson),
  :class:`DiurnalArrivals` (sinusoidal day cycle),
  :class:`FlashCrowdArrivals` (ramp / hold / decay spike), and
  :class:`ReplayArrivals` (a recorded :class:`ArrivalTrace`, offsets
  and sizes replayed verbatim).
* :class:`BurstEnvelope` — a scenario-wide calm/burst modulation that
  multiplies *every* load's rate inside the same seeded burst windows:
  correlated multi-tenant bursts, the case independent per-tenant
  randomness cannot produce.
* :class:`TenantLoad` — one tenant's traffic: an arrival model, a size
  model, an SLA class, and a kind (``interactive`` | ``batch``).
* :class:`ScenarioSpec` — the scenario: named, bounded in time, a
  tuple of loads, an optional burst envelope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Any, Dict, Optional, Tuple, Union

from repro.workload.replay import ArrivalTrace

__all__ = [
    "SizeModel",
    "ConstantArrivals",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "ReplayArrivals",
    "ArrivalModel",
    "BurstEnvelope",
    "TenantLoad",
    "ScenarioSpec",
]

SLA_CLASSES = ("gold", "silver", "bronze")
LOAD_KINDS = ("interactive", "batch")


def _require_finite(name: str, value: float, positive: bool = True) -> None:
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value}")
    if positive and value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


@dataclass(frozen=True)
class SizeModel:
    """Per-request dataset size (MB) distribution.

    * ``fixed`` — every request moves ``mb``.
    * ``lognormal`` — median ``mb``, log-space spread ``sigma``.
    * ``pareto`` — scale ``mb`` (the minimum), tail index ``alpha``;
      smaller ``alpha`` means heavier tail.

    Random kinds are truncated at ``cap_mb`` so one pathological draw
    cannot occupy the simulated LAN for the rest of the run — the cap
    is part of the model, not a hidden safety valve.
    """

    kind: str = "fixed"
    mb: float = 0.1
    sigma: float = 0.5
    alpha: float = 1.5
    cap_mb: float = 8.0

    def __post_init__(self) -> None:
        if self.kind not in ("fixed", "lognormal", "pareto"):
            raise ValueError(f"unknown size model kind {self.kind!r}")
        _require_finite("mb", self.mb)
        _require_finite("sigma", self.sigma, positive=False)
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")
        _require_finite("alpha", self.alpha)
        _require_finite("cap_mb", self.cap_mb)
        if self.cap_mb < self.mb:
            raise ValueError(
                f"cap_mb ({self.cap_mb}) must be >= mb ({self.mb})"
            )


@dataclass(frozen=True)
class ConstantArrivals:
    """Homogeneous Poisson arrivals at ``rate_rps``."""

    rate_rps: float

    def __post_init__(self) -> None:
        _require_finite("rate_rps", self.rate_rps)

    def max_rate(self) -> float:
        return self.rate_rps

    def rate_at(self, t: float) -> float:
        return self.rate_rps


@dataclass(frozen=True)
class DiurnalArrivals:
    """Sinusoidal day cycle between ``base_rps`` and ``base * peak``.

    ``phase_s`` shifts the cycle so multiple tenants can peak at
    different local times (follow-the-sun).
    """

    base_rps: float
    peak_factor: float = 2.0
    period_s: float = 86400.0
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        _require_finite("base_rps", self.base_rps)
        _require_finite("peak_factor", self.peak_factor)
        if self.peak_factor < 1:
            raise ValueError(f"peak_factor must be >= 1, got {self.peak_factor}")
        _require_finite("period_s", self.period_s)
        _require_finite("phase_s", self.phase_s, positive=False)

    def max_rate(self) -> float:
        return self.base_rps * self.peak_factor

    def rate_at(self, t: float) -> float:
        swing = (self.peak_factor - 1.0) / 2.0
        phase = 2 * math.pi * (t + self.phase_s) / self.period_s
        return self.base_rps * (1.0 + swing * (1.0 + math.sin(phase)))


@dataclass(frozen=True)
class FlashCrowdArrivals:
    """A flash crowd: base load, then a ramp / hold / decay spike.

    Rate is ``base_rps`` until ``at_s``, climbs linearly to
    ``base * spike_factor`` over ``ramp_s``, holds for ``hold_s``, and
    decays linearly back to base over ``decay_s``.
    """

    base_rps: float
    spike_factor: float = 5.0
    at_s: float = 0.0
    ramp_s: float = 5.0
    hold_s: float = 10.0
    decay_s: float = 10.0

    def __post_init__(self) -> None:
        _require_finite("base_rps", self.base_rps)
        _require_finite("spike_factor", self.spike_factor)
        if self.spike_factor < 1:
            raise ValueError(
                f"spike_factor must be >= 1, got {self.spike_factor}"
            )
        _require_finite("at_s", self.at_s, positive=False)
        if self.at_s < 0:
            raise ValueError(f"at_s must be >= 0, got {self.at_s}")
        _require_finite("ramp_s", self.ramp_s)
        _require_finite("hold_s", self.hold_s, positive=False)
        if self.hold_s < 0:
            raise ValueError(f"hold_s must be >= 0, got {self.hold_s}")
        _require_finite("decay_s", self.decay_s)

    def max_rate(self) -> float:
        return self.base_rps * self.spike_factor

    def rate_at(self, t: float) -> float:
        peak = self.base_rps * self.spike_factor
        ramp_end = self.at_s + self.ramp_s
        hold_end = ramp_end + self.hold_s
        decay_end = hold_end + self.decay_s
        if t < self.at_s or t >= decay_end:
            return self.base_rps
        if t < ramp_end:
            frac = (t - self.at_s) / self.ramp_s
            return self.base_rps + (peak - self.base_rps) * frac
        if t < hold_end:
            return peak
        frac = (t - hold_end) / self.decay_s
        return peak - (peak - self.base_rps) * frac


@dataclass(frozen=True)
class ReplayArrivals:
    """Replay a recorded :class:`ArrivalTrace` verbatim.

    Offsets *and* dataset sizes come from the recording; the load's
    :class:`SizeModel` is ignored (recorded truth wins).  The trace
    must fit inside the scenario horizon — validated at compile time,
    when the horizon is known.
    """

    trace: ArrivalTrace

    def __post_init__(self) -> None:
        if not isinstance(self.trace, ArrivalTrace):
            raise ValueError(
                f"trace must be an ArrivalTrace, got {type(self.trace).__name__}"
            )

    def max_rate(self) -> float:
        if not len(self.trace):
            return 0.0
        span = self.trace.duration or 1.0
        return len(self.trace) / span

    def rate_at(self, t: float) -> float:  # pragma: no cover - unused shape
        return self.max_rate()


ArrivalModel = Union[
    ConstantArrivals, DiurnalArrivals, FlashCrowdArrivals, ReplayArrivals
]

_ARRIVAL_KINDS: Dict[str, type] = {
    "constant": ConstantArrivals,
    "diurnal": DiurnalArrivals,
    "flash-crowd": FlashCrowdArrivals,
    "replay": ReplayArrivals,
}


@dataclass(frozen=True)
class BurstEnvelope:
    """Correlated calm/burst modulation shared by every load.

    The envelope alternates exponential calm and burst episodes drawn
    from one scenario-level stream; inside a burst window *every*
    tenant's instantaneous rate is multiplied by ``factor`` — bursts
    arrive together, which is what makes them dangerous.
    """

    factor: float = 3.0
    mean_calm_s: float = 60.0
    mean_burst_s: float = 15.0

    def __post_init__(self) -> None:
        _require_finite("factor", self.factor)
        if self.factor < 1:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        _require_finite("mean_calm_s", self.mean_calm_s)
        _require_finite("mean_burst_s", self.mean_burst_s)


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's traffic shape."""

    tenant: str
    arrivals: ArrivalModel
    sizes: SizeModel = SizeModel()
    sla_class: str = "bronze"
    kind: str = "interactive"

    def __post_init__(self) -> None:
        if not self.tenant or not self.tenant.replace("-", "").isalnum():
            raise ValueError(f"bad tenant name {self.tenant!r}")
        if not isinstance(
            self.arrivals,
            (ConstantArrivals, DiurnalArrivals, FlashCrowdArrivals, ReplayArrivals),
        ):
            raise ValueError(
                f"arrivals must be an arrival model, got {self.arrivals!r}"
            )
        if self.sla_class not in SLA_CLASSES:
            raise ValueError(f"unknown SLA class {self.sla_class!r}")
        if self.kind not in LOAD_KINDS:
            raise ValueError(f"unknown load kind {self.kind!r}")


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, bounded, multi-tenant workload scenario."""

    name: str
    duration_s: float
    loads: Tuple[TenantLoad, ...]
    bursts: Optional[BurstEnvelope] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise ValueError(f"bad scenario name {self.name!r}")
        _require_finite("duration_s", self.duration_s)
        if not isinstance(self.loads, tuple):
            object.__setattr__(self, "loads", tuple(self.loads))
        if not self.loads:
            raise ValueError("a scenario needs at least one load")
        names = [load.tenant for load in self.loads]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        for load in self.loads:
            if isinstance(load.arrivals, ReplayArrivals):
                trace = load.arrivals.trace
                if len(trace) and trace.duration > self.duration_s:
                    raise ValueError(
                        f"load {load.tenant!r}: recorded trace runs to "
                        f"{trace.duration}s, past the {self.duration_s}s horizon"
                    )

    # -- YAML-ish (de)serialization --------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain-dict form (inverse of :meth:`from_dict`)."""

        def model_dict(model: ArrivalModel) -> Dict[str, Any]:
            for kind, cls in _ARRIVAL_KINDS.items():
                if type(model) is cls:
                    break
            if kind == "replay":
                return {"kind": "replay", "arrivals": [list(a) for a in model.trace.arrivals]}
            d = {"kind": kind}
            d.update({f.name: getattr(model, f.name) for f in fields(model)})
            return d

        doc: Dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration_s,
            "loads": [
                {
                    "tenant": load.tenant,
                    "sla_class": load.sla_class,
                    "kind": load.kind,
                    "arrivals": model_dict(load.arrivals),
                    "sizes": {f.name: getattr(load.sizes, f.name) for f in fields(SizeModel)},
                }
                for load in self.loads
            ],
        }
        if self.bursts is not None:
            doc["bursts"] = {
                f.name: getattr(self.bursts, f.name) for f in fields(BurstEnvelope)
            }
        if self.description:
            doc["description"] = self.description
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ScenarioSpec":
        """Build a spec from a YAML-ish plain dict.

        The inverse of :meth:`to_dict`; validation is exactly the
        dataclass validation, so a loaded spec is as trustworthy as a
        constructed one.
        """
        if not isinstance(doc, dict):
            raise ValueError(f"scenario document must be a dict, got {type(doc).__name__}")
        unknown = set(doc) - {"name", "duration_s", "loads", "bursts", "description"}
        if unknown:
            raise ValueError(f"unknown scenario keys: {sorted(unknown)}")

        def parse_model(d: Dict[str, Any]) -> ArrivalModel:
            d = dict(d)
            kind = d.pop("kind", None)
            if kind not in _ARRIVAL_KINDS:
                raise ValueError(f"unknown arrival kind {kind!r}")
            if kind == "replay":
                entries = d.pop("arrivals", [])
                if d:
                    raise ValueError(f"unknown replay keys: {sorted(d)}")
                return ReplayArrivals(
                    ArrivalTrace(tuple((float(t), float(mb)) for t, mb in entries))
                )
            return _ARRIVAL_KINDS[kind](**d)

        loads = []
        for entry in doc.get("loads", []):
            entry = dict(entry)
            arrivals = parse_model(entry.pop("arrivals"))
            sizes = SizeModel(**entry.pop("sizes", {}))
            loads.append(TenantLoad(arrivals=arrivals, sizes=sizes, **entry))
        bursts = doc.get("bursts")
        return cls(
            name=doc.get("name", ""),
            duration_s=float(doc.get("duration_s", 0.0)),
            loads=tuple(loads),
            bursts=BurstEnvelope(**bursts) if bursts is not None else None,
            description=doc.get("description", ""),
        )
