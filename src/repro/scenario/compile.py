"""Compile a :class:`ScenarioSpec` into seeded arrival traces.

``compile_scenario(spec, seed)`` is the purity boundary of the scenario
layer: everything stochastic about a scenario is realised here, on
**dedicated named RNG streams** —

* ``scenario:<name>:bursts`` — the correlated burst envelope windows;
* ``scenario:<name>:<tenant>:gap`` — candidate arrival gaps
  (Lewis-Shedler envelope process, see
  :func:`repro.workload.replay.thinned_trace`);
* ``scenario:<name>:<tenant>:thin`` — the thinning uniforms;
* ``scenario:<name>:<tenant>:size`` — per-arrival dataset sizes;
* ``scenario:<name>:bids`` — per-tenant spot-market bids (consumed by
  the ``market`` policy arm of :mod:`repro.scenario.run`).

Stream names embed the scenario *and* tenant name, and per-name seeds
are hash-derived from the master seed (:class:`repro.sim.rng.RandomStreams`),
so (a) the compiled result is a pure function of ``(spec, seed)`` — the
exact-float :meth:`CompiledScenario.digest` is bit-identical across
compilations, processes, and platforms — and (b) scenario draws cannot
perturb any platform stream (``boot-*``, ``siege-*``, ``fluid:*``, …):
the common-random-numbers discipline that lets policy arms share one
workload realisation.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.scenario.spec import ReplayArrivals, ScenarioSpec, SizeModel, TenantLoad
from repro.sim.rng import RandomStreams
from repro.workload.replay import ArrivalTrace, thinned_trace

__all__ = ["CompiledScenario", "compile_scenario", "burst_windows", "size_sampler"]


def burst_windows(
    spec: ScenarioSpec, streams: RandomStreams
) -> Tuple[Tuple[float, float], ...]:
    """The seeded (start, end) burst windows of the scenario's envelope.

    Episodes alternate calm/burst with exponential lengths drawn from
    the single ``scenario:<name>:bursts`` stream; drawing them *once*
    per scenario (not per tenant) is what correlates the bursts.
    """
    if spec.bursts is None:
        return ()
    stream = f"scenario:{spec.name}:bursts"
    windows = []
    t = 0.0
    while t < spec.duration_s:
        t += streams.exponential(stream, spec.bursts.mean_calm_s)
        if t >= spec.duration_s:
            break
        end = t + streams.exponential(stream, spec.bursts.mean_burst_s)
        windows.append((t, min(end, spec.duration_s)))
        t = end
    return tuple(windows)


def size_sampler(
    sizes: SizeModel, streams: RandomStreams, stream: str
) -> Callable[[float], float]:
    """A per-arrival dataset-MB sampler drawing from ``stream``."""
    if sizes.kind == "fixed":
        return lambda _t: sizes.mb
    generator = streams.stream(stream)
    if sizes.kind == "lognormal":

        def draw(_t: float) -> float:
            value = float(generator.lognormal(mean=math.log(sizes.mb), sigma=sizes.sigma))
            return min(value, sizes.cap_mb)

        return draw

    def draw_pareto(_t: float) -> float:
        # numpy's pareto() is the Lomax tail; 1 + tail is the classic
        # Pareto with minimum 1, scaled to the model's minimum size.
        value = sizes.mb * (1.0 + float(generator.pareto(sizes.alpha)))
        return min(value, sizes.cap_mb)

    return draw_pareto


def _burst_factor_fn(
    windows: Tuple[Tuple[float, float], ...], factor: float
) -> Callable[[float], float]:
    def at(t: float) -> float:
        for start, end in windows:
            if start <= t < end:
                return factor
            if t < start:
                break
        return 1.0

    return at


@dataclass(frozen=True)
class CompiledScenario:
    """The realised scenario: one :class:`ArrivalTrace` per tenant."""

    spec: ScenarioSpec
    seed: int
    traces: Tuple[Tuple[str, ArrivalTrace], ...]
    windows: Tuple[Tuple[float, float], ...]

    @property
    def total_arrivals(self) -> int:
        return sum(len(trace) for _tenant, trace in self.traces)

    def trace_of(self, tenant: str) -> ArrivalTrace:
        for name, trace in self.traces:
            if name == tenant:
                return trace
        raise KeyError(f"no load for tenant {tenant!r}")

    def digest(self) -> dict:
        """Exact-float digest: every arrival instant and size, plus the
        burst windows — bit-identical across compilations per seed."""
        return {
            "scenario": self.spec.name,
            "seed": self.seed,
            "duration_s": self.spec.duration_s,
            "windows": self.windows,
            "traces": {
                tenant: trace.arrivals for tenant, trace in self.traces
            },
        }

    def digest_sha(self) -> str:
        """A short hex fingerprint of the exact-float digest."""
        payload = json.dumps(self.digest(), sort_keys=True, default=repr)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _compile_load(
    spec: ScenarioSpec,
    load: TenantLoad,
    streams: RandomStreams,
    windows: Tuple[Tuple[float, float], ...],
) -> ArrivalTrace:
    if isinstance(load.arrivals, ReplayArrivals):
        return load.arrivals.trace  # recorded truth: offsets and sizes verbatim
    prefix = f"scenario:{spec.name}:{load.tenant}"
    factor = spec.bursts.factor if spec.bursts is not None else 1.0
    burst_at = _burst_factor_fn(windows, factor)
    model = load.arrivals

    def rate(t: float) -> float:
        return model.rate_at(t) * burst_at(t)

    return thinned_trace(
        streams,
        rate_fn=rate,
        max_rate=model.max_rate() * factor,
        duration_s=spec.duration_s,
        size_fn=size_sampler(load.sizes, streams, f"{prefix}:size"),
        gap_stream=f"{prefix}:gap",
        thin_stream=f"{prefix}:thin",
    )


def compile_scenario(
    spec: ScenarioSpec,
    seed: int = 0,
    streams: Optional[RandomStreams] = None,
) -> CompiledScenario:
    """Realise ``spec`` into per-tenant arrival traces.

    Pure in ``(spec, seed)``: compiling twice yields bit-identical
    traces and digests.  An existing :class:`RandomStreams` may be
    passed to share a testbed's stream factory — scenario streams are
    namespaced (``scenario:*``), so this never perturbs platform draws.
    """
    if streams is None:
        streams = RandomStreams(seed)
    elif streams.seed != seed:
        raise ValueError(
            f"streams seeded with {streams.seed}, scenario compiled for {seed}"
        )
    windows = burst_windows(spec, streams)
    traces = tuple(
        (load.tenant, _compile_load(spec, load, streams, windows))
        for load in spec.loads
    )
    return CompiledScenario(spec=spec, seed=seed, traces=traces, windows=windows)
