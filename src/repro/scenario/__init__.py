"""Declarative scenario library + compilation + replay (extension).

Frozen workload specs (:mod:`repro.scenario.spec`) compile to seeded
per-tenant arrival traces (:mod:`repro.scenario.compile`) that drive
the platform under a policy arm (:mod:`repro.scenario.run`).  Named
families live in :mod:`repro.scenario.library`; ``soda-scenarios`` is
the CLI; the ``scenario-matrix`` experiment fans scenario x policy x
seed cells.
"""

from repro.scenario.compile import CompiledScenario, compile_scenario
from repro.scenario.library import LIBRARY, get_scenario, list_scenarios
from repro.scenario.run import POLICIES, ScenarioReport, run_scenario
from repro.scenario.spec import (
    ArrivalModel,
    BurstEnvelope,
    ConstantArrivals,
    DiurnalArrivals,
    FlashCrowdArrivals,
    ReplayArrivals,
    ScenarioSpec,
    SizeModel,
    TenantLoad,
)

__all__ = [
    "ArrivalModel",
    "BurstEnvelope",
    "CompiledScenario",
    "ConstantArrivals",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "LIBRARY",
    "POLICIES",
    "ReplayArrivals",
    "ScenarioReport",
    "ScenarioSpec",
    "SizeModel",
    "TenantLoad",
    "compile_scenario",
    "get_scenario",
    "list_scenarios",
    "run_scenario",
]
