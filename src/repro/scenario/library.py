"""The named scenario library.

Six canonical families, one per workload shape the ROADMAP calls out.
Every entry is a builder taking ``duration_s`` (so the ``--fast``
experiment arm can shrink the horizon without distorting the shape:
time-anchored features — flash-crowd onset, diurnal period, burst
episode lengths — scale with the horizon).  Builders return plain
:class:`~repro.scenario.spec.ScenarioSpec` values; nothing here draws
randomness.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Tuple

from repro.scenario.spec import (
    BurstEnvelope,
    ConstantArrivals,
    DiurnalArrivals,
    FlashCrowdArrivals,
    ReplayArrivals,
    ScenarioSpec,
    SizeModel,
    TenantLoad,
)
from repro.workload.replay import ArrivalTrace

__all__ = ["LIBRARY", "list_scenarios", "get_scenario", "recorded_trace"]


def diurnal(duration_s: float = 120.0) -> ScenarioSpec:
    """Two tenants riding a day cycle, half a period out of phase."""
    period = duration_s / 2.0
    return ScenarioSpec(
        name="diurnal",
        duration_s=duration_s,
        description=(
            "Two interactive tenants on sinusoidal day cycles, half a "
            "period out of phase (follow-the-sun): aggregate load is "
            "flatter than either tenant's own swing."
        ),
        loads=(
            TenantLoad(
                tenant="web-east",
                arrivals=DiurnalArrivals(base_rps=2.0, peak_factor=3.0, period_s=period),
                sizes=SizeModel(kind="fixed", mb=0.08),
                sla_class="gold",
            ),
            TenantLoad(
                tenant="web-west",
                arrivals=DiurnalArrivals(
                    base_rps=2.0, peak_factor=3.0, period_s=period,
                    phase_s=period / 2.0,
                ),
                sizes=SizeModel(kind="fixed", mb=0.08),
                sla_class="silver",
            ),
        ),
    )


def flash_crowd(duration_s: float = 90.0) -> ScenarioSpec:
    """A steady service next to one hit by a mid-run flash crowd."""
    return ScenarioSpec(
        name="flash-crowd",
        duration_s=duration_s,
        description=(
            "A steady bystander tenant plus a tenant hit by an 8x flash "
            "crowd a third of the way in (linear ramp, hold, decay)."
        ),
        loads=(
            TenantLoad(
                tenant="frontpage",
                arrivals=FlashCrowdArrivals(
                    base_rps=1.5, spike_factor=8.0,
                    at_s=duration_s / 3.0,
                    ramp_s=duration_s / 18.0,
                    hold_s=duration_s / 9.0,
                    decay_s=duration_s / 9.0,
                ),
                sizes=SizeModel(kind="fixed", mb=0.06),
                sla_class="gold",
            ),
            TenantLoad(
                tenant="bystander",
                arrivals=ConstantArrivals(rate_rps=2.0),
                sizes=SizeModel(kind="fixed", mb=0.08),
                sla_class="bronze",
            ),
        ),
    )


def heavy_tail(duration_s: float = 90.0) -> ScenarioSpec:
    """Heavy-tailed payloads: Pareto and lognormal dataset sizes."""
    return ScenarioSpec(
        name="heavy-tail",
        duration_s=duration_s,
        description=(
            "Two tenants with heavy-tailed dataset sizes (truncated "
            "Pareto alpha=1.3 and lognormal sigma=1.0): most requests "
            "are tiny, a few drag whole-MB transfers — service times "
            "inherit the tail."
        ),
        loads=(
            TenantLoad(
                tenant="media",
                arrivals=ConstantArrivals(rate_rps=2.5),
                sizes=SizeModel(kind="pareto", mb=0.03, alpha=1.3, cap_mb=2.0),
                sla_class="silver",
            ),
            TenantLoad(
                tenant="api",
                arrivals=ConstantArrivals(rate_rps=3.0),
                sizes=SizeModel(kind="lognormal", mb=0.05, sigma=1.0, cap_mb=1.0),
                sla_class="gold",
            ),
        ),
    )


def correlated_bursts(duration_s: float = 90.0) -> ScenarioSpec:
    """Three tenants whose bursts arrive *together* (shared envelope)."""
    return ScenarioSpec(
        name="correlated-bursts",
        duration_s=duration_s,
        description=(
            "Three steady tenants under one calm/burst envelope: inside "
            "a burst window every tenant's rate triples simultaneously — "
            "the correlated spike independent randomness cannot produce."
        ),
        bursts=BurstEnvelope(
            factor=3.0,
            mean_calm_s=duration_s / 6.0,
            mean_burst_s=duration_s / 12.0,
        ),
        loads=tuple(
            TenantLoad(
                tenant=f"shop-{i}",
                arrivals=ConstantArrivals(rate_rps=1.5),
                sizes=SizeModel(kind="fixed", mb=0.07),
                sla_class=cls,
            )
            for i, cls in enumerate(("gold", "silver", "bronze"))
        ),
    )


def batch_interactive(duration_s: float = 90.0) -> ScenarioSpec:
    """Long-running batch transfers sharing the HUP with interactive load."""
    return ScenarioSpec(
        name="batch-interactive",
        duration_s=duration_s,
        description=(
            "An interactive tenant (high rate, small payloads) sharing "
            "the platform with a batch tenant (sparse arrivals, "
            "lognormal multi-MB datasets occupying the LAN for seconds)."
        ),
        loads=(
            TenantLoad(
                tenant="dashboard",
                arrivals=ConstantArrivals(rate_rps=4.0),
                sizes=SizeModel(kind="fixed", mb=0.04),
                sla_class="gold",
                kind="interactive",
            ),
            TenantLoad(
                tenant="genome-batch",
                arrivals=ConstantArrivals(rate_rps=0.25),
                sizes=SizeModel(kind="lognormal", mb=1.5, sigma=0.5, cap_mb=6.0),
                sla_class="bronze",
                kind="batch",
            ),
        ),
    )


def recorded_trace(duration_s: float = 60.0, n: int = 48) -> ArrivalTrace:
    """A small deterministic "recorded" request log (pure data, no RNG).

    Offsets follow a gently accelerating clock with a bounded
    sinusoidal wobble; sizes alternate through a small page-weight
    palette.  Stands in for a production access log in the library and
    the tests.
    """
    span = duration_s * 0.95
    offsets = [
        (span * i / n) * (0.85 + 0.15 * i / n) + 0.2 * math.sin(1.7 * i) + 0.25
        for i in range(n)
    ]
    sizes = [(0.03, 0.08, 0.05, 0.25)[i % 4] for i in range(n)]
    arrivals: List[Tuple[float, float]] = sorted(
        (round(max(0.0, t), 6), mb) for t, mb in zip(offsets, sizes)
    )
    return ArrivalTrace(tuple(arrivals))


def replay(duration_s: float = 60.0) -> ScenarioSpec:
    """Replay of a recorded request log next to a synthetic baseline."""
    return ScenarioSpec(
        name="replay",
        duration_s=duration_s,
        description=(
            "A recorded access log replayed verbatim (offsets and "
            "payload sizes from the recording) next to a synthetic "
            "Poisson baseline tenant."
        ),
        loads=(
            TenantLoad(
                tenant="recorded",
                arrivals=ReplayArrivals(recorded_trace(duration_s)),
                sla_class="silver",
            ),
            TenantLoad(
                tenant="baseline",
                arrivals=ConstantArrivals(rate_rps=1.0),
                sizes=SizeModel(kind="fixed", mb=0.08),
                sla_class="bronze",
            ),
        ),
    )


#: scenario name -> builder(duration_s) for every library family.
LIBRARY: Dict[str, Callable[[float], ScenarioSpec]] = {
    "diurnal": diurnal,
    "flash-crowd": flash_crowd,
    "heavy-tail": heavy_tail,
    "correlated-bursts": correlated_bursts,
    "batch-interactive": batch_interactive,
    "replay": replay,
}


def list_scenarios() -> List[str]:
    return list(LIBRARY)


def get_scenario(name: str, duration_s: float = None) -> ScenarioSpec:
    """Build a library scenario (default horizon unless overridden)."""
    if name not in LIBRARY:
        raise KeyError(f"unknown scenario {name!r}; known: {sorted(LIBRARY)}")
    builder = LIBRARY[name]
    return builder(duration_s) if duration_s is not None else builder()
