"""The ``soda-scenarios`` CLI: inspect, compile, and replay scenarios.

* ``soda-scenarios list`` — the library catalogue, one line per family.
* ``soda-scenarios describe <name>`` — the spec as its YAML-ish dict.
* ``soda-scenarios compile <name> [--seed N] [--duration S]`` — realise
  the seeded traces and print per-tenant arrival counts, burst windows,
  and the exact-float digest fingerprint (pure in ``(spec, seed)``).
* ``soda-scenarios replay <name> [--seed N] [--policy P] [--duration S]
  [--background-hosts H]`` — run it on the simulated HUP and print the
  per-tenant outcome table.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.metrics.report import render_table
from repro.scenario.compile import compile_scenario
from repro.scenario.library import LIBRARY, get_scenario
from repro.scenario.run import POLICIES, run_scenario

__all__ = ["main"]


def _cmd_list() -> int:
    rows = []
    for name, builder in LIBRARY.items():
        spec = builder()
        shapes = ", ".join(
            sorted({type(load.arrivals).__name__.replace("Arrivals", "").lower()
                    for load in spec.loads})
        )
        rows.append([
            name, str(len(spec.loads)), f"{spec.duration_s:g}s",
            shapes + (" +bursts" if spec.bursts else ""),
        ])
    print(render_table(["scenario", "loads", "horizon", "shapes"], rows))
    return 0


def _cmd_describe(name: str) -> int:
    spec = get_scenario(name)
    print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_compile(name: str, seed: int, duration_s: Optional[float]) -> int:
    spec = get_scenario(name, duration_s)
    compiled = compile_scenario(spec, seed)
    rows = []
    for tenant, trace in compiled.traces:
        mbs = [mb for _t, mb in trace.arrivals]
        rows.append([
            tenant, str(len(trace)),
            f"{trace.duration:.2f}s",
            f"{(len(trace) / spec.duration_s):.2f}",
            f"{max(mbs):.3f}" if mbs else "-",
        ])
    print(render_table(
        ["tenant", "arrivals", "last arrival", "mean rps", "max MB"], rows
    ))
    if compiled.windows:
        windows = ", ".join(f"[{a:.1f}, {b:.1f})" for a, b in compiled.windows)
        print(f"burst windows: {windows}")
    print(f"digest: {compiled.digest_sha()}  (pure in (spec, seed={seed}))")
    return 0


def _cmd_replay(
    name: str, seed: int, policy: str, duration_s: Optional[float],
    background_hosts: int,
) -> int:
    spec = get_scenario(name, duration_s)
    report = run_scenario(
        spec, seed=seed, policy=policy, background_hosts=background_hosts
    )
    rows = []
    for load in spec.loads:
        stats = report.stats[load.tenant]
        rows.append([
            load.tenant, load.sla_class, load.kind,
            str(stats.issued), str(stats.served), str(stats.failed),
            str(stats.shed), f"{report.mean_response_s(load.tenant) * 1e3:.1f}",
        ])
    print(render_table(
        ["tenant", "class", "kind", "issued", "served", "failed", "shed",
         "mean ms"],
        rows,
    ))
    if report.price_history:
        rates = [rate for _t, _u, rate in report.price_history]
        print(
            f"spot rate: {min(rates):.2f}-{max(rates):.2f} over "
            f"{len(rates)} ticks; {report.priced_out} requests priced out"
        )
    conserved = "holds" if report.conservation_holds() else "VIOLATED"
    print(
        f"conservation (served+failed+shed == issued): {conserved}; "
        f"digest {report.compiled_sha}; finished at {report.finished_at:.2f}s"
    )
    return 0 if report.conservation_holds() else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="soda-scenarios",
        description="Declarative workload scenarios for the SODA platform.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the scenario library")
    describe = sub.add_parser("describe", help="print a spec as a plain dict")
    describe.add_argument("name")
    compile_p = sub.add_parser("compile", help="realise the seeded traces")
    compile_p.add_argument("name")
    compile_p.add_argument("--seed", type=int, default=0)
    compile_p.add_argument("--duration", type=float, default=None, metavar="S")
    replay = sub.add_parser("replay", help="run a scenario on the platform")
    replay.add_argument("name")
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument("--policy", choices=POLICIES, default="fcfs")
    replay.add_argument("--duration", type=float, default=None, metavar="S")
    replay.add_argument(
        "--background-hosts", type=int, default=0, metavar="H",
        help="attach an aggregated fluid background fleet of H hosts",
    )

    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "describe":
        return _cmd_describe(args.name)
    if args.command == "compile":
        return _cmd_compile(args.name, args.seed, args.duration)
    return _cmd_replay(
        args.name, args.seed, args.policy, args.duration, args.background_hosts
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
