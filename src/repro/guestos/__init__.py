"""Guest OS (User-Mode Linux) substrate.

SODA runs each application service inside a UML guest OS on top of the
host OS (paper §4.2).  This package models that layer:

* :mod:`repro.guestos.services` — the registry of Linux system services
  (init scripts in ``/etc/``) with start costs, on-disk sizes, and
  dependency/library graphs; the raw material for rootfs tailoring.
* :mod:`repro.guestos.rootfs` — guest root filesystems and the SODA
  Daemon's tailoring step (§4.3): retain only the system services the
  application needs, dependency-closed, with only the necessary
  libraries.
* :mod:`repro.guestos.syscall` — the system-call interposition cost
  model calibrated to the paper's Table 4 (a tracing thread redirects
  every guest syscall into the host kernel).
* :mod:`repro.guestos.boot` — the boot-time model behind Table 2
  (mount the rootfs in RAM disk or from disk, init the guest kernel,
  start the retained services).
* :mod:`repro.guestos.uml` — the virtual machine itself: lifecycle,
  memory cap, guest process table, and the guest-root / host-root
  privilege separation that provides fault/attack isolation (§2.1).
* :mod:`repro.guestos.proc` — guest processes, users, and ``ps -ef``
  rendering (Figure 3).
"""

from repro.guestos.boot import BootPlan, BootTimeModel
from repro.guestos.proc import GuestProcess, ProcessState, ProcessTable
from repro.guestos.rootfs import RootFilesystem, TailoringError
from repro.guestos.services import (
    ServiceRegistry,
    SystemService,
    default_registry,
)
from repro.guestos.syscall import SyscallCostModel
from repro.guestos.uml import UmlError, UmlState, UserModeLinux

__all__ = [
    "BootPlan",
    "BootTimeModel",
    "GuestProcess",
    "ProcessState",
    "ProcessTable",
    "RootFilesystem",
    "ServiceRegistry",
    "SyscallCostModel",
    "SystemService",
    "TailoringError",
    "UmlError",
    "UmlState",
    "UserModeLinux",
    "default_registry",
]
