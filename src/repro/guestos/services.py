"""Linux system-service registry.

The SODA Daemon "tailors the root file system of the UML by retaining
only the Linux system services (in the /etc/ directory) required by the
application service; it also checks their dependencies to ensure that
only the necessary libraries are included" (paper §4.3).  This module
provides the material that step works on: a registry of init-script
services, each with

* a **start cost** in CPU megacycles (what dominates guest boot time —
  "the bootstrapping time is not solely dependent on the service image
  size, it is more dependent on the number and type of Linux services
  needed", §4.3),
* an **on-disk size** in MB (binaries + configs),
* **dependencies** on other services (init-script ordering), and
* required **shared libraries** (counted once per rootfs).

Costs and sizes are calibrated against circa-2002 Red Hat 7.2 behaviour
so that the four Table 2 profiles land near the paper's boot times
(e.g. ``kudzu``'s hardware probe and ``sendmail``'s DNS timeouts are the
notorious slow starters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

__all__ = ["SystemService", "ServiceRegistry", "SharedLibrary", "default_registry"]


@dataclass(frozen=True)
class SharedLibrary:
    """A shared library pulled into a tailored rootfs."""

    name: str
    size_mb: float

    def __post_init__(self) -> None:
        if self.size_mb < 0:
            raise ValueError(f"library {self.name!r}: negative size")


@dataclass(frozen=True)
class SystemService:
    """One init-script service."""

    name: str
    start_cost_mcycles: float
    size_mb: float
    deps: Tuple[str, ...] = ()
    libs: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.start_cost_mcycles < 0:
            raise ValueError(f"service {self.name!r}: negative start cost")
        if self.size_mb < 0:
            raise ValueError(f"service {self.name!r}: negative size")


class ServiceRegistry:
    """All known system services and shared libraries."""

    def __init__(
        self,
        services: Iterable[SystemService] = (),
        libraries: Iterable[SharedLibrary] = (),
    ):
        self._services: Dict[str, SystemService] = {}
        self._libraries: Dict[str, SharedLibrary] = {}
        for lib in libraries:
            self.add_library(lib)
        for svc in services:
            self.add(svc)

    # -- population --------------------------------------------------------
    def add(self, service: SystemService) -> None:
        if service.name in self._services:
            raise ValueError(f"duplicate service {service.name!r}")
        self._services[service.name] = service

    def add_library(self, library: SharedLibrary) -> None:
        if library.name in self._libraries:
            raise ValueError(f"duplicate library {library.name!r}")
        self._libraries[library.name] = library

    # -- lookup --------------------------------------------------------------
    def get(self, name: str) -> SystemService:
        try:
            return self._services[name]
        except KeyError:
            raise KeyError(f"unknown system service {name!r}") from None

    def library(self, name: str) -> SharedLibrary:
        try:
            return self._libraries[name]
        except KeyError:
            raise KeyError(f"unknown shared library {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._services

    @property
    def names(self) -> List[str]:
        return sorted(self._services)

    def __len__(self) -> int:
        return len(self._services)

    # -- closures --------------------------------------------------------------
    def dependency_closure(self, names: Iterable[str]) -> FrozenSet[str]:
        """All services transitively required by ``names``.

        Raises KeyError on an unknown service and ValueError on a
        dependency cycle (init ordering would be unsatisfiable).
        """
        requested = list(names)
        closed: Set[str] = set()
        for root in requested:
            self._close(root, closed, path=())
        return frozenset(closed)

    def _close(self, name: str, closed: Set[str], path: Tuple[str, ...]) -> None:
        if name in path:
            cycle = " -> ".join(path + (name,))
            raise ValueError(f"service dependency cycle: {cycle}")
        if name in closed:
            return
        service = self.get(name)
        for dep in service.deps:
            self._close(dep, closed, path + (name,))
        closed.add(name)

    def start_order(self, names: Iterable[str]) -> List[str]:
        """Dependency-respecting start order (deterministic topological
        sort: dependencies first, ties alphabetical)."""
        wanted = self.dependency_closure(names)
        order: List[str] = []
        placed: Set[str] = set()

        def visit(name: str) -> None:
            if name in placed:
                return
            for dep in sorted(self.get(name).deps):
                if dep in wanted:
                    visit(dep)
            placed.add(name)
            order.append(name)

        for name in sorted(wanted):
            visit(name)
        return order

    def library_closure(self, service_names: Iterable[str]) -> FrozenSet[str]:
        """Union of libraries required by the given services."""
        libs: Set[str] = set()
        for name in service_names:
            service = self.get(name)
            for lib in service.libs:
                self.library(lib)  # validates existence
                libs.add(lib)
        return frozenset(libs)

    def total_start_cost(self, names: Iterable[str]) -> float:
        """Sum of start costs (megacycles) over the *given* services."""
        return sum(self.get(n).start_cost_mcycles for n in names)

    def total_size(self, service_names: Iterable[str]) -> float:
        """On-disk MB: the given services plus their library closure."""
        service_names = list(service_names)
        size = sum(self.get(n).size_mb for n in service_names)
        size += sum(self.library(l).size_mb for l in self.library_closure(service_names))
        return size


def _standard_libraries() -> List[SharedLibrary]:
    return [
        SharedLibrary("libcrypto", 1.0),
        SharedLibrary("libssl", 0.7),
        SharedLibrary("libz", 0.3),
        SharedLibrary("libpam", 0.5),
        SharedLibrary("libresolv", 0.2),
        SharedLibrary("libdb", 1.0),
        SharedLibrary("libldap", 0.8),
        SharedLibrary("libkrb", 1.2),
        SharedLibrary("libncurses", 0.6),
        SharedLibrary("libwrap", 0.2),
    ]


def _standard_services() -> List[SystemService]:
    """A circa-2002 Red Hat 7.2 service catalogue.

    Start costs (megacycles) are calibrated so the Table 2 boot times
    reproduce; sizes sum (with the base) to the paper's image sizes.
    """
    S = SystemService
    return [
        # name                cost    size  deps                        libs
        S("syslog",           150.0,  2.0),
        S("network",          600.0,  3.0, ("syslog",)),
        S("random",            80.0,  0.5),
        S("keytable",          60.0,  0.5),
        S("inetd",            200.0,  1.0, ("network",), ("libwrap",)),
        S("sshd",             700.0,  6.0, ("network", "random"), ("libcrypto", "libz", "libpam")),
        S("crond",            150.0,  2.0, ("syslog",), ("libpam",)),
        S("httpd",            800.0, 10.0, ("network",), ("libssl", "libcrypto", "libdb")),
        S("portmap",          250.0,  1.0, ("network",)),
        S("nfslock",          300.0,  1.0, ("portmap",)),
        S("nfs",             1800.0, 10.0, ("portmap", "nfslock")),
        S("netfs",            500.0,  1.0, ("portmap",)),
        S("xinetd",           350.0,  2.0, ("network",), ("libwrap",)),
        S("sendmail",        2500.0, 12.0, ("network",), ("libresolv", "libdb")),
        S("named",            900.0,  7.0, ("network",), ("libresolv",)),
        S("mysqld",          1600.0, 25.0, ("network",), ("libz",)),
        S("postgresql",      1900.0, 30.0, ("network",), ("libz", "libpam")),
        S("smb",              700.0, 12.0, ("network",), ("libpam",)),
        S("squid",           1200.0, 15.0, ("network",)),
        S("vsftpd",           250.0,  2.0, ("xinetd",), ("libwrap", "libpam")),
        S("ldap",             800.0, 10.0, ("network",), ("libldap", "libdb")),
        S("webmin",           600.0,  8.0, ("network",), ("libssl",)),
        S("dhcpd",            400.0,  2.0, ("network",)),
        S("ypbind",           450.0,  2.0, ("portmap",)),
        S("mailman",          700.0, 15.0, ("sendmail",)),
        S("imap",             300.0,  3.0, ("xinetd",), ("libssl", "libkrb")),
        S("lpd",              400.0,  3.0, ("network",)),
        S("autofs",           350.0,  2.0, ("portmap",)),
        S("identd",           250.0,  1.0, ("xinetd",)),
        S("ntpd",             350.0,  2.0, ("network",)),
        S("snmpd",            300.0,  3.0, ("network",)),
        S("atd",              120.0,  1.0, ("syslog",), ("libpam",)),
        S("kudzu",           3500.0,  8.0),  # hardware probe: notoriously slow
        S("apmd",             100.0,  1.0),
        S("gpm",               90.0,  1.0),
        S("pcmcia",           450.0,  3.0),
        S("isdn",             380.0,  4.0, ("network",)),
        S("iptables",         200.0,  2.0),
        S("rawdevices",        60.0,  0.5),
    ]


_DEFAULT: ServiceRegistry = None  # type: ignore[assignment]


def default_registry() -> ServiceRegistry:
    """The shared standard catalogue (immutable by convention)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ServiceRegistry(_standard_services(), _standard_libraries())
    return _DEFAULT
