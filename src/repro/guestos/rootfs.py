"""Guest root filesystems and SODA's tailoring step.

Paper §4.3: "the SODA Daemon first performs a *customization* of the
Linux system services to be started in the UML.  SODA Daemon tailors the
root file system of the UML by retaining only the Linux system services
(in the /etc/ directory) required by the application service; it also
checks their dependencies to ensure that only the necessary libraries
are included.  The customized root file system is light-weight and
reconfigurable - in many cases it can be mounted in RAM disk for fast
bootstrapping."

A :class:`RootFilesystem` combines a base system (kernel image, init,
core userland), a set of installed system services, application payload
data, and the shared libraries the services need.  :meth:`tailored_for`
produces the cut-down filesystem the Daemon actually boots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional

from repro.guestos.services import ServiceRegistry, default_registry

__all__ = ["TailoringError", "RootFilesystem"]


class TailoringError(RuntimeError):
    """Raised when a rootfs cannot satisfy a tailoring request."""


@dataclass(frozen=True)
class RootFilesystem:
    """An immutable guest root filesystem description.

    ``base_mb`` covers the kernel, init, core userland and always-present
    libraries; ``data_mb`` is application payload (e.g. the LFS 4.0
    build tree that makes ``root_fs_lfs_4.0`` 400 MB).
    """

    name: str
    base_mb: float
    data_mb: float
    services: FrozenSet[str]
    registry: ServiceRegistry

    def __post_init__(self) -> None:
        if self.base_mb < 0 or self.data_mb < 0:
            raise ValueError(f"rootfs {self.name!r}: negative size component")
        for service in self.services:
            if service not in self.registry:
                raise ValueError(
                    f"rootfs {self.name!r} installs unknown service {service!r}"
                )

    @staticmethod
    def build(
        name: str,
        base_mb: float,
        services: Iterable[str],
        data_mb: float = 0.0,
        registry: Optional[ServiceRegistry] = None,
    ) -> "RootFilesystem":
        registry = registry or default_registry()
        return RootFilesystem(
            name=name,
            base_mb=base_mb,
            data_mb=data_mb,
            services=frozenset(services),
            registry=registry,
        )

    # -- size accounting ----------------------------------------------------
    @property
    def size_mb(self) -> float:
        """Total on-disk size: base + payload + services + their libs."""
        return self.base_mb + self.data_mb + self.registry.total_size(self.services)

    # -- boot inputs ----------------------------------------------------------
    def start_order(self):
        """Init order for the installed services."""
        return self.registry.start_order(self.services)

    def total_start_cost_mcycles(self) -> float:
        return self.registry.total_start_cost(self.services)

    # -- tailoring --------------------------------------------------------------
    def tailored_for(self, required_services: Iterable[str]) -> "RootFilesystem":
        """The Daemon's customization: keep only what's needed.

        ``required_services`` is what the application service declares;
        the result retains their dependency closure (and nothing else),
        with the library set re-derived from the retained services.
        Raises :class:`TailoringError` if a required service is not
        installed in this rootfs.
        """
        required = list(required_services)
        closure = self.registry.dependency_closure(required)
        missing = closure - self.services
        if missing:
            raise TailoringError(
                f"rootfs {self.name!r} lacks services required by the "
                f"application (after dependency closure): {sorted(missing)}"
            )
        return RootFilesystem(
            name=f"{self.name}+tailored",
            base_mb=self.base_mb,
            data_mb=self.data_mb,
            services=closure,
            registry=self.registry,
        )

    @property
    def is_tailored(self) -> bool:
        return self.name.endswith("+tailored")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RootFilesystem({self.name!r}, {self.size_mb:.1f} MB, "
            f"{len(self.services)} services)"
        )
