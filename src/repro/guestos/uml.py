"""The User-Mode Linux virtual machine (one virtual service node).

"each node is a virtual machine which is physically a 'slice' of a real
host in the HUP [...] a UML runs directly in the unmodified *user
space* of the host OS [...] the host OS has a separate *kernel space*,
eliminating any security impact caused by the individual UMLs"
(paper §2.1, §4.2).

The class models what SODA relies on:

* lifecycle: CREATED -> BOOTING -> RUNNING -> (CRASHED | STOPPED);
* the UML memory cap (the one resource the stock UML isolates, §4.2) —
  enforced by allocating the cap from the host's memory manager;
* a guest process table with guest users — guest root is *not* host
  root, so compromising or crashing the guest never touches the host or
  sibling nodes (Figure 3's isolation demonstration);
* per-request service times through the syscall interposition model.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional

from repro.guestos.boot import BootPlan, BootTimeModel
from repro.guestos.proc import GUEST_ROOT_UID, ProcessTable
from repro.guestos.rootfs import RootFilesystem
from repro.guestos.syscall import SyscallCostModel, SyscallMix
from repro.host.machine import Host
from repro.host.memory import MemoryAllocation, MemoryError_
from repro.sim.kernel import Event, Simulator

__all__ = ["UmlError", "UmlState", "UserModeLinux"]


# Fraction of the host NIC's rate a UML guest can drive.  "there will
# be a slow-down in both processing and network transmission" (§3.2):
# every packet of a 2002-era UML crosses the tracing thread and a
# TUN/TAP device, so guests cannot saturate the wire.  0.65 sits inside
# the paper's conservative 1.5x bandwidth-inflation envelope
# (footnote 2: 1/1.5 = 0.67) and yields the Figure 6 application-level
# slow-down of ~1.4-1.5x.
UML_NETWORK_EFFICIENCY = 0.65


class UmlError(RuntimeError):
    """Lifecycle misuse or boot failure of a UML instance."""


class UmlState(enum.Enum):
    CREATED = "created"
    BOOTING = "booting"
    RUNNING = "running"
    CRASHED = "crashed"
    STOPPED = "stopped"


class UserModeLinux:
    """One UML guest = one virtual service node's machine."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        host: Host,
        rootfs: RootFilesystem,
        guest_mem_mb: float,
        syscall_model: Optional[SyscallCostModel] = None,
    ):
        if guest_mem_mb <= 0:
            raise ValueError(f"guest memory cap must be positive, got {guest_mem_mb}")
        self.sim = sim
        self.name = name
        self.host = host
        self.rootfs = rootfs
        self.guest_mem_mb = guest_mem_mb
        self.syscalls = syscall_model or SyscallCostModel()
        self.state = UmlState.CREATED
        self.boot_progress: str = "created"
        self.processes = ProcessTable()
        self.ip: Optional[str] = None
        self.boot_plan: Optional[BootPlan] = None
        self.booted_at: Optional[float] = None
        self.crash_cause: Any = None
        self.compromised = False
        self._memory: Optional[MemoryAllocation] = None
        self._ramdisk: Optional[MemoryAllocation] = None

    # -- lifecycle ----------------------------------------------------------
    def boot(self, model: Optional[BootTimeModel] = None) -> Generator[Event, Any, BootPlan]:
        """Boot the guest (simulated-process step).

        Staged, as §3.3 describes ("first the guest OS, then the
        service"): allocate the memory cap (and the RAM disk, when
        used), mount the rootfs, initialise the guest kernel, then start
        each retained system service in dependency order — each stage
        advancing :attr:`boot_progress` and the process table, so a
        mid-boot crash leaves an honest partial state.  Returns the
        :class:`BootPlan` used; total simulated time equals the plan's.
        """
        if self.state is not UmlState.CREATED:
            raise UmlError(f"UML {self.name!r} cannot boot from state {self.state}")
        model = model or BootTimeModel()
        plan = model.plan(self.rootfs, self.host, self.guest_mem_mb)
        try:
            self._memory = self.host.memory.allocate(
                self.guest_mem_mb, purpose=f"uml:{self.name}"
            )
        except MemoryError_ as exc:
            raise UmlError(f"UML {self.name!r} boot failed: {exc}") from exc
        if plan.ramdisk:
            # The plan said the RAM disk fits alongside the cap; claim it.
            self._ramdisk = self.host.memory.allocate(
                self.rootfs.size_mb, purpose=f"ramdisk:{self.name}"
            )
        self.state = UmlState.BOOTING
        self.boot_plan = plan

        def _check_alive() -> None:
            if self.state is not UmlState.BOOTING:
                raise UmlError(
                    f"UML {self.name!r} boot aborted ({self.state.value})"
                )

        self.boot_progress = "mounting rootfs"
        yield self.sim.timeout(plan.mount_time_s)
        _check_alive()
        self.boot_progress = "kernel init"
        yield self.sim.timeout(plan.kernel_time_s)
        _check_alive()
        self.processes.boot_populate()
        order = self.rootfs.start_order()
        total_cost = self.rootfs.total_start_cost_mcycles()
        for service in order:
            self.boot_progress = f"starting {service}"
            cost = self.rootfs.registry.get(service).start_cost_mcycles
            share = cost / total_cost if total_cost > 0 else 0.0
            yield self.sim.timeout(plan.services_time_s * share)
            _check_alive()
            self.processes.spawn(command=service, uid=GUEST_ROOT_UID, user="root")
        self.state = UmlState.RUNNING
        self.boot_progress = "running"
        self.booted_at = self.sim.now
        return plan

    def crash(self, cause: Any = None) -> int:
        """Guest crash (fault or successful attack).

        Kills every guest process; the host OS and sibling nodes are
        untouched — that containment is the point of the guest/host
        structure.  A guest can also crash mid-boot (an in-flight boot
        aborts at its next stage).  Returns the number of processes
        that died.
        """
        if self.state not in (UmlState.RUNNING, UmlState.BOOTING):
            raise UmlError(f"UML {self.name!r} cannot crash from state {self.state}")
        self.state = UmlState.CRASHED
        self.crash_cause = cause
        return self.processes.kill_all()

    def shutdown(self) -> None:
        """Orderly stop; releases host memory."""
        if self.state not in (UmlState.RUNNING, UmlState.CRASHED):
            raise UmlError(f"UML {self.name!r} cannot stop from state {self.state}")
        self.processes.kill_all()
        self._release_memory()
        self.state = UmlState.STOPPED

    def _release_memory(self) -> None:
        if self._memory is not None:
            self._memory.release()
            self._memory = None
        if self._ramdisk is not None:
            self._ramdisk.release()
            self._ramdisk = None

    @property
    def is_running(self) -> bool:
        return self.state is UmlState.RUNNING

    # -- execution ------------------------------------------------------------
    def request_time_s(self, mix: SyscallMix, capacity_fraction: float = 1.0) -> float:
        """CPU time to serve one request with profile ``mix``.

        ``capacity_fraction`` scales for the node's slice of the host
        CPU (a node holding half the host serves at half speed).  The
        syscall interposition penalty is applied — this is where the
        application-level slow-down of Figure 6 comes from.
        """
        if not 0 < capacity_fraction <= 1.0:
            raise ValueError(f"capacity fraction must be in (0, 1], got {capacity_fraction}")
        if not self.is_running:
            raise UmlError(f"UML {self.name!r} is not running")
        effective_mhz = self.host.cpu_mhz * capacity_fraction
        return self.syscalls.mix_time_s(mix, effective_mhz, in_uml=True)

    # -- security model ---------------------------------------------------------
    def exploit(self, set_compromised: bool = True) -> None:
        """A successful attack on a guest service (e.g. the ghttpd
        buffer overflow): the attacker gains *guest* root."""
        if not self.is_running:
            raise UmlError(f"UML {self.name!r} is not running")
        if set_compromised:
            self.compromised = True

    def attacker_can_reach_host(self) -> bool:
        """Whether a guest-root attacker can touch the host OS.

        Always False: UML guests live in host user space with a separate
        kernel space (§4.2); guest root maps to an unprivileged host
        user.  (Contrast with running the service directly on the host,
        where service root *is* host root.)
        """
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UserModeLinux({self.name!r}, {self.state.value}, host={self.host.name!r})"
