"""Guest process table and users.

Each virtual service node runs its own process tree under its own guest
root — "the root that runs ghttpd is the root of the *guest OS*, not
the host OS" (paper §2.1).  The table supports the ``ps -ef`` view the
paper screenshots in Figure 3 to show two co-existing nodes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

__all__ = ["ProcessState", "GuestProcess", "ProcessTable"]

GUEST_ROOT_UID = 0


class ProcessState(enum.Enum):
    RUNNING = "R"
    SLEEPING = "S"
    ZOMBIE = "Z"
    KILLED = "K"


@dataclass
class GuestProcess:
    """One process inside a guest OS."""

    pid: int
    uid: int
    user: str
    command: str
    state: ProcessState = ProcessState.RUNNING
    ppid: int = 1

    @property
    def alive(self) -> bool:
        return self.state in (ProcessState.RUNNING, ProcessState.SLEEPING)


class ProcessTable:
    """The per-guest process table.

    PIDs are allocated monotonically starting from the kernel threads a
    2.4-era UML shows at boot (Figure 3: ``init``, ``kswapd``,
    ``bdflush``, ``kupdated`` ...).
    """

    KERNEL_THREADS = ["init", "[keventd]", "[kswapd]", "[bdflush]", "[kupdated]"]

    def __init__(self) -> None:
        self._procs: Dict[int, GuestProcess] = {}
        self._next_pid = 1

    def boot_populate(self) -> None:
        """Create the kernel threads a freshly booted guest shows."""
        if self._procs:
            raise RuntimeError("process table already populated")
        for command in self.KERNEL_THREADS:
            self.spawn(command=command, uid=GUEST_ROOT_UID, user="root")

    def spawn(
        self,
        command: str,
        uid: int,
        user: str,
        ppid: int = 1,
        state: ProcessState = ProcessState.RUNNING,
    ) -> GuestProcess:
        if uid < 0:
            raise ValueError(f"negative uid: {uid}")
        pid = self._next_pid
        self._next_pid += 1
        proc = GuestProcess(pid=pid, uid=uid, user=user, command=command, state=state, ppid=ppid)
        self._procs[pid] = proc
        return proc

    def get(self, pid: int) -> GuestProcess:
        try:
            return self._procs[pid]
        except KeyError:
            raise KeyError(f"no such pid {pid}") from None

    def kill(self, pid: int) -> None:
        proc = self.get(pid)
        if not proc.alive:
            raise ValueError(f"pid {pid} already dead")
        proc.state = ProcessState.KILLED

    def kill_all(self) -> int:
        """Guest crash: every process dies.  Returns how many were alive."""
        count = 0
        for proc in self._procs.values():
            if proc.alive:
                proc.state = ProcessState.KILLED
                count += 1
        return count

    def find_by_command(self, needle: str) -> List[GuestProcess]:
        return [p for p in self._procs.values() if needle in p.command]

    @property
    def alive_processes(self) -> List[GuestProcess]:
        return [p for p in self._procs.values() if p.alive]

    def __len__(self) -> int:
        return len(self._procs)

    def ps_ef(self) -> str:
        """The Figure 3 view: header plus one row per live process."""
        lines = [f"{'PID':>5} {'Uid':<8} {'Stat':<5} Command"]
        for pid in sorted(self._procs):
            proc = self._procs[pid]
            if not proc.alive:
                continue
            lines.append(
                f"{proc.pid:>5} {proc.user:<8} {proc.state.value:<5} {proc.command}"
            )
        return "\n".join(lines)
