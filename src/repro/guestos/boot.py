"""Virtual-service-node boot-time model (paper Table 2).

Bootstrapping a node is (paper §4.3): mount the tailored root
filesystem (RAM disk when it fits in free host RAM, otherwise from
disk), start the UML kernel, then start the retained Linux system
services, and finally the application service.  The model:

``boot_time = mount_time + (kernel_init + service_costs) * uml_slowdown / cpu_mhz``

* ``mount_time`` — rootfs size over RAM-disk rate, or over the host's
  disk rate when the rootfs + guest memory cap exceed free RAM.  This
  is what makes the 400 MB LFS rootfs boot in ~4 s on *seattle* (2 GB
  RAM, RAM-disk) but ~16 s on *tacoma* (768 MB, forced to disk).
* service costs in megacycles from the registry; boot work runs inside
  the UML where fork/exec/syscall-heavy init scripts suffer the
  interposition slow-down, modelled as a constant factor.

Calibration (constants below) places all eight Table 2 cells within
~10% of the paper's measurements; EXPERIMENTS.md records the exact
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.guestos.rootfs import RootFilesystem
from repro.host.machine import Host

__all__ = ["BootPlan", "BootTimeModel"]

# UML kernel initialisation work (device probing, memory setup, initrd),
# megacycles.
KERNEL_INIT_MCYCLES = 1200.0

# Boot-time work is syscall/fork/exec heavy; inside the UML it runs this
# much slower than native (application-level factor, cf. Figure 6 —
# boot scripts sit at the syscall-heavy end of the mix).
UML_BOOT_SLOWDOWN = 2.2

# RAM-disk streaming rate (populate + mount), MB/s.
RAMDISK_RATE_MBS = 150.0


@dataclass(frozen=True)
class BootPlan:
    """Everything decided before booting one node."""

    rootfs: RootFilesystem
    host_name: str
    ramdisk: bool
    mount_time_s: float
    kernel_time_s: float
    services_time_s: float

    @property
    def total_s(self) -> float:
        return self.mount_time_s + self.kernel_time_s + self.services_time_s


class BootTimeModel:
    """Computes the boot plan for a rootfs on a host."""

    def __init__(
        self,
        kernel_init_mcycles: float = KERNEL_INIT_MCYCLES,
        uml_slowdown: float = UML_BOOT_SLOWDOWN,
        ramdisk_rate_mbs: float = RAMDISK_RATE_MBS,
    ):
        if kernel_init_mcycles < 0:
            raise ValueError("kernel init cost cannot be negative")
        if uml_slowdown < 1.0:
            raise ValueError(f"UML slow-down factor must be >= 1, got {uml_slowdown}")
        if ramdisk_rate_mbs <= 0:
            raise ValueError("RAM-disk rate must be positive")
        self.kernel_init_mcycles = kernel_init_mcycles
        self.uml_slowdown = uml_slowdown
        self.ramdisk_rate_mbs = ramdisk_rate_mbs

    def plan(self, rootfs: RootFilesystem, host: Host, guest_mem_mb: float) -> BootPlan:
        """Decide mount strategy and cost out the boot."""
        if guest_mem_mb <= 0:
            raise ValueError(f"guest memory must be positive, got {guest_mem_mb}")
        size = rootfs.size_mb
        ramdisk = host.memory.can_ramdisk_mount(size, guest_mem_mb)
        if ramdisk:
            mount = size / self.ramdisk_rate_mbs
        else:
            mount = host.disk_read_time(size)
        kernel = host.cpu_time(self.kernel_init_mcycles * self.uml_slowdown)
        services = host.cpu_time(
            rootfs.total_start_cost_mcycles() * self.uml_slowdown
        )
        return BootPlan(
            rootfs=rootfs,
            host_name=host.name,
            ramdisk=ramdisk,
            mount_time_s=mount,
            kernel_time_s=kernel,
            services_time_s=services,
        )

    def boot_time_s(self, rootfs: RootFilesystem, host: Host, guest_mem_mb: float) -> float:
        """Convenience: just the total."""
        return self.plan(rootfs, host, guest_mem_mb).total_s
