"""Guest console: the Figure 3 screenshot view.

The paper's Figure 3 shows two xterms, one per virtual service node,
each displaying::

    Welcome to SODA
    Kernel 2.4.19 on a i686
    web login: root
    Password:
    [root@Web /root]# ps -ef

This module renders that interaction: an ASP administrator logs into
their own guest (as *guest* root — the §2.1 administration-isolation
boundary) and runs commands against the guest's state.  A crashed guest
has no console.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.guestos.uml import UmlState, UserModeLinux

__all__ = ["ConsoleError", "GuestConsole"]

KERNEL_BANNER = "Kernel 2.4.19 on a i686"


class ConsoleError(RuntimeError):
    """Login or command failure on a guest console."""


class GuestConsole:
    """An interactive console attached to one UML guest."""

    def __init__(self, vm: UserModeLinux, hostname: str):
        if not hostname:
            raise ValueError("hostname cannot be empty")
        self.vm = vm
        self.hostname = hostname
        self.logged_in_user: str = ""
        self.transcript: List[str] = []

    # -- session ------------------------------------------------------------
    def banner(self) -> str:
        """The pre-login screen of Figure 3."""
        return f"Welcome to SODA\n{KERNEL_BANNER}\n{self.hostname} login:"

    def login(self, user: str = "root") -> str:
        """Log in; only works while the guest is running."""
        if self.vm.state is not UmlState.RUNNING:
            raise ConsoleError(
                f"no console: guest {self.vm.name!r} is {self.vm.state.value}"
            )
        self.logged_in_user = user
        lines = [self.banner() + f" {user}", "Password:"]
        self.transcript.extend(lines)
        return "\n".join(lines)

    @property
    def prompt(self) -> str:
        if not self.logged_in_user:
            raise ConsoleError("not logged in")
        return f"[{self.logged_in_user}@{self.hostname} /root]#"

    # -- commands --------------------------------------------------------------
    def run(self, command: str) -> str:
        """Execute a (whitelisted) command against guest state."""
        if not self.logged_in_user:
            raise ConsoleError("not logged in")
        if self.vm.state is not UmlState.RUNNING:
            raise ConsoleError(f"guest {self.vm.name!r} died (console hung)")
        handlers: Dict[str, Callable[[], str]] = {
            "ps -ef": lambda: self.vm.processes.ps_ef(),
            "hostname": lambda: self.hostname,
            "uname -a": lambda: (
                f"Linux {self.hostname} 2.4.19 #1 SMP i686 unknown"
            ),
            "whoami": lambda: self.logged_in_user,
            "id": lambda: "uid=0(root) gid=0(root)  # guest root, NOT host root",
        }
        if command not in handlers:
            raise ConsoleError(f"command not found: {command}")
        output = handlers[command]()
        self.transcript.append(f"{self.prompt} {command}")
        self.transcript.append(output)
        return output

    def screenshot(self) -> str:
        """The accumulated terminal contents (the Figure 3 artefact)."""
        return "\n".join(self.transcript)
