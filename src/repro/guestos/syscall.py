"""System-call interposition cost model (paper Table 4).

"A special thread is created to intercept the system calls made by all
process threads of the UML, and redirect them into the host OS kernel"
(paper §4.2).  That interception is the 'source' of the guest/host
slow-down the paper measures (§5):

    Table 4 — Measuring slow-down at system call level (clock cycles)

    | System call  | in UML | in host OS |
    | dup2         | 27276  | 1208       |
    | getpid       | 26648  | 1064       |
    | geteuid      | 26904  | 1084       |
    | mmap         | 27864  | 1208       |
    | mmap_munmap  | 27044  | 1200       |
    | gettimeofday | 37004  | 1368       |

The model stores the host-OS cost per syscall and a per-call
interception overhead (ptrace stop, context switch to the tracing
thread, redirection, resume); the UML cost is ``host + interception``.
``gettimeofday`` pays an extra penalty (in 2002-era UML it cannot use
the fast path and does extra bookkeeping).  An application-level mix —
user-mode cycles plus a syscall profile — yields the *application*
slow-down, which is far smaller than the per-syscall ratio because user
cycles run unmodified (Figure 6's observation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

__all__ = ["SyscallCostModel", "SyscallMix", "PAPER_TABLE4_HOST_CYCLES", "PAPER_TABLE4_UML_CYCLES"]

# Host-OS syscall costs measured in the paper (clock cycles).
PAPER_TABLE4_HOST_CYCLES: Dict[str, float] = {
    "dup2": 1208.0,
    "getpid": 1064.0,
    "geteuid": 1084.0,
    "mmap": 1208.0,
    "mmap_munmap": 1200.0,
    "gettimeofday": 1368.0,
}

# UML-side costs measured in the paper (clock cycles).
PAPER_TABLE4_UML_CYCLES: Dict[str, float] = {
    "dup2": 27276.0,
    "getpid": 26648.0,
    "geteuid": 26904.0,
    "mmap": 27864.0,
    "mmap_munmap": 27044.0,
    "gettimeofday": 37004.0,
}

# Mean interception overhead implied by Table 4 (UML - host), excluding
# gettimeofday whose extra bookkeeping is modelled separately.
_PLAIN_CALLS = ["dup2", "getpid", "geteuid", "mmap", "mmap_munmap"]
INTERCEPTION_CYCLES = sum(
    PAPER_TABLE4_UML_CYCLES[c] - PAPER_TABLE4_HOST_CYCLES[c] for c in _PLAIN_CALLS
) / len(_PLAIN_CALLS)

# gettimeofday's additional UML-side penalty beyond plain interception.
GETTIMEOFDAY_EXTRA_CYCLES = (
    PAPER_TABLE4_UML_CYCLES["gettimeofday"]
    - PAPER_TABLE4_HOST_CYCLES["gettimeofday"]
    - INTERCEPTION_CYCLES
)

# Fallback host cost for syscalls outside Table 4 (read/write/accept...):
# the Table 4 host mean is representative of a trap + light kernel work.
DEFAULT_HOST_CYCLES = sum(PAPER_TABLE4_HOST_CYCLES[c] for c in _PLAIN_CALLS) / len(
    _PLAIN_CALLS
)


@dataclass(frozen=True)
class SyscallMix:
    """An application's per-request execution profile.

    ``user_mcycles`` of unmodified user-mode work plus ``n_syscalls``
    kernel crossings (costed at the generic rate).
    """

    user_mcycles: float
    n_syscalls: float

    def __post_init__(self) -> None:
        if self.user_mcycles < 0:
            raise ValueError(f"negative user cycles: {self.user_mcycles}")
        if self.n_syscalls < 0:
            raise ValueError(f"negative syscall count: {self.n_syscalls}")


class SyscallCostModel:
    """Cycle costs of syscalls in the host OS and inside a UML guest."""

    def __init__(
        self,
        host_cycles: Mapping[str, float] = PAPER_TABLE4_HOST_CYCLES,
        interception_cycles: float = INTERCEPTION_CYCLES,
        gettimeofday_extra: float = GETTIMEOFDAY_EXTRA_CYCLES,
    ):
        if interception_cycles < 0:
            raise ValueError("interception cost cannot be negative")
        self._host = dict(host_cycles)
        self.interception_cycles = interception_cycles
        self.gettimeofday_extra = gettimeofday_extra

    @property
    def known_syscalls(self):
        return sorted(self._host)

    def host_cycles(self, name: str) -> float:
        """Cost of ``name`` executed directly on the host OS."""
        return self._host.get(name, DEFAULT_HOST_CYCLES)

    def uml_cycles(self, name: str) -> float:
        """Cost of ``name`` executed inside a UML guest."""
        cost = self.host_cycles(name) + self.interception_cycles
        if name == "gettimeofday":
            cost += self.gettimeofday_extra
        return cost

    def cycles(self, name: str, in_uml: bool) -> float:
        return self.uml_cycles(name) if in_uml else self.host_cycles(name)

    def time_s(self, name: str, cpu_mhz: float, in_uml: bool) -> float:
        """Wall time of one call at the given clock."""
        if cpu_mhz <= 0:
            raise ValueError(f"cpu_mhz must be positive, got {cpu_mhz}")
        return self.cycles(name, in_uml) / (cpu_mhz * 1e6)

    def syscall_slowdown(self, name: str) -> float:
        """UML/host ratio for one syscall (Table 4's headline ~20-27x)."""
        return self.uml_cycles(name) / self.host_cycles(name)

    # -- application level ----------------------------------------------------
    def mix_mcycles(self, mix: SyscallMix, in_uml: bool) -> float:
        """Total megacycles to execute one request with profile ``mix``."""
        per_call = (
            DEFAULT_HOST_CYCLES + self.interception_cycles
            if in_uml
            else DEFAULT_HOST_CYCLES
        )
        return mix.user_mcycles + mix.n_syscalls * per_call / 1e6

    def mix_time_s(self, mix: SyscallMix, cpu_mhz: float, in_uml: bool) -> float:
        if cpu_mhz <= 0:
            raise ValueError(f"cpu_mhz must be positive, got {cpu_mhz}")
        return self.mix_mcycles(mix, in_uml) / cpu_mhz

    def application_slowdown(self, mix: SyscallMix) -> float:
        """UML/host time ratio for an application profile.

        Approaches the syscall-level ratio only as user work vanishes;
        for realistic mixes it is a small constant (Figure 6).
        """
        host = self.mix_mcycles(mix, in_uml=False)
        if host == 0:
            return 1.0
        return self.mix_mcycles(mix, in_uml=True) / host

    def table4(self) -> Dict[str, Dict[str, float]]:
        """Regenerate Table 4 from the model: {syscall: {uml, host}}."""
        return {
            name: {
                "in_uml": round(self.uml_cycles(name)),
                "in_host_os": round(self.host_cycles(name)),
            }
            for name in self.known_syscalls
        }
