"""Guest filesystem trees.

An ASP's image is "properly organized in a file system with one root"
(paper §4.3), and the Daemon's tailoring physically edits that tree:
init scripts live under ``/etc/init.d``, shared libraries under
``/usr/lib``, the application under the paths its RPM declares.  This
module provides the tree itself (:class:`FileTree`) and the
materialisation of a :class:`~repro.guestos.rootfs.RootFilesystem`
into one (:func:`materialise_rootfs`), so users can inspect exactly
what a tailored image contains.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.guestos.rootfs import RootFilesystem

__all__ = ["FsError", "FileTree", "materialise_rootfs"]


class FsError(RuntimeError):
    """Bad path or conflicting filesystem operation."""


class _Node:
    __slots__ = ("name", "children", "size_mb")

    def __init__(self, name: str, size_mb: Optional[float] = None):
        self.name = name
        self.size_mb = size_mb  # None => directory
        self.children: Dict[str, "_Node"] = {}

    @property
    def is_dir(self) -> bool:
        return self.size_mb is None


def _split(path: str) -> List[str]:
    if not path.startswith("/"):
        raise FsError(f"paths must be absolute, got {path!r}")
    return [part for part in path.split("/") if part]


class FileTree:
    """A single-rooted file hierarchy with sized files."""

    def __init__(self) -> None:
        self._root = _Node("/")

    # -- navigation --------------------------------------------------------
    def _walk_to(self, parts: List[str]) -> Optional[_Node]:
        node = self._root
        for part in parts:
            if not node.is_dir or part not in node.children:
                return None
            node = node.children[part]
        return node

    def exists(self, path: str) -> bool:
        return self._walk_to(_split(path)) is not None

    def is_dir(self, path: str) -> bool:
        node = self._walk_to(_split(path))
        if node is None:
            raise FsError(f"no such path: {path}")
        return node.is_dir

    # -- mutation -----------------------------------------------------------
    def mkdir(self, path: str) -> None:
        """Create a directory (and parents, mkdir -p style)."""
        node = self._root
        for part in _split(path):
            if part in node.children:
                node = node.children[part]
                if not node.is_dir:
                    raise FsError(f"{path}: {part!r} is a file")
            else:
                child = _Node(part)
                node.children[part] = child
                node = child

    def add_file(self, path: str, size_mb: float) -> None:
        if size_mb < 0:
            raise FsError(f"{path}: negative size")
        parts = _split(path)
        if not parts:
            raise FsError("cannot create a file at /")
        self.mkdir("/" + "/".join(parts[:-1])) if parts[:-1] else None
        parent = self._walk_to(parts[:-1])
        assert parent is not None
        if parts[-1] in parent.children:
            raise FsError(f"{path} already exists")
        parent.children[parts[-1]] = _Node(parts[-1], size_mb=size_mb)

    def remove(self, path: str) -> float:
        """Remove a file or directory subtree; returns MB freed."""
        parts = _split(path)
        if not parts:
            raise FsError("cannot remove /")
        parent = self._walk_to(parts[:-1])
        if parent is None or parts[-1] not in parent.children:
            raise FsError(f"no such path: {path}")
        freed = self._du(parent.children[parts[-1]])
        del parent.children[parts[-1]]
        return freed

    # -- accounting -----------------------------------------------------------
    def _du(self, node: _Node) -> float:
        if not node.is_dir:
            return node.size_mb or 0.0
        return sum(self._du(child) for child in node.children.values())

    def size_mb(self, path: str = "/") -> float:
        node = self._walk_to(_split(path)) if path != "/" else self._root
        if node is None:
            raise FsError(f"no such path: {path}")
        return self._du(node)

    def listdir(self, path: str = "/") -> List[str]:
        node = self._walk_to(_split(path)) if path != "/" else self._root
        if node is None:
            raise FsError(f"no such path: {path}")
        if not node.is_dir:
            raise FsError(f"{path} is a file")
        return sorted(node.children)

    def walk(self) -> Iterator[Tuple[str, bool, float]]:
        """Yield (path, is_dir, size_mb) depth-first."""

        def _recurse(prefix: str, node: _Node) -> Iterator[Tuple[str, bool, float]]:
            for name in sorted(node.children):
                child = node.children[name]
                path = f"{prefix}/{name}"
                yield path, child.is_dir, self._du(child)
                if child.is_dir:
                    yield from _recurse(path, child)

        return _recurse("", self._root)

    def n_files(self) -> int:
        return sum(1 for _, is_dir, _ in self.walk() if not is_dir)

    def render(self, max_depth: int = 3) -> str:
        """An ls -R-ish listing down to ``max_depth``."""
        lines = ["/"]
        for path, is_dir, size in self.walk():
            depth = path.count("/")
            if depth > max_depth:
                continue
            indent = "  " * depth
            name = path.rsplit("/", 1)[-1]
            suffix = "/" if is_dir else f"  ({size:.2f} MB)"
            lines.append(f"{indent}{name}{suffix}")
        return "\n".join(lines)


def materialise_rootfs(rootfs: RootFilesystem) -> FileTree:
    """Lay a rootfs description out as a concrete file tree.

    Layout: base system split across /bin /sbin /lib /usr, init scripts
    in /etc/init.d (one per installed service, carrying the service's
    size), shared libraries in /usr/lib, payload data in /var/data.
    """
    tree = FileTree()
    for directory in ("/bin", "/sbin", "/lib", "/usr/lib", "/etc/init.d", "/var/data", "/root"):
        tree.mkdir(directory)
    # Base system: spread over the classic directories.
    base_split = [("/bin/busybox", 0.25), ("/sbin/init", 0.05), ("/lib/libc.so", 0.30)]
    fixed = sum(share for _, share in base_split)
    remainder = max(0.0, rootfs.base_mb - fixed)
    for path, share in base_split:
        tree.add_file(path, min(share, rootfs.base_mb))
    if remainder > 0:
        tree.add_file("/usr/base.img", remainder)
    # One init script per service; libraries once each.
    for service_name in sorted(rootfs.services):
        service = rootfs.registry.get(service_name)
        tree.add_file(f"/etc/init.d/{service_name}", service.size_mb)
    for lib_name in sorted(rootfs.registry.library_closure(rootfs.services)):
        library = rootfs.registry.library(lib_name)
        tree.add_file(f"/usr/lib/{lib_name}.so", library.size_mb)
    if rootfs.data_mb > 0:
        tree.add_file("/var/data/payload", rootfs.data_mb)
    return tree
