"""ASP registry and authentication.

"As the interface between ASPs and the HUP, the SODA Agent
authenticates the ASP" (paper §3.1).  A shared-secret scheme is
modelled: ASPs register with a secret, and every API call presents
credentials the Agent verifies.  Secrets are stored hashed.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict

from repro.core.errors import AuthenticationError

__all__ = ["ASPAccount", "Credentials", "ASPRegistry"]


def _digest(secret: str) -> str:
    return hashlib.sha256(secret.encode()).hexdigest()


@dataclass(frozen=True)
class Credentials:
    """What an ASP presents on each API call."""

    asp_name: str
    secret: str


@dataclass
class ASPAccount:
    """One registered Application Service Provider."""

    name: str
    secret_hash: str
    contact: str = ""
    enabled: bool = True


class ASPRegistry:
    """Accounts known to the SODA Agent."""

    def __init__(self) -> None:
        self._accounts: Dict[str, ASPAccount] = {}

    def register(self, name: str, secret: str, contact: str = "") -> ASPAccount:
        if not name:
            raise ValueError("ASP name cannot be empty")
        if len(secret) < 8:
            raise ValueError("ASP secret must be at least 8 characters")
        if name in self._accounts:
            raise ValueError(f"ASP {name!r} already registered")
        account = ASPAccount(name=name, secret_hash=_digest(secret), contact=contact)
        self._accounts[name] = account
        return account

    def disable(self, name: str) -> None:
        self._get(name).enabled = False

    def enable(self, name: str) -> None:
        self._get(name).enabled = True

    def _get(self, name: str) -> ASPAccount:
        try:
            return self._accounts[name]
        except KeyError:
            raise AuthenticationError(f"unknown ASP {name!r}") from None

    def authenticate(self, credentials: Credentials) -> ASPAccount:
        """Verify credentials; raises :class:`AuthenticationError`."""
        account = self._get(credentials.asp_name)
        if not account.enabled:
            raise AuthenticationError(f"ASP {credentials.asp_name!r} is disabled")
        if not hmac.compare_digest(account.secret_hash, _digest(credentials.secret)):
            raise AuthenticationError(f"bad secret for ASP {credentials.asp_name!r}")
        return account

    def __contains__(self, name: str) -> bool:
        return name in self._accounts

    def __len__(self) -> int:
        return len(self._accounts)
