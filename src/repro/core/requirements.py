"""Resource requirements: machine configuration M and <n, M>.

Paper §3: "the resource requirement of S [...] is specified as a tuple
< n, M >, meaning that the hosting of service S requires n machines of
configuration M - M is a tuple indicating the types and amounts of
resources."  Table 1 gives the example: 512 MHz CPU, 256 MB memory,
1 GB disk, 10 Mbps bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.reservation import ResourceVector

__all__ = ["MachineConfig", "ResourceRequirement", "TABLE1_EXAMPLE"]


@dataclass(frozen=True)
class MachineConfig:
    """The machine configuration ``M`` (Table 1)."""

    cpu_mhz: float = 512.0
    mem_mb: float = 256.0
    disk_mb: float = 1024.0
    bw_mbps: float = 10.0

    def __post_init__(self) -> None:
        for field in ("cpu_mhz", "mem_mb", "disk_mb", "bw_mbps"):
            if getattr(self, field) <= 0:
                raise ValueError(f"M.{field} must be positive, got {getattr(self, field)}")

    def as_vector(self) -> ResourceVector:
        """Raw (uninflated) resource vector of one machine instance."""
        return ResourceVector(self.cpu_mhz, self.mem_mb, self.disk_mb, self.bw_mbps)

    def table(self) -> str:
        """Render Table 1."""
        rows = [
            ("CPU", f"{self.cpu_mhz:g}MHz"),
            ("Memory", f"{self.mem_mb:g}MB"),
            ("Disk", f"{self.disk_mb / 1024:g}GB"),
            ("Bandwidth", f"{self.bw_mbps:g}Mbps"),
        ]
        width = max(len(r[0]) for r in rows)
        lines = [f"{'Type of resource':<{max(width, 16)}}  Amount of resource"]
        for name, amount in rows:
            lines.append(f"{name:<{max(width, 16)}}  {amount}")
        return "\n".join(lines)


#: The exact Table 1 example.
TABLE1_EXAMPLE = MachineConfig(cpu_mhz=512.0, mem_mb=256.0, disk_mb=1024.0, bw_mbps=10.0)


@dataclass(frozen=True)
class ResourceRequirement:
    """The ``<n, M>`` requirement attached to a service creation call."""

    n: int
    machine: MachineConfig

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")

    def total_vector(self) -> ResourceVector:
        """n machine instances worth of raw resources."""
        return self.machine.as_vector().scaled(float(self.n))

    def with_n(self, n_new: int) -> "ResourceRequirement":
        """The ``<n_new, M>`` used by SODA_service_resizing (§4.1)."""
        return ResourceRequirement(n=n_new, machine=self.machine)

    def __str__(self) -> str:
        return f"<{self.n}, M(cpu={self.machine.cpu_mhz:g}MHz, mem={self.machine.mem_mb:g}MB)>"
