"""Crashed-node recovery (extension).

Paper §3.5 is explicit that SODA "only helps to 'jail' the impact of
fault or attack within one service instead of 'saving' the service" —
recovery is the operator's job.  This module is that operator: a
:class:`NodeWatchdog` polls a service's nodes and re-boots any crashed
guest in place (same slice, same IP, fresh guest OS), restoring the
service without another full priming round.  Isolation guarantees make
this safe: a crash never corrupts anything outside the guest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional

from repro.core.node import VirtualServiceNode
from repro.core.service import ServiceRecord
from repro.guestos.proc import GUEST_ROOT_UID
from repro.guestos.uml import UmlState, UserModeLinux
from repro.host.bridge import BridgingModule
from repro.sim.kernel import Event, Simulator

__all__ = ["reboot_node", "RebootRecord", "NodeWatchdog"]


@dataclass(frozen=True)
class RebootRecord:
    """One watchdog-driven recovery: detection instant to restored instant.

    ``detected_at`` is when the poll loop noticed the crash (so the true
    outage started up to one poll period earlier); ``restored_at`` is
    when the fresh guest finished booting and the entrypoint respawned.
    """

    node: str
    detected_at: float
    restored_at: float

    @property
    def recovery_s(self) -> float:
        return self.restored_at - self.detected_at


def reboot_node(
    sim: Simulator,
    node: VirtualServiceNode,
    networking: Optional[Any] = None,
) -> Generator[Event, Any, UserModeLinux]:
    """Replace a node's guest with a freshly booted one, in place.

    The slice reservation, endpoint and IP are unchanged; the old
    guest's memory is released and the new guest boots from the same
    tailored rootfs.  When ``networking`` is the host's bridging module,
    its UML-IP mapping is repointed at the fresh guest.
    """
    old = node.vm
    fresh = UserModeLinux(
        sim,
        name=old.name,
        host=old.host,
        rootfs=old.rootfs,
        guest_mem_mb=old.guest_mem_mb,
        syscall_model=old.syscalls,
    )
    if old.state in (UmlState.RUNNING, UmlState.CRASHED):
        old.shutdown()
    yield from fresh.boot()
    fresh.ip = old.ip
    if node.entrypoint:
        fresh.processes.spawn(command=node.entrypoint, uid=GUEST_ROOT_UID, user="root")
    if isinstance(networking, BridgingModule) and fresh.ip is not None:
        try:
            networking.unregister(fresh.ip)
        except KeyError:
            pass
        networking.register(fresh.ip, fresh)
    node.vm = fresh
    return fresh


class NodeWatchdog:
    """Polls a service's nodes; re-boots crashed guests."""

    def __init__(self, sim: Simulator, record: ServiceRecord, poll_s: float = 1.0):
        if poll_s <= 0:
            raise ValueError(f"poll period must be positive, got {poll_s}")
        self.sim = sim
        self.record = record
        self.poll_s = poll_s
        self.crashes_detected = 0
        self.reboots = 0
        self.history: List[RebootRecord] = []
        self._networking_by_host = {}

    def attach_networking(self, host_name: str, networking: Any) -> None:
        """Let the watchdog repoint a host's bridge after reboots."""
        self._networking_by_host[host_name] = networking

    def watch(self, duration_s: float) -> Generator[Event, Any, None]:
        """Poll for ``duration_s`` simulated seconds (a sim process)."""
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        deadline = self.sim.now + duration_s
        while self.sim.now < deadline:
            for node in list(self.record.nodes):
                if node.torn_down:
                    continue
                if node.vm.state is UmlState.CRASHED:
                    self.crashes_detected += 1
                    detected_at = self.sim.now
                    yield from reboot_node(
                        self.sim, node,
                        networking=self._networking_by_host.get(node.host.name),
                    )
                    self.reboots += 1
                    self.history.append(
                        RebootRecord(
                            node=node.vm.name,
                            detected_at=detected_at,
                            restored_at=self.sim.now,
                        )
                    )
            yield self.sim.timeout(self.poll_s)
