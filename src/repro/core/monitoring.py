"""Service and platform monitoring.

Paper §1: "staff of the bioinformatics institute should be able to
perform service monitoring and management, as if the service were
hosted locally."  Combined with §2.1's administration isolation, that
means: an ASP sees everything about *its own* services (node health,
per-node request counters, guest process tables) and nothing about
anyone else's; the HUP operator sees platform-level utilisation.

Two consumers are served:

* :class:`HUPMonitor` — snapshot queries (`service_status`,
  `platform_status`), wired into the SODA Agent as
  ``service_status(credentials, name)`` with ownership checks.
* :class:`UtilisationSampler` — a simulated background process that
  samples per-host CPU reservation over time into time-weighted
  monitors (the raw material for capacity dashboards).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.master import SODAMaster
from repro.core.service import ServiceRecord
from repro.obs.metrics import registry_of
from repro.sim.kernel import Simulator
from repro.sim.monitor import TimeWeightedMonitor

__all__ = ["NodeStatus", "ServiceStatus", "HostStatus", "HUPMonitor", "UtilisationSampler"]


@dataclass(frozen=True)
class NodeStatus:
    """One virtual service node, as its ASP sees it."""

    name: str
    host: str
    endpoint: str
    units: int
    vm_state: str
    compromised: bool
    inflight: int
    served: int
    failed: int
    mean_response_s: Optional[float]

    @property
    def healthy(self) -> bool:
        return self.vm_state == "running" and not self.compromised


@dataclass(frozen=True)
class ServiceStatus:
    """A whole service, as its ASP sees it."""

    service: str
    state: str
    total_units: int
    nodes: List[NodeStatus]
    switch_dispatched: int
    switch_rejected: int
    switch_shedded: int = 0
    sla_class: Optional[str] = None

    @property
    def healthy_nodes(self) -> int:
        return sum(1 for n in self.nodes if n.healthy)

    @property
    def degraded(self) -> bool:
        return self.healthy_nodes < len(self.nodes)


@dataclass(frozen=True)
class HostStatus:
    """One HUP host, as the operator sees it."""

    host: str
    n_nodes: int
    cpu_utilisation: float
    mem_utilisation: float
    bw_utilisation: float
    free_ram_mb: float


class HUPMonitor:
    """Snapshot queries over a SODA Master's state."""

    def __init__(self, master: SODAMaster):
        self.master = master

    def node_status(self, record: ServiceRecord) -> List[NodeStatus]:
        statuses = []
        for node in record.nodes:
            mean = (
                node.response_times.mean() if node.response_times.count else None
            )
            statuses.append(
                NodeStatus(
                    name=node.name,
                    host=node.host.name,
                    endpoint=str(node.endpoint),
                    units=node.units,
                    vm_state=node.vm.state.value,
                    compromised=node.vm.compromised,
                    inflight=node.inflight,
                    served=node.served,
                    failed=node.failed,
                    mean_response_s=mean,
                )
            )
        return statuses

    def service_status(self, service_name: str) -> ServiceStatus:
        record = self.master.get_service(service_name)
        return ServiceStatus(
            service=record.name,
            state=record.state.value,
            total_units=record.total_units,
            nodes=self.node_status(record),
            switch_dispatched=record.switch.dispatched if record.switch else 0,
            switch_rejected=record.switch.rejected if record.switch else 0,
            switch_shedded=record.switch.shedded if record.switch else 0,
            sla_class=record.sla.service_class.value if record.sla else None,
        )

    def platform_status(self) -> List[HostStatus]:
        """The HUP-operator view: per-host utilisation."""
        statuses = []
        for host_name, daemon in self.master.daemons.items():
            host = daemon.host
            util = host.reservations.utilisation()
            n_nodes = sum(
                1
                for record in self.master.services.values()
                for node in record.nodes
                if node.host is host
            )
            statuses.append(
                HostStatus(
                    host=host_name,
                    n_nodes=n_nodes,
                    cpu_utilisation=util["cpu"],
                    mem_utilisation=util["mem"],
                    bw_utilisation=util["bw"],
                    free_ram_mb=host.memory.free_mb,
                )
            )
        return statuses


class UtilisationSampler:
    """Samples per-host CPU reservation into time-weighted monitors."""

    def __init__(self, sim: Simulator, master: SODAMaster, period_s: float = 1.0):
        if period_s <= 0:
            raise ValueError(f"period must be positive, got {period_s}")
        self.sim = sim
        self.master = master
        self.period_s = period_s
        self.cpu: Dict[str, TimeWeightedMonitor] = {
            name: TimeWeightedMonitor(f"cpu:{name}", start_time=sim.now)
            for name in master.daemons
        }
        self._process = None

    def start(self, duration_s: float):
        """Begin sampling for ``duration_s`` simulated seconds."""
        if self._process is not None and self._process.is_alive:
            raise RuntimeError("sampler already running")
        self._process = self.sim.process(self._run(duration_s), name="util-sampler")
        return self._process

    def _run(self, duration_s: float):
        deadline = self.sim.now + duration_s
        while self.sim.now < deadline:
            registry = registry_of(self.sim)
            gauge = (
                registry.gauge(
                    "soda_host_cpu_reserved_ratio",
                    "Reserved CPU fraction per HUP host (sampled).",
                    ("host",),
                )
                if registry is not None
                else None
            )
            for name, daemon in self.master.daemons.items():
                utilisation = daemon.host.reservations.utilisation()["cpu"]
                self.cpu[name].set(self.sim.now, utilisation)
                if gauge is not None:
                    gauge.set(utilisation, host=name)
            yield self.sim.timeout(self.period_s)

    def mean_cpu(self, host_name: str, start: float, end: float) -> float:
        return self.cpu[host_name].time_average(start, end)
