"""The SODA Master: HUP-wide service creation coordinator.

"Upon receiving the service creation request, the SODA Master checks if
the resource requirement of S can be satisfied by current HUP resource
availability.  The SODA Master collects resource information from SODA
Daemons running in each HUP host.  If the resource requirement cannot
be satisfied, a request failure will be reported.  Otherwise, service S
will be admitted; and the SODA Master will identify a number of HUP
host 'slices' to form the set of virtual service nodes for S.  The SODA
Master will then contact the SODA Daemons running in the selected HUP
hosts to initiate the service priming process.  After service priming,
the SODA Master will create a service switch for S" (paper §3.2).

Resizing (§3.4): "the SODA Master will either adjust the resources in
the current virtual service nodes, or add/remove virtual service
node(s).  In either case, the service configuration file will be
updated by the SODA Master to reflect the changes."
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from repro.core.allocation import (
    PlacementStrategy,
    SLOWDOWN_INFLATION,
    inflated_unit_vector,
    plan_allocation,
)
from repro.core.config import ServiceConfigFile
from repro.core.daemon import SODADaemon
from repro.core.errors import (
    AdmissionError,
    InvalidRequestError,
    PrimingError,
    ServiceNotFoundError,
)
from repro.core.node import VirtualServiceNode
from repro.core.policies import SwitchingPolicy
from repro.core.requirements import ResourceRequirement
from repro.core.service import ServiceRecord, ServiceState
from repro.core.switch import ServiceSwitch
from repro.image.repository import ImageRepository
from repro.net.lan import LAN
from repro.obs.metrics import registry_of
from repro.sim.kernel import Event, Simulator
from repro.sim.trace import trace

if TYPE_CHECKING:  # imported lazily at call sites to keep core -> sla acyclic
    from repro.sla.contract import SLAContract

__all__ = ["SODAMaster"]


class SODAMaster:
    """One per HUP."""

    def __init__(
        self,
        sim: Simulator,
        lan: LAN,
        daemons: List[SODADaemon],
        strategy: PlacementStrategy = PlacementStrategy.FIRST_FIT,
        inflation: float = SLOWDOWN_INFLATION,
    ):
        if not daemons:
            raise ValueError("a HUP needs at least one SODA Daemon")
        names = [d.host.name for d in daemons]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate daemon hosts: {names}")
        self.sim = sim
        self.lan = lan
        self.daemons = {d.host.name: d for d in daemons}
        self.strategy = strategy
        self.inflation = inflation
        self.services: Dict[str, ServiceRecord] = {}

    # -- observability --------------------------------------------------------
    def _obs_admission(self, outcome: str) -> None:
        """Count one admission decision (observes, never perturbs)."""
        registry = registry_of(self.sim)
        if registry is not None:
            registry.counter(
                "soda_master_admissions_total",
                "Service admission decisions by the SODA Master.",
                ("outcome",),
            ).inc(outcome=outcome)

    # -- availability -------------------------------------------------------
    def collect_availability(self):
        """Pull (host, available-vector) reports from every daemon."""
        return [
            (name, daemon.report_availability())
            for name, daemon in self.daemons.items()
        ]

    def can_admit(self, requirement: ResourceRequirement) -> bool:
        try:
            plan_allocation(
                requirement, self.collect_availability(), self.strategy, self.inflation
            )
            return True
        except AdmissionError:
            return False

    def utilization(self) -> float:
        """Platform-wide scalar utilization in [0, 1].

        Per host, the binding dimension (the largest reserved fraction
        across CPU / memory / disk / bandwidth) is what blocks the next
        reservation; the platform figure is the mean over hosts.  Spot
        pricing (:mod:`repro.market.pricing`) reprices from this.
        """
        fractions = []
        for daemon in self.daemons.values():
            per_dim = daemon.host.reservations.utilisation()
            fractions.append(max(per_dim.values()))
        return sum(fractions) / len(fractions)

    # -- creation -----------------------------------------------------------
    def create_service(
        self,
        service_name: str,
        asp: str,
        repository: ImageRepository,
        image_name: str,
        requirement: ResourceRequirement,
        policy: Optional[SwitchingPolicy] = None,
        sla: Optional["SLAContract"] = None,
    ) -> Generator[Event, Any, ServiceRecord]:
        """Admit, prime (in parallel across hosts) and switch a service.

        With an ``sla`` contract, admission additionally rejects
        objectives infeasible for the requested ``<n, M>``, and the
        created switch sheds load by service class under saturation.
        """
        if service_name in self.services:
            raise InvalidRequestError(f"service {service_name!r} already hosted")
        if image_name not in repository:
            raise InvalidRequestError(f"image {image_name!r} not published")
        try:
            if sla is not None:
                from repro.sla.enforcement import check_admissible

                check_admissible(sla, requirement)
            plan = plan_allocation(
                requirement, self.collect_availability(), self.strategy, self.inflation
            )
        except AdmissionError:
            self._obs_admission("rejected")
            raise
        self._obs_admission("admitted")
        trace(
            self.sim, "master", "service admitted",
            service=service_name, requirement=str(requirement),
            nodes=plan.n_nodes,
        )
        record = ServiceRecord(
            name=service_name,
            asp=asp,
            image_name=image_name,
            requirement=requirement,
            created_at=self.sim.now,
            sla=sla,
        )
        self.services[service_name] = record
        record.transition(ServiceState.PRIMING)
        # Prime all selected hosts in parallel (§3.2: "coordinates the
        # service priming process").
        prime_procs = []
        for index, assignment in enumerate(plan.assignments):
            daemon = self.daemons[assignment.host_name]
            prime_procs.append(
                self.sim.process(
                    daemon.prime(
                        service_name=service_name,
                        repository=repository,
                        image_name=image_name,
                        units=assignment.units,
                        unit_vector=plan.unit_vector,
                        machine=requirement.machine,
                        node_index=index,
                    ),
                    name=f"prime:{service_name}:{assignment.host_name}",
                )
            )
        # Wait for every daemon to settle (success or failure) so a
        # partial failure can be rolled back without leaking in-flight
        # priming work.
        nodes: List[VirtualServiceNode] = []
        errors: List[PrimingError] = []
        for proc in prime_procs:
            try:
                node = yield proc
                nodes.append(node)
            except PrimingError as exc:
                errors.append(exc)
        if errors:
            for node in nodes:
                self.daemons[node.host.name].teardown_node(node)
            record.transition(ServiceState.TORN_DOWN)
            del self.services[service_name]
            raise errors[0]
        record.nodes = nodes

        # Service configuration file + switch (§3.4, Table 3).
        config = ServiceConfigFile(service_name)
        for node in record.nodes:
            config.add_backend(node.endpoint.ip, node.endpoint.port, node.units)
        record.switch = ServiceSwitch(
            sim=self.sim,
            service_name=service_name,
            lan=self.lan,
            nodes=record.nodes,
            config=config,
            policy=policy,
            home_node=record.nodes[0],
        )
        record.switch.tenant = asp
        if sla is not None:
            from repro.sla.enforcement import ClassPriorityShedder

            record.switch.shedder = ClassPriorityShedder(sla.service_class)
        record.transition(ServiceState.RUNNING)
        record.primed_at = self.sim.now
        trace(
            self.sim, "master", "switch created",
            service=service_name, backends=len(config),
        )
        return record

    # -- partitionable services (§3.5 extension) ------------------------------
    @staticmethod
    def _component_units(components, n: int) -> Dict[str, int]:
        """Split n machine instances across components by weight.

        Every component gets at least one unit; the rest follow the
        weights by largest remainder.  Deterministic.
        """
        if n < len(components):
            raise InvalidRequestError(
                f"<{n}, M> cannot cover {len(components)} components "
                "(each needs at least one machine instance)"
            )
        total_weight = sum(c.weight for c in components)
        spare = n - len(components)
        exact = {c.name: spare * c.weight / total_weight for c in components}
        units = {name: 1 + int(x) for name, x in exact.items()}
        leftovers = sorted(
            exact, key=lambda name: (exact[name] - int(exact[name]), name), reverse=True
        )
        for name in leftovers[: n - sum(units.values())]:
            units[name] += 1
        return units

    def create_partitioned_service(
        self,
        service_name: str,
        asp: str,
        repository: ImageRepository,
        image_name: str,
        requirement: ResourceRequirement,
        policy: Optional[SwitchingPolicy] = None,
    ) -> Generator[Event, Any, ServiceRecord]:
        """Create a partitionable service: one node per component.

        Instead of full replication, each component of the image is
        mapped to its own virtual service node, sized by component
        weight; the switch routes requests by their ``component`` tag.
        """
        if service_name in self.services:
            raise InvalidRequestError(f"service {service_name!r} already hosted")
        if image_name not in repository:
            raise InvalidRequestError(f"image {image_name!r} not published")
        image = repository.get(image_name)
        if not image.is_partitionable:
            raise InvalidRequestError(
                f"image {image_name!r} declares no components; use create_service"
            )
        component_units = self._component_units(image.components, requirement.n)

        record = ServiceRecord(
            name=service_name,
            asp=asp,
            image_name=image_name,
            requirement=requirement,
            created_at=self.sim.now,
        )
        self.services[service_name] = record
        record.transition(ServiceState.PRIMING)
        nodes: List[VirtualServiceNode] = []
        try:
            for index, component in enumerate(image.components):
                units = component_units[component.name]
                sub_requirement = requirement.with_n(units)
                plan = plan_allocation(
                    sub_requirement, self.collect_availability(),
                    self.strategy, self.inflation,
                )
                for assignment in plan.assignments:
                    daemon = self.daemons[assignment.host_name]
                    node = yield self.sim.process(
                        daemon.prime(
                            service_name=service_name,
                            repository=repository,
                            image_name=image_name,
                            units=assignment.units,
                            unit_vector=plan.unit_vector,
                            machine=requirement.machine,
                            node_index=len(nodes),
                            component=component.name,
                        )
                    )
                    nodes.append(node)
        except (PrimingError, AdmissionError):
            for node in nodes:
                self.daemons[node.host.name].teardown_node(node)
            record.transition(ServiceState.TORN_DOWN)
            del self.services[service_name]
            raise
        record.nodes = nodes

        config = ServiceConfigFile(service_name)
        for node in record.nodes:
            config.add_backend(node.endpoint.ip, node.endpoint.port, node.units)
        record.switch = ServiceSwitch(
            sim=self.sim,
            service_name=service_name,
            lan=self.lan,
            nodes=record.nodes,
            config=config,
            policy=policy,
            home_node=record.nodes[0],
        )
        record.switch.tenant = asp
        record.transition(ServiceState.RUNNING)
        record.primed_at = self.sim.now
        return record

    # -- lookup --------------------------------------------------------------
    def get_service(self, service_name: str) -> ServiceRecord:
        try:
            return self.services[service_name]
        except KeyError:
            raise ServiceNotFoundError(f"service {service_name!r} not hosted") from None

    # -- resizing ------------------------------------------------------------
    def resize_service(
        self,
        service_name: str,
        repository: ImageRepository,
        n_new: int,
    ) -> Generator[Event, Any, ServiceRecord]:
        """Apply ``<n_new, M>``: adjust nodes in place, add, or remove."""
        record = self.get_service(service_name)
        if not record.is_running:
            raise InvalidRequestError(
                f"service {service_name!r} is {record.state.value}, not running"
            )
        if n_new < 1:
            raise InvalidRequestError(f"n_new must be >= 1, got {n_new}")
        requirement_new = record.requirement.with_n(n_new)
        unit = inflated_unit_vector(requirement_new, self.inflation)
        record.transition(ServiceState.RESIZING)
        try:
            delta = n_new - record.total_units
            if delta > 0:
                yield from self._grow(record, repository, delta, unit)
            elif delta < 0:
                self._shrink(record, -delta, unit)
            record.requirement = requirement_new
        finally:
            if record.state is ServiceState.RESIZING:
                record.transition(ServiceState.RUNNING)
        return record

    def _grow(self, record, repository, delta: int, unit) -> Generator[Event, Any, None]:
        """Prefer growing existing nodes in place; spill to new nodes."""
        remaining = delta
        grown: List[tuple] = []  # (node, original units) for rollback
        # First option (§3.4): adjust resources in current nodes.
        for node in record.nodes:
            if remaining == 0:
                break
            daemon = self.daemons[node.host.name]
            grow_by = 0
            while grow_by < remaining and daemon.host.reservations.can_fit(
                unit.scaled(float(grow_by + 1))
            ):
                grow_by += 1
            if grow_by > 0:
                grown.append((node, node.units))
                daemon.resize_node(node, node.units + grow_by, unit)
                record.switch.config.set_capacity(
                    node.endpoint.ip, node.endpoint.port, node.units
                )
                remaining -= grow_by
        if remaining == 0:
            return
        # Second option: add new virtual service node(s).
        requirement = record.requirement.with_n(remaining)
        try:
            plan = plan_allocation(
                requirement, self.collect_availability(), self.strategy, self.inflation
            )
        except AdmissionError as exc:
            # Roll back the in-place growth so a failed resize leaves the
            # service exactly as it was.
            for node, original_units in reversed(grown):
                self.daemons[node.host.name].resize_node(node, original_units, unit)
                record.switch.config.set_capacity(
                    node.endpoint.ip, node.endpoint.port, original_units
                )
            raise AdmissionError(
                f"resize of {record.name!r} cannot place {remaining} more units: {exc}"
            ) from exc
        next_index = len(record.nodes)
        for offset, assignment in enumerate(plan.assignments):
            daemon = self.daemons[assignment.host_name]
            node = yield self.sim.process(
                daemon.prime(
                    service_name=record.name,
                    repository=repository,
                    image_name=record.image_name,
                    units=assignment.units,
                    unit_vector=plan.unit_vector,
                    machine=record.requirement.machine,
                    node_index=next_index + offset,
                )
            )
            record.nodes.append(node)
            record.switch.add_node(node)
            record.switch.config.add_backend(
                node.endpoint.ip, node.endpoint.port, node.units
            )

    def _shrink(self, record, delta: int, unit) -> None:
        """Shed capacity: shrink/remove nodes, never the switch's home."""
        remaining = delta
        # Remove or shrink from the last node backwards (home node last
        # and never removed entirely).
        for node in reversed(record.nodes):
            if remaining == 0:
                break
            daemon = self.daemons[node.host.name]
            removable = node is not record.switch.home_node
            if removable and node.units <= remaining:
                remaining -= node.units
                record.switch.remove_node(node)
                record.switch.config.remove_backend(node.endpoint.ip, node.endpoint.port)
                daemon.teardown_node(node)
                record.nodes.remove(node)
            else:
                shrink_by = min(remaining, node.units - 1)
                if shrink_by > 0:
                    daemon.resize_node(node, node.units - shrink_by, unit)
                    record.switch.config.set_capacity(
                        node.endpoint.ip, node.endpoint.port, node.units
                    )
                    remaining -= shrink_by
        if remaining > 0:
            raise InvalidRequestError(
                f"cannot shrink {record.name!r} below one machine instance"
            )

    # -- teardown --------------------------------------------------------------
    def teardown_service(self, service_name: str) -> ServiceRecord:
        """SODA_service_teardown: release every slice of the service."""
        record = self.get_service(service_name)
        if record.state is ServiceState.TORN_DOWN:
            raise InvalidRequestError(f"service {service_name!r} already torn down")
        for node in record.nodes:
            self.daemons[node.host.name].teardown_node(node)
        record.transition(ServiceState.TORN_DOWN)
        del self.services[service_name]
        trace(self.sim, "master", "service torn down", service=service_name)
        return record
