"""HUP billing ledger.

The SODA Agent "performs other administrative tasks such as billing"
(paper §2.2).  The model charges per machine-instance-hour: a service
holding capacity for ``k`` machine instances M accrues
``k * rate_per_m_hour`` per hour of simulated time.  Resizing changes
the accrual rate from the moment it takes effect.

Spot pricing (market extension, see :mod:`repro.market.pricing`): the
platform rate may change over time via :meth:`BillingLedger.set_rate`.
A rate change splits every open segment at the change instant, so time
already served is always billed at the rate in force while it was
served — mid-segment repricing never back-bills.

SLA settlement (see :mod:`repro.sla.penalties`) posts
:class:`CreditNote` entries against the ledger; an invoice nets out
gross accrual minus credits, floored at zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["UsageSegment", "CreditNote", "Invoice", "BillingLedger"]

DEFAULT_RATE_PER_M_HOUR = 1.0  # currency units per machine-instance-hour


@dataclass(frozen=True)
class UsageSegment:
    """A span during which a service held a constant capacity at a
    constant rate."""

    service: str
    asp: str
    start: float
    end: float
    m_units: int
    rate_per_m_hour: float = DEFAULT_RATE_PER_M_HOUR

    @property
    def hours(self) -> float:
        return (self.end - self.start) / 3600.0

    @property
    def cost(self) -> float:
        return self.hours * self.m_units * self.rate_per_m_hour


@dataclass(frozen=True)
class CreditNote:
    """One SLA credit posted against a service's charges."""

    service: str
    asp: str
    issued_at: float
    amount: float
    reason: str = ""

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise ValueError(f"credit amount must be positive, got {self.amount}")


@dataclass(frozen=True)
class Invoice:
    """One ASP's bill as of an instant: accrual, credits, amount due."""

    asp: str
    issued_at: float
    machine_hours: float
    gross: float
    credits: float

    @property
    def amount_due(self) -> float:
        """Accrual net of credits, floored at zero."""
        return max(0.0, self.gross - self.credits)


class BillingLedger:
    """Accrues machine-instance-hours per service and invoices per ASP.

    ``rate_per_m_hour`` is the rate *currently* in force; historical
    segments keep the rate they accrued under (see :meth:`set_rate`).
    """

    def __init__(self, rate_per_m_hour: float = DEFAULT_RATE_PER_M_HOUR):
        if rate_per_m_hour < 0:
            raise ValueError(f"rate cannot be negative: {rate_per_m_hour}")
        self.rate_per_m_hour = rate_per_m_hour
        self._open: Dict[str, tuple] = {}  # service -> (asp, start, m_units)
        self._segments: List[UsageSegment] = []
        self._credits: List[CreditNote] = []
        self._rate_history: List[Tuple[float, float]] = []  # (changed_at, rate)

    def service_started(self, service: str, asp: str, now: float, m_units: int) -> None:
        if service in self._open:
            raise ValueError(f"service {service!r} already metered")
        if m_units < 1:
            raise ValueError(f"m_units must be >= 1, got {m_units}")
        self._open[service] = (asp, now, m_units)

    def service_resized(self, service: str, now: float, m_units: int) -> None:
        """Close the current segment and open one at the new capacity."""
        if service not in self._open:
            raise ValueError(f"service {service!r} not metered")
        if m_units < 1:
            raise ValueError(f"m_units must be >= 1, got {m_units}")
        asp, start, old_units = self._open[service]
        self._close(service, asp, start, now, old_units)
        self._open[service] = (asp, now, m_units)

    def service_stopped(self, service: str, now: float) -> None:
        if service not in self._open:
            raise ValueError(f"service {service!r} not metered")
        asp, start, m_units = self._open.pop(service)
        self._close(service, asp, start, now, m_units)

    def _close(self, service: str, asp: str, start: float, end: float, m_units: int) -> None:
        if end < start:
            raise ValueError(f"segment ends before it starts: {end} < {start}")
        self._segments.append(
            UsageSegment(
                service=service, asp=asp, start=start, end=end, m_units=m_units,
                rate_per_m_hour=self.rate_per_m_hour,
            )
        )

    # -- spot pricing (market extension) ---------------------------------
    def set_rate(self, rate_per_m_hour: float, now: float) -> None:
        """Change the platform rate from ``now`` on.

        Every open segment is split at ``now``: the span already served
        is closed at the old rate, and a fresh span opens at the new
        one, so repricing never back-bills history.  A segment whose
        open instant *is* ``now`` has accrued no time at the old rate
        and is simply re-opened (no zero-duration split is recorded).
        """
        if rate_per_m_hour < 0:
            raise ValueError(f"rate cannot be negative: {rate_per_m_hour}")
        if rate_per_m_hour == self.rate_per_m_hour:
            return
        for service, (asp, start, m_units) in list(self._open.items()):
            if start > now:
                raise ValueError(
                    f"rate change at {now} predates open segment of "
                    f"{service!r} (started {start})"
                )
            if start < now:
                self._close(service, asp, start, now, m_units)
                self._open[service] = (asp, now, m_units)
        self.rate_per_m_hour = rate_per_m_hour
        self._rate_history.append((now, rate_per_m_hour))

    @property
    def rate_history(self) -> List[Tuple[float, float]]:
        """(changed_at, rate) for every :meth:`set_rate` call, in order."""
        return list(self._rate_history)

    # -- queries ---------------------------------------------------------
    def machine_hours(self, service: str, now: float) -> float:
        """Accrued machine-instance-hours for ``service`` as of ``now``."""
        total = sum(s.hours * s.m_units for s in self._segments if s.service == service)
        if service in self._open:
            asp, start, m_units = self._open[service]
            total += (now - start) / 3600.0 * m_units
        return total

    def gross(self, asp: str, now: float) -> float:
        """Accrued charges of ``asp`` as of ``now``, before SLA credits.

        Closed segments bill at the rate in force while they accrued;
        open spans bill at the current rate (``set_rate`` splits them,
        so an open span never straddles a rate change).
        """
        total = sum(s.cost for s in self._segments if s.asp == asp)
        for service, (open_asp, start, m_units) in self._open.items():
            if open_asp == asp:
                total += (now - start) / 3600.0 * m_units * self.rate_per_m_hour
        return total

    def invoice(self, asp: str, now: float) -> float:
        """Amount owed by ``asp`` as of ``now``: accrual net of credits."""
        return max(0.0, self.gross(asp, now) - self.credit_total(asp=asp))

    def invoice_detail(self, asp: str, now: float) -> Invoice:
        """The itemised bill behind :meth:`invoice`."""
        total_hours = sum(
            s.hours * s.m_units for s in self._segments if s.asp == asp
        )
        for service, (open_asp, start, m_units) in self._open.items():
            if open_asp == asp:
                total_hours += (now - start) / 3600.0 * m_units
        return Invoice(
            asp=asp,
            issued_at=now,
            machine_hours=total_hours,
            gross=self.gross(asp, now),
            credits=self.credit_total(asp=asp),
        )

    # -- SLA credits -----------------------------------------------------
    def add_credit(
        self, service: str, asp: str, now: float, amount: float, reason: str = ""
    ) -> CreditNote:
        """Post an SLA credit against ``service`` (see repro.sla.penalties)."""
        note = CreditNote(
            service=service, asp=asp, issued_at=now, amount=amount, reason=reason
        )
        self._credits.append(note)
        return note

    def credit_total(
        self, asp: Optional[str] = None, service: Optional[str] = None
    ) -> float:
        """Total credits posted, optionally filtered by ASP and/or service."""
        return sum(
            note.amount
            for note in self._credits
            if (asp is None or note.asp == asp)
            and (service is None or note.service == service)
        )

    def service_gross(self, service: str, now: float) -> float:
        """One service's accrued charges as of ``now``, before credits."""
        total = sum(s.cost for s in self._segments if s.service == service)
        if service in self._open:
            asp, start, m_units = self._open[service]
            total += (now - start) / 3600.0 * m_units * self.rate_per_m_hour
        return total

    @property
    def credits(self) -> List[CreditNote]:
        return list(self._credits)

    @property
    def n_open(self) -> int:
        return len(self._open)

    @property
    def segments(self) -> List[UsageSegment]:
        return list(self._segments)
