"""HUP billing ledger.

The SODA Agent "performs other administrative tasks such as billing"
(paper §2.2).  The model charges per machine-instance-hour: a service
holding capacity for ``k`` machine instances M accrues
``k * rate_per_m_hour`` per hour of simulated time.  Resizing changes
the accrual rate from the moment it takes effect.

SLA settlement (see :mod:`repro.sla.penalties`) posts
:class:`CreditNote` entries against the ledger; an invoice nets out
gross accrual minus credits, floored at zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["UsageSegment", "CreditNote", "BillingLedger"]

DEFAULT_RATE_PER_M_HOUR = 1.0  # currency units per machine-instance-hour


@dataclass(frozen=True)
class UsageSegment:
    """A span during which a service held a constant capacity."""

    service: str
    asp: str
    start: float
    end: float
    m_units: int

    @property
    def hours(self) -> float:
        return (self.end - self.start) / 3600.0


@dataclass(frozen=True)
class CreditNote:
    """One SLA credit posted against a service's charges."""

    service: str
    asp: str
    issued_at: float
    amount: float
    reason: str = ""

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise ValueError(f"credit amount must be positive, got {self.amount}")


class BillingLedger:
    """Accrues machine-instance-hours per service and invoices per ASP."""

    def __init__(self, rate_per_m_hour: float = DEFAULT_RATE_PER_M_HOUR):
        if rate_per_m_hour < 0:
            raise ValueError(f"rate cannot be negative: {rate_per_m_hour}")
        self.rate_per_m_hour = rate_per_m_hour
        self._open: Dict[str, tuple] = {}  # service -> (asp, start, m_units)
        self._segments: List[UsageSegment] = []
        self._credits: List[CreditNote] = []

    def service_started(self, service: str, asp: str, now: float, m_units: int) -> None:
        if service in self._open:
            raise ValueError(f"service {service!r} already metered")
        if m_units < 1:
            raise ValueError(f"m_units must be >= 1, got {m_units}")
        self._open[service] = (asp, now, m_units)

    def service_resized(self, service: str, now: float, m_units: int) -> None:
        """Close the current segment and open one at the new capacity."""
        if service not in self._open:
            raise ValueError(f"service {service!r} not metered")
        if m_units < 1:
            raise ValueError(f"m_units must be >= 1, got {m_units}")
        asp, start, old_units = self._open[service]
        self._close(service, asp, start, now, old_units)
        self._open[service] = (asp, now, m_units)

    def service_stopped(self, service: str, now: float) -> None:
        if service not in self._open:
            raise ValueError(f"service {service!r} not metered")
        asp, start, m_units = self._open.pop(service)
        self._close(service, asp, start, now, m_units)

    def _close(self, service: str, asp: str, start: float, end: float, m_units: int) -> None:
        if end < start:
            raise ValueError(f"segment ends before it starts: {end} < {start}")
        self._segments.append(
            UsageSegment(service=service, asp=asp, start=start, end=end, m_units=m_units)
        )

    # -- queries ---------------------------------------------------------
    def machine_hours(self, service: str, now: float) -> float:
        """Accrued machine-instance-hours for ``service`` as of ``now``."""
        total = sum(s.hours * s.m_units for s in self._segments if s.service == service)
        if service in self._open:
            asp, start, m_units = self._open[service]
            total += (now - start) / 3600.0 * m_units
        return total

    def gross(self, asp: str, now: float) -> float:
        """Accrued charges of ``asp`` as of ``now``, before SLA credits."""
        total = sum(s.hours * s.m_units for s in self._segments if s.asp == asp)
        for service, (open_asp, start, m_units) in self._open.items():
            if open_asp == asp:
                total += (now - start) / 3600.0 * m_units
        return total * self.rate_per_m_hour

    def invoice(self, asp: str, now: float) -> float:
        """Amount owed by ``asp`` as of ``now``: accrual net of credits."""
        return max(0.0, self.gross(asp, now) - self.credit_total(asp=asp))

    # -- SLA credits -----------------------------------------------------
    def add_credit(
        self, service: str, asp: str, now: float, amount: float, reason: str = ""
    ) -> CreditNote:
        """Post an SLA credit against ``service`` (see repro.sla.penalties)."""
        note = CreditNote(
            service=service, asp=asp, issued_at=now, amount=amount, reason=reason
        )
        self._credits.append(note)
        return note

    def credit_total(
        self, asp: Optional[str] = None, service: Optional[str] = None
    ) -> float:
        """Total credits posted, optionally filtered by ASP and/or service."""
        return sum(
            note.amount
            for note in self._credits
            if (asp is None or note.asp == asp)
            and (service is None or note.service == service)
        )

    def service_gross(self, service: str, now: float) -> float:
        """One service's accrued charges as of ``now``, before credits."""
        return self.machine_hours(service, now) * self.rate_per_m_hour

    @property
    def credits(self) -> List[CreditNote]:
        return list(self._credits)

    @property
    def n_open(self) -> int:
        return len(self._open)

    @property
    def segments(self) -> List[UsageSegment]:
        return list(self._segments)
