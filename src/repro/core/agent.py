"""The SODA Agent: the ASP-facing front door.

"SODA provides APIs for service creation, tear-down, and resizing.  The
SODA Agent accepts these calls and passes them to the SODA Master after
proper authentication" (paper §4.1):

* :meth:`SODAAgent.service_creation` — ``SODA_service_creation``:
  service name, image location, resource requirement ``<n, M>``;
* :meth:`SODAAgent.service_teardown` — ``SODA_service_teardown``;
* :meth:`SODAAgent.service_resizing` — ``SODA_service_resizing`` with a
  new requirement ``<n_new, M>``.

"After the service creation is completed, the SODA Agent will reply to
the ASP with information about the virtual service nodes created"
(§3.1).  The Agent also owns billing (§2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional, Tuple

from repro.core.auth import ASPRegistry, Credentials
from repro.core.billing import BillingLedger
from repro.core.errors import AuthenticationError
from repro.core.master import SODAMaster
from repro.core.policies import SwitchingPolicy
from repro.core.requirements import ResourceRequirement
from repro.core.service import ServiceRecord
from repro.image.repository import ImageRepository
from repro.sim.kernel import Event, Simulator

if TYPE_CHECKING:  # keep core -> sla lazy (see repro.sla layering rule)
    from repro.sla.contract import SLAContract

__all__ = ["ServiceCreationReply", "SODAAgent"]

# Agent-side processing per API call (authentication, accounting),
# simulated seconds.
API_OVERHEAD_S = 0.005


@dataclass(frozen=True)
class ServiceCreationReply:
    """What the ASP gets back from SODA_service_creation."""

    service_name: str
    node_endpoints: Tuple[str, ...]
    node_capacities: Tuple[int, ...]
    switch_endpoint: str
    primed_in_s: float


class SODAAgent:
    """One per HUP."""

    def __init__(
        self,
        sim: Simulator,
        master: SODAMaster,
        registry: Optional[ASPRegistry] = None,
        ledger: Optional[BillingLedger] = None,
        admission: Optional[Any] = None,
    ):
        """``admission`` optionally installs an economic admission hook
        (duck-typed: ``review(asp, requirement, sla, master, now,
        ledger)`` raising :class:`~repro.core.errors.AdmissionError` to
        refuse) — see :class:`repro.market.admission.MarketAdmissionHook`.
        Left ``None``, service creation is exactly the capacity+SLA path.
        """
        self.sim = sim
        self.master = master
        self.registry = registry or ASPRegistry()
        self.ledger = ledger or BillingLedger()
        self.admission = admission

    # -- account management ---------------------------------------------------
    def register_asp(self, name: str, secret: str, contact: str = "") -> None:
        self.registry.register(name, secret, contact)

    # -- the SODA API (§4.1) ----------------------------------------------------
    def service_creation(
        self,
        credentials: Credentials,
        service_name: str,
        repository: ImageRepository,
        image_name: str,
        requirement: ResourceRequirement,
        policy: Optional[SwitchingPolicy] = None,
        sla: Optional["SLAContract"] = None,
    ) -> Generator[Event, Any, ServiceCreationReply]:
        """``SODA_service_creation`` (simulated-process step).

        ``sla`` optionally attaches a service-level agreement; omitted,
        the service behaves exactly as before (no contract, no shedding,
        no credits).
        """
        account = self.registry.authenticate(credentials)
        if self.admission is not None:
            # Market gate (extension): priced-out or over-budget tenants
            # are refused before the Master runs capacity admission.
            self.admission.review(
                account.name, requirement, sla, self.master,
                self.sim.now, self.ledger,
            )
        yield self.sim.timeout(API_OVERHEAD_S)
        started = self.sim.now
        record = yield from self.master.create_service(
            service_name=service_name,
            asp=account.name,
            repository=repository,
            image_name=image_name,
            requirement=requirement,
            policy=policy,
            sla=sla,
        )
        self.ledger.service_started(
            service=service_name, asp=account.name, now=self.sim.now,
            m_units=record.total_units,
        )
        return ServiceCreationReply(
            service_name=service_name,
            node_endpoints=tuple(str(n.endpoint) for n in record.nodes),
            node_capacities=tuple(n.units for n in record.nodes),
            switch_endpoint=str(record.switch.home_node.endpoint),
            primed_in_s=self.sim.now - started,
        )

    def service_teardown(
        self, credentials: Credentials, service_name: str
    ) -> Generator[Event, Any, None]:
        """``SODA_service_teardown``."""
        account = self.registry.authenticate(credentials)
        self._check_ownership(account.name, service_name)
        yield self.sim.timeout(API_OVERHEAD_S)
        self.master.teardown_service(service_name)
        self.ledger.service_stopped(service=service_name, now=self.sim.now)

    def service_resizing(
        self,
        credentials: Credentials,
        service_name: str,
        repository: ImageRepository,
        n_new: int,
    ) -> Generator[Event, Any, ServiceRecord]:
        """``SODA_service_resizing`` with ``<n_new, M>``."""
        account = self.registry.authenticate(credentials)
        self._check_ownership(account.name, service_name)
        yield self.sim.timeout(API_OVERHEAD_S)
        record = yield from self.master.resize_service(
            service_name, repository, n_new
        )
        self.ledger.service_resized(
            service=service_name, now=self.sim.now, m_units=record.total_units
        )
        return record

    # -- queries ------------------------------------------------------------
    def service_status(self, credentials: Credentials, service_name: str):
        """Monitoring view of one of the caller's services (§1: staff
        monitor 'as if the service were hosted locally'; §2.1: only
        within their own services)."""
        from repro.core.monitoring import HUPMonitor

        account = self.registry.authenticate(credentials)
        self._check_ownership(account.name, service_name)
        return HUPMonitor(self.master).service_status(service_name)

    def service_info(self, credentials: Credentials, service_name: str) -> ServiceRecord:
        account = self.registry.authenticate(credentials)
        self._check_ownership(account.name, service_name)
        return self.master.get_service(service_name)

    def invoice(self, credentials: Credentials) -> float:
        """Amount owed as of now: accrual net of any SLA credits."""
        account = self.registry.authenticate(credentials)
        return self.ledger.invoice(account.name, self.sim.now)

    def sla_credit(self, credentials: Credentials) -> float:
        """Total SLA credits earned by the calling ASP so far."""
        account = self.registry.authenticate(credentials)
        return self.ledger.credit_total(asp=account.name)

    def _check_ownership(self, asp_name: str, service_name: str) -> None:
        record = self.master.get_service(service_name)  # raises if unknown
        if record.asp != asp_name:
            # Administration isolation (§2.1): an ASP has privileges
            # only within its own services.
            raise AuthenticationError(
                f"ASP {asp_name!r} does not own service {service_name!r}"
            )
