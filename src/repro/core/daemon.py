"""The SODA Daemon: per-host priming engine.

"A SODA Daemon is running in each HUP host as a host OS process.  It
reports resource availability to the SODA Master.  And it performs
*service priming*, i.e. the creation of a virtual service node, at the
command of the SODA Master.  Upon receiving the command [...] the SODA
Daemon will contact the underlying host OS and make resource
reservations [...].  After reserving a 'slice' of the HUP host, the
SODA Daemon will download the service image from the location specified
by the ASP, and bootstrap the virtual service node (first the guest OS,
then the service).  [...] During the bootstrapping, the SODA Daemon
will also assign an IP address to the virtual service node" and notify
the bridging module of the new UML-IP mapping (paper §3.3, §4.3).
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Union

from repro.core.allocation import SLOWDOWN_INFLATION
from repro.core.errors import PrimingError
from repro.core.node import VirtualServiceNode
from repro.core.requirements import MachineConfig
from repro.guestos.boot import BootTimeModel
from repro.guestos.proc import GUEST_ROOT_UID
from repro.guestos.uml import UmlState, UserModeLinux
from repro.host.bridge import BridgingModule, ProxyModule
from repro.host.machine import Host
from repro.host.reservation import ReservationError, ResourceVector
from repro.host.traffic import TrafficShaper
from repro.image.repository import ImageRepository, UnknownImage
from repro.net.http import HttpModel
from repro.net.ip import IPAddressPool, IPPoolExhausted
from repro.net.lan import LAN
from repro.obs.metrics import registry_of
from repro.sim.kernel import Event, Simulator
from repro.sim.trace import trace

__all__ = ["SODADaemon"]


class SODADaemon:
    """One per HUP host."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        lan: LAN,
        ip_pool: IPAddressPool,
        networking: Optional[Union[BridgingModule, ProxyModule]] = None,
        boot_model: Optional[BootTimeModel] = None,
    ):
        if host.nic is None:
            raise ValueError(f"host {host.name!r} is not attached to the LAN")
        self.sim = sim
        self.host = host
        self.lan = lan
        self.http = HttpModel(sim, lan)
        self.ip_pool = ip_pool
        self.networking = networking or BridgingModule(host.name)
        self.shaper = TrafficShaper(host.name)
        self.boot_model = boot_model or BootTimeModel()
        self.nodes_primed = 0
        self.download_seconds_total = 0.0

    # -- reporting (SODA Master pull, §3.2) ---------------------------------
    def report_availability(self) -> ResourceVector:
        return self.host.reservations.available

    # -- observability --------------------------------------------------------
    def _obs_stage(self, stage: str) -> None:
        """Count one priming stage reached (observes, never perturbs)."""
        registry = registry_of(self.sim)
        if registry is not None:
            registry.counter(
                "soda_daemon_priming_total",
                "Service-priming stages reached, by host.",
                ("host", "stage"),
            ).inc(host=self.host.name, stage=stage)

    # -- priming ------------------------------------------------------------
    def prime(
        self,
        service_name: str,
        repository: ImageRepository,
        image_name: str,
        units: int,
        unit_vector: ResourceVector,
        machine: MachineConfig,
        node_index: int = 0,
        component: str = "",
    ) -> Generator[Event, Any, VirtualServiceNode]:
        """Create one virtual service node (simulated-process step).

        Steps: reserve the slice -> download the image -> tailor the
        rootfs -> boot the UML -> assign an IP and update the bridging
        module -> install the traffic-shaper share -> start the
        application entry point.  Any failure releases what was taken
        and raises :class:`PrimingError`.
        """
        node_name = f"{service_name}@{self.host.name}#{node_index}"
        node_vector = unit_vector.scaled(float(units))
        try:
            reservation = self.host.reservations.reserve(
                node_vector, label=f"node:{node_name}"
            )
        except ReservationError as exc:
            trace(self.sim, "priming", "reservation failed", node=node_name)
            self._obs_stage("reservation_failed")
            raise PrimingError(f"{node_name}: reservation failed: {exc}") from exc
        trace(
            self.sim, "priming", "slice reserved",
            node=node_name, host=self.host.name, units=units,
        )
        self._obs_stage("slice_reserved")

        ip = None
        vm = None
        try:
            # Active service image downloading (§4.3).
            try:
                image = repository.get(image_name)
            except UnknownImage as exc:
                raise PrimingError(f"{node_name}: unknown image {image_name!r}") from exc
            download = yield from repository.download(
                self.http, self.host.nic, image_name
            )
            self.download_seconds_total += download.elapsed
            trace(
                self.sim, "priming", "image downloaded",
                node=node_name, image=image_name,
                mb=round(image.size_mb, 1), seconds=round(download.elapsed, 3),
            )
            self._obs_stage("image_downloaded")

            # Customization + automatic bootstrapping (§4.3).  For a
            # partitionable service, each node boots only its own
            # component's rootfs (§3.5 extension).
            if component:
                tailored = image.component_rootfs(component)
                entrypoint = next(
                    c.entrypoint for c in image.components if c.name == component
                )
            else:
                tailored = image.tailored_rootfs()
                entrypoint = image.entrypoint
            vm = UserModeLinux(
                self.sim,
                name=node_name,
                host=self.host,
                rootfs=tailored,
                guest_mem_mb=machine.mem_mb * units,
            )
            trace(
                self.sim, "priming", "rootfs tailored",
                node=node_name, services=len(tailored.services),
                mb=round(tailored.size_mb, 1),
            )
            self._obs_stage("rootfs_tailored")
            try:
                yield from vm.boot(self.boot_model)
            except Exception as exc:
                trace(self.sim, "priming", "boot failed", node=node_name)
                self._obs_stage("boot_failed")
                raise PrimingError(f"{node_name}: boot failed: {exc}") from exc
            assert vm.boot_plan is not None
            trace(
                self.sim, "priming", "guest booted",
                node=node_name, seconds=round(vm.boot_plan.total_s, 2),
                ramdisk=vm.boot_plan.ramdisk,
            )
            self._obs_stage("guest_booted")

            # Dynamic configuration for internetworking (§4.3).
            try:
                ip = self.ip_pool.allocate()
            except IPPoolExhausted as exc:
                raise PrimingError(f"{node_name}: {exc}") from exc
            vm.ip = ip
            proxy = None
            if isinstance(self.networking, BridgingModule):
                endpoint = self.networking.register(ip, vm)
                endpoint = type(endpoint)(ip=ip, port=image.port)
            else:
                endpoint = self.networking.register(vm)
                proxy = self.networking

            # Outbound bandwidth share (§4.2): the reserved (inflated)
            # bandwidth of this slice, keyed by the node's source IP.
            self.shaper.install(ip, node_vector.bw_mbps)

            # Start the application service inside the guest.
            vm.processes.spawn(command=entrypoint, uid=GUEST_ROOT_UID, user="root")

            node = VirtualServiceNode(
                sim=self.sim,
                name=node_name,
                vm=vm,
                lan=self.lan,
                endpoint=endpoint,
                units=units,
                worker_mhz=machine.cpu_mhz * SLOWDOWN_INFLATION,
                reservation=reservation,
                shaper=self.shaper,
                proxy=proxy,
                vulnerable=(image.app_kind == "honeypot"),
                entrypoint=entrypoint,
                component=component,
            )
            self.nodes_primed += 1
            trace(
                self.sim, "priming", "node primed",
                node=node_name, ip=ip, entrypoint=entrypoint,
            )
            self._obs_stage("node_primed")
            return node
        except PrimingError:
            # Roll back whatever was acquired.
            if ip is not None:
                self.ip_pool.release(ip)
                if isinstance(self.networking, BridgingModule):
                    try:
                        self.networking.unregister(ip)
                    except KeyError:
                        pass
            if vm is not None and vm.state in (UmlState.RUNNING, UmlState.CRASHED):
                vm.shutdown()
            reservation.release()
            raise

    # -- resizing -----------------------------------------------------------
    def resize_node(
        self, node: VirtualServiceNode, units: int, unit_vector: ResourceVector
    ) -> None:
        """Adjust a node's slice in place (§3.4's first resizing option)."""
        if node.host is not self.host:
            raise PrimingError(f"node {node.name} is not on host {self.host.name!r}")
        new_vector = unit_vector.scaled(float(units))
        # No simulated time passes inside this call, so releasing the old
        # slice and reserving the new one is atomic with respect to other
        # priming activity; on failure the old slice is restored.
        old = node.reservation
        old_vector = old.vector
        old.release()
        try:
            replacement = self.host.reservations.reserve(
                new_vector, label=f"node:{node.name}"
            )
        except ReservationError as exc:
            restored = self.host.reservations.reserve(
                old_vector, label=f"node:{node.name}"
            )
            node.reservation = restored
            raise PrimingError(
                f"host {self.host.name!r} cannot resize node {node.name} "
                f"to {units} units: {exc}"
            ) from exc
        # Hand the node a still-live placeholder so resize() releases the
        # replacement bookkeeping consistently.
        node.reservation = replacement
        node.units = units
        node.workers.resize(units)
        self.shaper.install(node.source_ip, new_vector.bw_mbps)

    # -- teardown --------------------------------------------------------------
    def teardown_node(self, node: VirtualServiceNode) -> None:
        """Tear down a node this daemon primed."""
        if node.host is not self.host:
            raise PrimingError(f"node {node.name} is not on host {self.host.name!r}")
        node.teardown()
        if isinstance(self.networking, BridgingModule):
            try:
                self.networking.unregister(node.source_ip)
            except KeyError:
                pass
        else:
            try:
                self.networking.unregister(node.endpoint.port)
            except KeyError:
                pass
        try:
            self.shaper.remove(node.source_ip)
        except KeyError:
            pass
        self.ip_pool.release(node.source_ip)
