"""Service records and lifecycle.

The SODA Master tracks every hosted service: its ASP, its requirement,
the virtual service nodes it resolved to, its switch, and its state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.core.errors import SODAError
from repro.core.node import VirtualServiceNode
from repro.core.requirements import ResourceRequirement
from repro.core.switch import ServiceSwitch

if TYPE_CHECKING:  # avoid a hard core -> sla dependency at import time
    from repro.sla.contract import SLAContract

__all__ = ["ServiceState", "ServiceRecord"]


class ServiceState(enum.Enum):
    REQUESTED = "requested"
    PRIMING = "priming"
    RUNNING = "running"
    RESIZING = "resizing"
    TORN_DOWN = "torn-down"


_TRANSITIONS = {
    ServiceState.REQUESTED: {ServiceState.PRIMING, ServiceState.TORN_DOWN},
    ServiceState.PRIMING: {ServiceState.RUNNING, ServiceState.TORN_DOWN},
    ServiceState.RUNNING: {ServiceState.RESIZING, ServiceState.TORN_DOWN},
    ServiceState.RESIZING: {ServiceState.RUNNING, ServiceState.TORN_DOWN},
    ServiceState.TORN_DOWN: set(),
}


@dataclass
class ServiceRecord:
    """One hosted application service."""

    name: str
    asp: str
    image_name: str
    requirement: ResourceRequirement
    state: ServiceState = ServiceState.REQUESTED
    nodes: List[VirtualServiceNode] = field(default_factory=list)
    switch: Optional[ServiceSwitch] = None
    created_at: Optional[float] = None
    primed_at: Optional[float] = None
    sla: Optional["SLAContract"] = None

    def transition(self, new_state: ServiceState) -> None:
        if new_state not in _TRANSITIONS[self.state]:
            raise SODAError(
                f"service {self.name!r}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    @property
    def is_running(self) -> bool:
        return self.state is ServiceState.RUNNING

    @property
    def total_units(self) -> int:
        return sum(node.units for node in self.nodes)

    def node_endpoints(self) -> List[str]:
        return [str(node.endpoint) for node in self.nodes]
