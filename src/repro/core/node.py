"""Virtual service nodes and client requests.

A :class:`VirtualServiceNode` is the unit the SODA Master allocates and
the service switch dispatches to: one UML guest holding a reserved
slice of a HUP host, with a capacity of one or more machine instances
``M`` (paper §3.2).  Serving a request costs guest CPU time (through
the syscall interposition model) and LAN bandwidth (the response body
flows from the node's host NIC to the client, subject to the host
traffic shaper's per-IP cap).

Capacity semantics: a node of capacity ``k`` runs ``k`` server workers;
each worker delivers the compute rate of one *inflated* machine
instance (``M.cpu × 1.5``), so that after the UML application-level
slow-down (~1.4x, Figure 6) a worker nets out at roughly native-M
speed — exactly the intent of the paper's inflation factor
(footnote 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.core.errors import SODAError
from repro.obs.metrics import registry_of
from repro.obs.tracing import tracer_of
from repro.guestos.syscall import SyscallMix
from repro.guestos.uml import UML_NETWORK_EFFICIENCY, UmlState, UserModeLinux
from repro.host.bridge import Endpoint, ProxyModule
from repro.host.reservation import Reservation
from repro.host.traffic import TrafficShaper
from repro.net.http import TCP_EFFICIENCY
from repro.net.lan import LAN
from repro.sim.kernel import Event, Simulator
from repro.sim.monitor import Monitor

__all__ = ["Request", "NodeResponse", "ServiceUnavailableError", "VirtualServiceNode"]


class ServiceUnavailableError(SODAError):
    """The target node is not running (crashed or torn down)."""


class ExploitSucceeded(SODAError):
    """An exploit request compromised the node (attacker-side outcome)."""

    def __init__(self, node: "VirtualServiceNode"):
        super().__init__(f"exploit succeeded against {node.name}")
        self.node = node


@dataclass(frozen=True)
class Request:
    """One client request.

    ``component`` targets one component of a partitionable service
    (§3.5 extension); empty means any replica can serve it.

    ``trace`` carries the request's root :class:`~repro.obs.tracing.Span`
    (or ``None`` when tracing is off) across the serving path so every
    hop parents its segment spans correctly; it is excluded from
    equality, being observability context rather than request content.
    """

    client: Any  # NetworkInterface of the requesting client
    response_mb: float
    mix: SyscallMix
    is_exploit: bool = False
    label: str = ""
    component: str = ""
    trace: Any = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.response_mb < 0:
            raise ValueError(f"negative response size: {self.response_mb}")


@dataclass(frozen=True)
class NodeResponse:
    """Outcome of one served request."""

    node_name: str
    started_at: float
    finished_at: float
    service_time_s: float
    response_mb: float

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at


class VirtualServiceNode:
    """One virtual service node: UML guest + reserved slice + workers."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        vm: UserModeLinux,
        lan: LAN,
        endpoint: Endpoint,
        units: int,
        worker_mhz: float,
        reservation: Optional[Reservation] = None,
        shaper: Optional[TrafficShaper] = None,
        proxy: Optional["ProxyModule"] = None,
        vulnerable: bool = False,
        native: bool = False,
        entrypoint: str = "",
        component: str = "",
    ):
        if units < 1:
            raise ValueError(f"units must be >= 1, got {units}")
        if worker_mhz <= 0:
            raise ValueError(f"worker_mhz must be positive, got {worker_mhz}")
        from repro.sim.resources import Resource  # local import avoids cycle at module load

        self.sim = sim
        self.name = name
        self.vm = vm
        self.lan = lan
        self.endpoint = endpoint
        self.units = units
        self.worker_mhz = worker_mhz
        self.reservation = reservation
        self.shaper = shaper
        # Proxy-mode networking (footnote 3): every request's payload is
        # relayed through a host process, costing host CPU per MB.
        self.proxy = proxy
        self.vulnerable = vulnerable
        # ``native`` models the Figure 6 baseline: the service runs
        # directly on the host OS, so no syscall interposition penalty.
        self.native = native
        # The application command started in the guest; recovery reboots
        # re-spawn it.
        self.entrypoint = entrypoint
        # Component of a partitionable service this node hosts ("" for
        # fully replicated services).
        self.component = component
        self.workers = Resource(sim, capacity=units)
        self.inflight = 0
        self.served = 0
        self.failed = 0
        self.response_times = Monitor(f"{name}:service")
        self.torn_down = False
        # Observability: metric children bound lazily against the
        # registry attached to the simulator (rebound if it changes).
        self._obs_cache: Optional[tuple] = None

    # -- observability (observes, never perturbs) -----------------------------
    def _obs_metrics(self) -> Optional[tuple]:
        """(inflight gauge child, served child, failed child) or None."""
        registry = registry_of(self.sim)
        if registry is None:
            return None
        if self._obs_cache is None or self._obs_cache[0] is not registry:
            self._obs_cache = (
                registry,
                registry.gauge(
                    "soda_node_inflight",
                    "Requests currently inside each virtual service node.",
                    ("node",),
                ).labels(node=self.name),
                registry.counter(
                    "soda_node_served_total",
                    "Requests served to completion by each node.",
                    ("node",),
                ).labels(node=self.name),
                registry.counter(
                    "soda_node_failed_total",
                    "Requests failed at each node (down or died while queued).",
                    ("node",),
                ).labels(node=self.name),
            )
        return self._obs_cache

    @property
    def host(self):
        return self.vm.host

    @property
    def ip(self) -> str:
        """Client-facing IP (the host's IP in proxy mode)."""
        return self.endpoint.ip

    @property
    def source_ip(self) -> str:
        """The guest's own IP — the traffic shaper's key (§4.2)."""
        return self.vm.ip if self.vm.ip is not None else self.endpoint.ip

    @property
    def is_available(self) -> bool:
        """Dispatchable iff not torn down and the guest is RUNNING.

        This is the single state gate the switch and the serve path
        consult: CREATED / BOOTING / CRASHED / STOPPED guests never
        accept requests (pinned by ``tests/core/test_node_states.py``).
        """
        return (not self.torn_down) and self.vm.state is UmlState.RUNNING

    # -- serving ---------------------------------------------------------
    def serve(self, request: Request) -> Generator[Event, Any, NodeResponse]:
        """Serve one request; response body is delivered to the client.

        Raises :class:`ServiceUnavailableError` if the node is down, and
        :class:`ExploitSucceeded` if an exploit request lands on a
        vulnerable service (the node is compromised but NOT crashed —
        the attacker decides what to do with its shell).
        """
        obs = self._obs_metrics()
        if not self.is_available:
            self.failed += 1
            if obs is not None:
                obs[3].inc()
            raise ServiceUnavailableError(f"node {self.name} is not running")
        started = self.sim.now
        # Observability: the node contributes the queue_wait, cpu_service
        # and tx segments of the request's trace, each starting exactly
        # where the previous one ended so the segments tile the request.
        tracer = tracer_of(self.sim)
        root = request.trace if tracer is not None else None
        queue_span = cpu_span = tx_span = None
        if root is not None:
            queue_span = tracer.start_span(
                "queue_wait", lane=self.name, start=started, parent=root
            )
        self.inflight += 1
        if obs is not None:
            obs[1].inc()
        slot = self.workers.request()
        try:
            yield slot
            if not self.is_available:
                # Crashed while queued.
                self.failed += 1
                if obs is not None:
                    obs[3].inc()
                if queue_span is not None:
                    queue_span.finish(self.sim.now, "failed")
                raise ServiceUnavailableError(f"node {self.name} died while queued")
            if request.is_exploit and self.vulnerable:
                # ghttpd buffer overflow: bind a shell as *guest* root.
                if queue_span is not None:
                    queue_span.finish(self.sim.now, "failed")
                self.vm.exploit()
                self.vm.processes.spawn(command="/bin/sh (bound shell)", uid=0, user="root")
                raise ExploitSucceeded(self)
            if queue_span is not None:
                queue_span.finish(self.sim.now)
                cpu_span = tracer.start_span(
                    "cpu_service", lane=self.name, start=self.sim.now, parent=root
                )
            service_time = self.vm.syscalls.mix_time_s(
                request.mix, self.worker_mhz, in_uml=not self.native
            )
            if self.proxy is not None:
                service_time += self.proxy.relay_cost(
                    request.response_mb, self.host.cpu_mhz
                )
            yield self.sim.timeout(service_time)
            if cpu_span is not None:
                cpu_span.finish(self.sim.now)
                tx_span = tracer.start_span(
                    "tx", lane=self.name, start=self.sim.now, parent=root
                )
            # Response body: node's host NIC -> client, shaped per the
            # guest's source IP.  A UML guest additionally cannot drive
            # the wire at full rate (§3.2's network-transmission
            # slow-down) — the Figure 6 effect.
            caps = []
            if self.shaper is not None:
                shaped = self.shaper.cap_for(self.source_ip)
                if shaped is not None:
                    caps.append(shaped)
            if not self.native:
                caps.append(self.host.nic.rate_mbps * UML_NETWORK_EFFICIENCY)
            cap = min(caps) if caps else None
            wire_mb = request.response_mb / TCP_EFFICIENCY
            if wire_mb > 0:
                flow = self.lan.transfer(
                    self.host.nic, request.client, wire_mb, rate_cap_mbps=cap,
                    label=f"{self.name}:resp",
                )
                yield flow.done
            else:
                # Empty body: header-only response, one propagation delay.
                yield self.sim.timeout(self.lan.latency_s)
            if tx_span is not None:
                tx_span.finish(self.sim.now)
            self.served += 1
            if obs is not None:
                obs[2].inc()
            response = NodeResponse(
                node_name=self.name,
                started_at=started,
                finished_at=self.sim.now,
                service_time_s=service_time,
                response_mb=request.response_mb,
            )
            self.response_times.record(self.sim.now, response.elapsed)
            return response
        finally:
            self.inflight -= 1
            if obs is not None:
                obs[1].dec()
            self.workers.release(slot)

    # -- lifecycle ------------------------------------------------------------
    def resize(self, units: int, reservation: Reservation) -> None:
        """Change capacity in place (SODA_service_resizing path).

        The caller (SODA Daemon) supplies the replacement reservation;
        the old one is released here.
        """
        if units < 1:
            raise ValueError(f"units must be >= 1, got {units}")
        old = self.reservation
        self.reservation = reservation
        self.units = units
        self.workers.resize(units)
        old.release()

    def teardown(self) -> None:
        """Stop the VM and release the slice."""
        if self.torn_down:
            raise SODAError(f"node {self.name} already torn down")
        self.torn_down = True
        if self.vm.state in (UmlState.RUNNING, UmlState.CRASHED):
            self.vm.shutdown()
        if self.reservation is not None:
            self.reservation.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VirtualServiceNode({self.name!r}, {self.endpoint}, units={self.units}, "
            f"host={self.host.name!r})"
        )
