"""The service configuration file (paper Table 3).

"Inside the service switch, a *service configuration file* is created
and maintained by the SODA Master.  The file records (1) the IP address
and (2) the relative capacity of each virtual service node of S"
(§3.4).  Table 3 shows the format:

    | Directive | IP address   | Port number | Capacity |
    | BackEnd   | 128.10.9.125 | 8080        | 2        |
    | BackEnd   | 128.10.9.126 | 8080        | 1        |

The file is both a data structure (the switch reads weights from it)
and a renderable/parsable text artefact (the Master updates it on
resizing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["BackEndDirective", "ServiceConfigFile"]


@dataclass(frozen=True)
class BackEndDirective:
    """One ``BackEnd`` line: a virtual service node behind the switch."""

    ip: str
    port: int
    capacity: int

    def __post_init__(self) -> None:
        if not 1 <= self.port <= 65535:
            raise ValueError(f"port {self.port} out of range")
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")

    def render(self) -> str:
        return f"BackEnd {self.ip} {self.port} {self.capacity}"


class ServiceConfigFile:
    """The switch's view of its back-end nodes; maintained by the Master."""

    def __init__(self, service_name: str):
        self.service_name = service_name
        self._directives: List[BackEndDirective] = []

    # -- mutation (SODA Master only) -----------------------------------------
    def add_backend(self, ip: str, port: int, capacity: int) -> BackEndDirective:
        if any(d.ip == ip and d.port == port for d in self._directives):
            raise ValueError(f"backend {ip}:{port} already present")
        directive = BackEndDirective(ip=ip, port=port, capacity=capacity)
        self._directives.append(directive)
        return directive

    def remove_backend(self, ip: str, port: int) -> None:
        for directive in self._directives:
            if directive.ip == ip and directive.port == port:
                self._directives.remove(directive)
                return
        raise KeyError(f"no backend {ip}:{port} in config for {self.service_name!r}")

    def set_capacity(self, ip: str, port: int, capacity: int) -> None:
        """Resize one node's relative capacity in place (§3.4)."""
        for i, directive in enumerate(self._directives):
            if directive.ip == ip and directive.port == port:
                self._directives[i] = BackEndDirective(ip=ip, port=port, capacity=capacity)
                return
        raise KeyError(f"no backend {ip}:{port} in config for {self.service_name!r}")

    # -- queries ------------------------------------------------------------
    @property
    def backends(self) -> List[BackEndDirective]:
        return list(self._directives)

    @property
    def total_capacity(self) -> int:
        """Sum of relative capacities = n machine instances provided."""
        return sum(d.capacity for d in self._directives)

    def __len__(self) -> int:
        return len(self._directives)

    # -- text form ------------------------------------------------------------
    def render(self) -> str:
        """The Table 3 artefact."""
        header = f"# service configuration file for {self.service_name}"
        lines = [header] + [d.render() for d in self._directives]
        return "\n".join(lines)

    @classmethod
    def parse(cls, text: str) -> "ServiceConfigFile":
        """Re-read a rendered config file."""
        config = cls(service_name="")
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "service configuration file for" in line:
                    config.service_name = line.rsplit(" ", 1)[-1]
                continue
            parts = line.split()
            if len(parts) != 4 or parts[0] != "BackEnd":
                raise ValueError(f"line {lineno}: malformed directive {raw!r}")
            _, ip, port, capacity = parts
            config.add_backend(ip, int(port), int(capacity))
        return config
