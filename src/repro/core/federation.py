"""HUP federation (paper §3.5 future work, implemented as an extension).

"One way to construct a wide-area HUP is to *federate* multiple local
HUPs, each having its own SODA Agent and Master."  The federation layer
here routes a service creation request across member HUPs (members keep
full autonomy: each has its own Agent, Master, accounts and billing),
and remembers the placement so teardown/resizing reach the right HUP.

Member selection is pluggable: a *selection strategy* orders the
members to try for each request.  The default is first-fit in
registration order (the original behaviour); the market layer provides
a cheapest-spot-price strategy
(:func:`repro.market.placement.cheapest_spot_price`) so price-aware
federations route tenants to the member currently charging least.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from repro.core.agent import ServiceCreationReply, SODAAgent
from repro.core.auth import Credentials
from repro.core.errors import AdmissionError, ServiceNotFoundError
from repro.core.policies import SwitchingPolicy
from repro.core.requirements import ResourceRequirement
from repro.image.repository import ImageRepository
from repro.sim.kernel import Event

__all__ = ["FederatedHUP", "GeoBroker", "first_fit", "nearest_first"]

#: A selection strategy: (requirement, members) -> member names in try order.
SelectionStrategy = Callable[
    [ResourceRequirement, Dict[str, SODAAgent]], Sequence[str]
]


def first_fit(
    requirement: ResourceRequirement, members: Dict[str, SODAAgent]
) -> List[str]:
    """The default strategy: members in registration order."""
    return list(members)


def nearest_first(
    origin: str, latency_s: Dict[tuple, float]
) -> SelectionStrategy:
    """A geo-aware strategy: members ordered by WAN latency from ``origin``.

    ``latency_s`` maps unordered cluster pairs (both ``(a, b)`` and
    ``(b, a)`` are accepted) to one-way WAN latency; ``origin`` itself
    costs zero.  Unknown pairs sort last.  Ties break by member name,
    so the ordering is deterministic.
    """

    def distance(member: str) -> tuple:
        if member == origin:
            return (0.0, member)
        lat = latency_s.get((origin, member), latency_s.get((member, origin)))
        return (lat if lat is not None else float("inf"), member)

    def strategy(
        requirement: ResourceRequirement, members: Dict[str, SODAAgent]
    ) -> List[str]:
        return sorted(members, key=distance)

    return strategy


class GeoBroker:
    """The global tier of a two-level federation: geo-aware placement.

    Per-cluster masters stay autonomous; the broker only decides *which*
    cluster hosts a new service, from (a) the WAN latency between the
    requesting cluster and each candidate and (b) the candidates'
    advertised capacity and current placement load.  The broker is pure
    decision logic — it holds **no live references to remote clusters**.
    In a sharded run its inter-cluster calls (placement requests in,
    placement broadcasts and image pushes out) travel the epoch-barrier
    message plane of :mod:`repro.sim.parallel` instead of direct object
    calls, which is what lets the federation simulate in parallel.

    Determinism: decisions depend only on the latency map, the capacity
    advertisements, and the order of :meth:`place` calls (ties break by
    cluster name), so every shard layout replays them identically.
    """

    def __init__(
        self,
        home: str,
        latency_s: Dict[tuple, float],
        capacity: Dict[str, int],
    ):
        if home not in capacity:
            raise ValueError(f"broker home {home!r} not among clusters {sorted(capacity)}")
        if not capacity or any(n < 1 for n in capacity.values()):
            raise ValueError("every cluster needs a positive advertised capacity")
        self.home = home
        self._latency = dict(latency_s)
        self.capacity = dict(capacity)
        self.placements: Dict[str, str] = {}  # service -> hosting cluster
        self.load: Dict[str, int] = {name: 0 for name in capacity}
        self._placements_metric = None

    def instrument(self, registry) -> "GeoBroker":
        """Count placement decisions in ``registry``, by chosen cluster.

        Observe-only: the counter never feeds back into :meth:`place`,
        so instrumented and bare brokers decide identically.
        """
        self._placements_metric = registry.counter(
            "soda_broker_placements_total",
            "Broker placement decisions, by chosen hosting cluster.",
            ("cluster",),
        )
        return self

    def latency(self, a: str, b: str) -> float:
        """One-way WAN latency between two clusters (0 for a == b)."""
        if a == b:
            return 0.0
        lat = self._latency.get((a, b), self._latency.get((b, a)))
        if lat is None:
            raise KeyError(f"no WAN latency declared between {a!r} and {b!r}")
        return lat

    def seed(self, service: str, cluster: str) -> None:
        """Record a pre-existing placement (initial topology state)."""
        if service in self.placements:
            raise ValueError(f"service {service!r} already placed")
        if cluster not in self.capacity:
            raise ValueError(f"unknown cluster {cluster!r}")
        self.placements[service] = cluster
        self.load[cluster] += 1

    def place(self, service: str, origin: str) -> str:
        """Choose the hosting cluster for ``service`` requested by ``origin``.

        Geo-aware first (lowest WAN latency from the requester), then
        least-loaded relative to advertised capacity, then name — a
        total order, so the choice is deterministic.
        """
        if service in self.placements:
            raise ValueError(f"service {service!r} already placed")
        if origin not in self.capacity:
            raise ValueError(f"unknown origin cluster {origin!r}")
        chosen = min(
            self.capacity,
            key=lambda c: (
                self.latency(origin, c),
                self.load[c] / self.capacity[c],
                c,
            ),
        )
        self.placements[service] = chosen
        self.load[chosen] += 1
        if self._placements_metric is not None:
            self._placements_metric.inc(cluster=chosen)
        return chosen


class FederatedHUP:
    """Routes SODA API calls across multiple autonomous local HUPs."""

    def __init__(
        self,
        members: Dict[str, SODAAgent],
        selection: Optional[SelectionStrategy] = None,
    ):
        if not members:
            raise ValueError("a federation needs at least one member HUP")
        self.members = dict(members)
        self.selection = selection or first_fit
        self._placements: Dict[str, str] = {}  # service -> member name

    def _candidate_order(self, requirement: ResourceRequirement) -> List[str]:
        """The members to try, in strategy order (validated)."""
        order = list(self.selection(requirement, dict(self.members)))
        unknown = [name for name in order if name not in self.members]
        if unknown:
            raise ValueError(
                f"selection strategy returned non-member HUP(s): {unknown}"
            )
        return order

    @property
    def member_names(self) -> List[str]:
        return list(self.members)

    def locate(self, service_name: str) -> str:
        """Which member hosts ``service_name``."""
        try:
            return self._placements[service_name]
        except KeyError:
            raise ServiceNotFoundError(
                f"service {service_name!r} not hosted in this federation"
            ) from None

    def service_creation(
        self,
        credentials: Credentials,
        service_name: str,
        repository: ImageRepository,
        image_name: str,
        requirement: ResourceRequirement,
        policy: Optional[SwitchingPolicy] = None,
    ) -> Generator[Event, Any, ServiceCreationReply]:
        """Create on the first member (in strategy order) that admits.

        Each member authenticates independently (autonomous management):
        the ASP must be registered with the member that ends up hosting.
        """
        if service_name in self._placements:
            raise AdmissionError(f"service {service_name!r} already placed")
        last_error: Optional[Exception] = None
        for member_name in self._candidate_order(requirement):
            agent = self.members[member_name]
            if not agent.master.can_admit(requirement):
                continue
            try:
                reply = yield from agent.service_creation(
                    credentials=credentials,
                    service_name=service_name,
                    repository=repository,
                    image_name=image_name,
                    requirement=requirement,
                    policy=policy,
                )
            except AdmissionError as exc:
                last_error = exc
                continue
            self._placements[service_name] = member_name
            return reply
        raise AdmissionError(
            f"no member HUP can admit {requirement} for {service_name!r}"
            + (f" (last error: {last_error})" if last_error else "")
        )

    def service_teardown(
        self, credentials: Credentials, service_name: str
    ) -> Generator[Event, Any, None]:
        member = self.locate(service_name)
        yield from self.members[member].service_teardown(credentials, service_name)
        del self._placements[service_name]

    def service_resizing(
        self,
        credentials: Credentials,
        service_name: str,
        repository: ImageRepository,
        n_new: int,
    ) -> Generator[Event, Any, Any]:
        member = self.locate(service_name)
        record = yield from self.members[member].service_resizing(
            credentials, service_name, repository, n_new
        )
        return record

    def total_services(self) -> int:
        return len(self._placements)
