"""SODA error hierarchy.

Every failure surfaced through the SODA API derives from
:class:`SODAError`, so ASP-side callers can catch one type.
"""

from __future__ import annotations

__all__ = [
    "SODAError",
    "AuthenticationError",
    "AdmissionError",
    "ServiceNotFoundError",
    "InvalidRequestError",
    "PrimingError",
    "RequestSheddedError",
    "RequestTimeoutError",
]


class SODAError(RuntimeError):
    """Base of all SODA-level failures."""


class AuthenticationError(SODAError):
    """The SODA Agent rejected the ASP's credentials (§3.1)."""


class AdmissionError(SODAError):
    """The SODA Master could not satisfy the resource requirement —
    "If the resource requirement cannot be satisfied, a request failure
    will be reported" (§3.2)."""


class ServiceNotFoundError(SODAError):
    """Teardown/resize/query of a service this HUP does not host."""


class InvalidRequestError(SODAError):
    """Malformed API call (bad requirement, unknown image, ...)."""


class PrimingError(SODAError):
    """A SODA Daemon failed during service priming (§3.3)."""


class RequestSheddedError(SODAError):
    """The service switch dropped the request under load to protect
    higher service classes (SLA class-priority shedding)."""


class RequestTimeoutError(SODAError):
    """The request exhausted its per-request timeout budget at the
    service switch (including any failover retries)."""
