"""The per-service request switch.

"After the SODA Daemons have finished service priming, the SODA Master
will create a service switch for S [...] Co-located in one of the
virtual service nodes of S, the service switch will accept and direct
each client request to one of the virtual service nodes" (paper §3.4).

The serving path modelled per request:

1. the client's request message travels over the LAN to the switch's
   home node;
2. the switch spends a small slice of its home host's CPU classifying
   the request and consulting the policy (this serialises through a
   queue — a flooded switch backs up, the §3.5 DDoS caveat);
3. the request is forwarded to the chosen back-end node (loopback when
   co-located);
4. the back-end serves it; the response body returns directly from the
   back-end's host to the client (direct-server-return, so the switch
   never carries response bandwidth).

Crashed nodes are skipped at dispatch time; if no healthy node remains
the request fails with :class:`ServiceUnavailableError`.

SLA hooks (extension): a shedder installed by the SODA Master drops
requests when backlog saturates (class-priority load shedding, bronze
first — see :mod:`repro.sla.enforcement`), and outcome listeners (e.g.
an :class:`~repro.sla.monitor.SLOMonitor`) receive every per-request
outcome — ``(time, latency, "ok" | "failed" | "shed")`` — as it happens.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.core.config import ServiceConfigFile
from repro.core.errors import RequestSheddedError, SODAError
from repro.core.node import (
    NodeResponse,
    Request,
    ServiceUnavailableError,
    VirtualServiceNode,
)
from repro.obs.metrics import registry_of
from repro.obs.tracing import tracer_of
from repro.core.policies import SwitchingPolicy, WeightedRoundRobinPolicy
from repro.net.http import REQUEST_SIZE_MB
from repro.net.lan import LAN
from repro.sim.kernel import Event, Simulator
from repro.sim.monitor import Monitor
from repro.sim.resources import Resource

__all__ = ["ServiceSwitch"]

# CPU work to accept, parse and dispatch one request at the switch,
# megacycles (a user-space L7 dispatcher).
SWITCH_CPU_MCYCLES = 0.6


class ServiceSwitch:
    """Directs client requests of one service to its nodes."""

    def __init__(
        self,
        sim: Simulator,
        service_name: str,
        lan: LAN,
        nodes: List[VirtualServiceNode],
        config: ServiceConfigFile,
        policy: Optional[SwitchingPolicy] = None,
        home_node: Optional[VirtualServiceNode] = None,
    ):
        if not nodes:
            raise ValueError(f"switch for {service_name!r} needs at least one node")
        self.sim = sim
        self.service_name = service_name
        self.lan = lan
        self.nodes = list(nodes)
        self.config = config
        self.policy = policy or WeightedRoundRobinPolicy()
        self.home_node = home_node or nodes[0]
        if self.home_node not in self.nodes:
            raise ValueError("home node must be one of the service's nodes")
        # Switch processing serialises: one dispatcher thread.
        self._dispatcher = Resource(sim, capacity=1)
        self.dispatched = 0
        self.rejected = 0
        self.shedded = 0
        self.response_times = Monitor(f"switch:{service_name}")
        self.per_node_count: Dict[str, int] = {n.name: 0 for n in nodes}
        # SLA hooks: a shedder decides drops under load; outcome
        # listeners tap the per-request outcome stream.
        self.shedder: Optional[Any] = None
        self._outcome_listeners: List[Callable[[float, Optional[float], str], None]] = []
        # Observability: metric children bound against whichever registry
        # is attached to the simulator (rebound if it changes).
        self._obs_cache: Optional[tuple] = None

    # -- observability (observes, never perturbs) ----------------------------
    def _obs_metrics(self) -> Optional[tuple]:
        """(outcome counter, latency histogram, per-node counter) or None."""
        registry = registry_of(self.sim)
        if registry is None:
            return None
        if self._obs_cache is None or self._obs_cache[0] is not registry:
            self._obs_cache = (
                registry,
                registry.counter(
                    "soda_switch_requests_total",
                    "Requests seen by a service switch, by outcome.",
                    ("service", "outcome"),
                ),
                registry.histogram(
                    "soda_switch_response_seconds",
                    "Client-visible response time through the switch.",
                    ("service",),
                ),
                registry.counter(
                    "soda_switch_dispatch_total",
                    "Requests dispatched to each back-end node.",
                    ("service", "node"),
                ),
            )
        return self._obs_cache

    def _obs_outcome(self, outcome: str, latency_s: Optional[float] = None) -> None:
        cache = self._obs_metrics()
        if cache is None:
            return
        _registry, requests, latency, _dispatch = cache
        requests.inc(service=self.service_name, outcome=outcome)
        if latency_s is not None:
            latency.observe(latency_s, service=self.service_name)

    # -- SLA hooks (extension) ----------------------------------------------
    def add_outcome_listener(
        self, listener: Callable[[float, Optional[float], str], None]
    ) -> None:
        """Subscribe ``listener(time, latency_s, outcome)`` to every request."""
        self._outcome_listeners.append(listener)

    def _notify(self, latency_s: Optional[float], outcome: str) -> None:
        for listener in self._outcome_listeners:
            listener(self.sim.now, latency_s, outcome)

    # -- policy management (the ASP-facing hook, §3.4) -----------------------
    def set_policy(self, policy: SwitchingPolicy) -> None:
        """Replace the request switching policy with an ASP-specific one."""
        if not isinstance(policy, SwitchingPolicy):
            raise TypeError("policy must be a SwitchingPolicy")
        self.policy = policy

    # -- node management (SODA Master's resizing hooks) ------------------------
    def add_node(self, node: VirtualServiceNode) -> None:
        if node in self.nodes:
            raise ValueError(f"node {node.name} already behind the switch")
        self.nodes.append(node)
        self.per_node_count.setdefault(node.name, 0)

    def remove_node(self, node: VirtualServiceNode) -> None:
        if node not in self.nodes:
            raise ValueError(f"node {node.name} not behind the switch")
        if node is self.home_node and len(self.nodes) > 1:
            raise ValueError("cannot remove the switch's home node")
        self.nodes.remove(node)

    def weights(self) -> Dict[str, int]:
        """Node name -> relative capacity, read from the config file."""
        by_endpoint = {(n.endpoint.ip, n.endpoint.port): n for n in self.nodes}
        weights: Dict[str, int] = {}
        for directive in self.config.backends:
            node = by_endpoint.get((directive.ip, directive.port))
            if node is not None:
                weights[node.name] = directive.capacity
        return weights

    # -- dispatch ------------------------------------------------------------
    def _healthy(self) -> List[VirtualServiceNode]:
        return [n for n in self.nodes if n.is_available]

    def select(self, request: Optional[Request] = None) -> VirtualServiceNode:
        """Pick a back-end (no simulated time; used by serve and tests).

        Requests targeting a component of a partitionable service are
        restricted to that component's nodes.
        """
        candidates = self._healthy()
        if request is not None and request.component:
            candidates = [n for n in candidates if n.component == request.component]
        if not candidates:
            what = (
                f"component {request.component!r}"
                if request is not None and request.component
                else "node"
            )
            raise ServiceUnavailableError(
                f"service {self.service_name!r} has no healthy {what}"
            )
        choice = self.policy.choose(candidates, self.weights())
        if choice not in candidates:
            # Ill-behaving custom policy (§5): contain the damage to this
            # service by falling back to the first healthy node.
            choice = candidates[0]
        return choice

    def serve(self, request: Request) -> Generator[Event, Any, NodeResponse]:
        """Full client-visible request path (simulated-process step)."""
        if self.home_node.torn_down:
            raise ServiceUnavailableError(f"switch of {self.service_name!r} is gone")
        started = self.sim.now
        # Observability: open the dispatch segment (and, for requests
        # arriving without a workload-created root span, the root too).
        # Spans only read the clock — the timing model is untouched.
        tracer = tracer_of(self.sim)
        lane = f"switch:{self.service_name}"
        root = dispatch = None
        owns_root = False
        if tracer is not None:
            root = request.trace
            if root is None:
                owns_root = True
                root = tracer.start_span(
                    "request", lane=lane, start=started, service=self.service_name
                )
                request = replace(request, trace=root)
            dispatch = tracer.start_span("dispatch", lane=lane, start=started, parent=root)
        # 1. Client -> switch home node.
        inbound = self.lan.transfer(
            request.client, self.home_node.host.nic, REQUEST_SIZE_MB,
            label=f"switch:{self.service_name}:in",
        )
        yield inbound.done
        # SLA class-priority shedding: drop at ingress while backlog
        # saturates, before the request consumes a dispatcher slot.
        if self.shedder is not None and self.shedder.should_shed(self):
            self.shedded += 1
            self._notify(None, "shed")
            self._obs_outcome("shed")
            self._finish_spans(dispatch, root if owns_root else None, "shed")
            raise RequestSheddedError(
                f"service {self.service_name!r} shed a request under load"
            )
        # 2. Switch processing (serialised).
        slot = self._dispatcher.request()
        try:
            yield slot
            yield self.sim.timeout(
                SWITCH_CPU_MCYCLES / self.home_node.host.cpu_mhz
            )
            try:
                backend = self.select(request)
            except ServiceUnavailableError:
                self._notify(None, "failed")
                self._obs_outcome("failed")
                self._finish_spans(dispatch, root if owns_root else None, "failed")
                raise
        finally:
            self._dispatcher.release(slot)
        # 3. Forward to the back-end (loopback when co-located).
        forward = self.lan.transfer(
            self.home_node.host.nic, backend.host.nic, REQUEST_SIZE_MB,
            label=f"switch:{self.service_name}:fwd",
        )
        yield forward.done
        # 4. Back-end serves; response returns directly to the client.
        self.dispatched += 1
        self.per_node_count[backend.name] = self.per_node_count.get(backend.name, 0) + 1
        cache = self._obs_metrics()
        if cache is not None:
            cache[3].inc(service=self.service_name, node=backend.name)
        if dispatch is not None:
            # The back-end process bootstraps at this same instant, so
            # closing the dispatch segment here makes it contiguous with
            # the node's queue_wait segment.
            dispatch.finish(self.sim.now).annotate(node=backend.name)
        try:
            response = yield self.sim.process(
                backend.serve(request), name=f"serve:{backend.name}"
            )
        except SODAError:
            self.rejected += 1
            self._notify(None, "failed")
            self._obs_outcome("failed")
            self._finish_spans(None, root if owns_root else None, "failed")
            raise
        elapsed = self.sim.now - started
        self.response_times.record(self.sim.now, elapsed)
        self._notify(elapsed, "ok")
        self._obs_outcome("ok", elapsed)
        if owns_root:
            root.finish(self.sim.now).annotate(node=response.node_name)
        return response

    def _finish_spans(self, dispatch, root, status: str) -> None:
        """Close still-open spans on an error path (no-op for None)."""
        now = self.sim.now
        if dispatch is not None and not dispatch.finished:
            dispatch.finish(now, status)
        if root is not None and not root.finished:
            root.finish(now, status)
