"""The per-service request switch.

"After the SODA Daemons have finished service priming, the SODA Master
will create a service switch for S [...] Co-located in one of the
virtual service nodes of S, the service switch will accept and direct
each client request to one of the virtual service nodes" (paper §3.4).

The serving path modelled per request:

1. the client's request message travels over the LAN to the switch's
   home node;
2. the switch spends a small slice of its home host's CPU classifying
   the request and consulting the policy (this serialises through a
   queue — a flooded switch backs up, the §3.5 DDoS caveat);
3. the request is forwarded to the chosen back-end node (loopback when
   co-located);
4. the back-end serves it; the response body returns directly from the
   back-end's host to the client (direct-server-return, so the switch
   never carries response bandwidth).

Crashed nodes are skipped at dispatch time; if no healthy node remains
the request fails with :class:`ServiceUnavailableError`.

SLA hooks (extension): a shedder installed by the SODA Master drops
requests when backlog saturates (class-priority load shedding, bronze
first — see :mod:`repro.sla.enforcement`), and outcome listeners (e.g.
an :class:`~repro.sla.monitor.SLOMonitor`) receive every per-request
outcome — ``(time, latency, "ok" | "failed" | "shed")`` — as it happens.

Dispatch batching (extension): :meth:`ServiceSwitch.enable_batching`
turns on adaptive dispatch coalescing — same-class requests arriving
within a small window share *one* dispatcher slot, one classify CPU
slice, and one combined forward transfer per chosen back-end, so a
burst of n requests costs O(groups) scheduling/LAN events instead of
O(n).  Per-request accounting is untouched: every request keeps its own
ingress flow, response-time sample, outcome notification, and span
chain (the dispatch span simply widens to cover the wait for the
batch).  Off by default — the serving path and its digests are
bit-identical until a caller opts in.

Failover hooks (extension): with a :attr:`ServiceSwitch.retry_policy`
(capped exponential backoff, see :class:`repro.faults.retry.BackoffPolicy`
— duck-typed: anything with ``max_attempts`` and ``delay(attempt)``)
and/or a :attr:`ServiceSwitch.request_timeout_s` budget installed, the
switch re-runs failed dispatches against replicas it has not tried yet,
backing off between attempts, until the request succeeds, the attempts
are exhausted, or the timeout budget runs out
(:class:`~repro.core.errors.RequestTimeoutError`).  A health checker
(:class:`repro.faults.health.SwitchHealthChecker`) can additionally
:meth:`~ServiceSwitch.quarantine` nodes so dispatch never even tries a
dead replica between watchdog reboots.  Both hooks default to off, in
which case the serving path is exactly the pre-failover one.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Set

from repro.core.config import ServiceConfigFile
from repro.core.errors import RequestSheddedError, RequestTimeoutError, SODAError
from repro.core.node import (
    NodeResponse,
    Request,
    ServiceUnavailableError,
    VirtualServiceNode,
)
from repro.obs.metrics import registry_of
from repro.obs.tracing import tracer_of
from repro.core.policies import SwitchingPolicy, WeightedRoundRobinPolicy
from repro.net.http import REQUEST_SIZE_MB
from repro.net.lan import LAN
from repro.sim.kernel import Event, Simulator
from repro.sim.monitor import Monitor
from repro.sim.resources import Resource

__all__ = ["ServiceSwitch"]

# CPU work to accept, parse and dispatch one request at the switch,
# megacycles (a user-space L7 dispatcher).
SWITCH_CPU_MCYCLES = 0.6


class _DispatchBatch:
    """One open coalescing window of same-class requests."""

    __slots__ = ("key", "members", "full", "closed")

    def __init__(self, sim: Simulator, key: str):
        self.key = key
        # (request, joined-event) pairs; each event fires with
        # ``(backend, exc)`` once the batch's shared work is done.
        self.members: List[tuple] = []
        self.full: Event = Event(sim)
        self.closed = False


class ServiceSwitch:
    """Directs client requests of one service to its nodes."""

    def __init__(
        self,
        sim: Simulator,
        service_name: str,
        lan: LAN,
        nodes: List[VirtualServiceNode],
        config: ServiceConfigFile,
        policy: Optional[SwitchingPolicy] = None,
        home_node: Optional[VirtualServiceNode] = None,
    ):
        if not nodes:
            raise ValueError(f"switch for {service_name!r} needs at least one node")
        self.sim = sim
        self.service_name = service_name
        self.lan = lan
        self.nodes = list(nodes)
        self.config = config
        self.policy = policy or WeightedRoundRobinPolicy()
        self.home_node = home_node or nodes[0]
        if self.home_node not in self.nodes:
            raise ValueError("home node must be one of the service's nodes")
        # Switch processing serialises: one dispatcher thread.
        self._dispatcher = Resource(sim, capacity=1)
        self.dispatched = 0
        self.rejected = 0
        self.shedded = 0
        self.response_times = Monitor(f"switch:{service_name}")
        self.per_node_count: Dict[str, int] = {n.name: 0 for n in nodes}
        # SLA hooks: a shedder decides drops under load; outcome
        # listeners tap the per-request outcome stream.
        self.shedder: Optional[Any] = None
        self._outcome_listeners: List[Callable[[float, Optional[float], str], None]] = []
        # Failover hooks (off by default — the plain serving path runs
        # unchanged unless one of these is installed).  Both are
        # properties: their setters reject configuration while dispatch
        # batching is enabled (and enable_batching rejects the reverse),
        # so the documented incompatibility is enforced both ways at
        # configuration time.
        self._retry_policy: Optional[Any] = None
        self._request_timeout_s: Optional[float] = None
        self.quarantined: Set[str] = set()
        self.failovers = 0
        self.timeouts = 0
        # Dispatch batching (off by default): (window_s, max_batch) when
        # enabled, plus the open batch per request class.
        self._batching: Optional[tuple] = None
        self._open_batches: Dict[str, _DispatchBatch] = {}
        self.batches_dispatched = 0
        # Market hook (extension): the owning tenant/ASP, set by the
        # SODA Master so per-request metrics and spans carry a tenant
        # dimension for isolation accounting.
        self.tenant: Optional[str] = None
        # Observability: metric children bound against whichever registry
        # is attached to the simulator (rebound if it changes).
        self._obs_cache: Optional[tuple] = None

    # -- observability (observes, never perturbs) ----------------------------
    def _obs_metrics(self) -> Optional[tuple]:
        """(registry, outcome counter, latency histogram, per-node
        counter, failover counter, timeout counter) or None."""
        registry = registry_of(self.sim)
        if registry is None:
            return None
        if self._obs_cache is None or self._obs_cache[0] is not registry:
            self._obs_cache = (
                registry,
                registry.counter(
                    "soda_switch_requests_total",
                    "Requests seen by a service switch, by outcome.",
                    ("service", "outcome"),
                ),
                registry.histogram(
                    "soda_switch_response_seconds",
                    "Client-visible response time through the switch.",
                    ("service",),
                ),
                registry.counter(
                    "soda_switch_dispatch_total",
                    "Requests dispatched to each back-end node.",
                    ("service", "node"),
                ),
                registry.counter(
                    "soda_switch_failovers_total",
                    "Dispatch attempts retried on another replica.",
                    ("service",),
                ),
                registry.counter(
                    "soda_switch_timeouts_total",
                    "Requests that exhausted their timeout budget.",
                    ("service",),
                ),
                registry.counter(
                    "soda_tenant_requests_total",
                    "Requests by owning tenant and outcome (market extension).",
                    ("tenant", "service", "outcome"),
                ),
            )
        return self._obs_cache

    def _obs_outcome(self, outcome: str, latency_s: Optional[float] = None) -> None:
        cache = self._obs_metrics()
        if cache is None:
            return
        requests, latency = cache[1], cache[2]
        requests.inc(service=self.service_name, outcome=outcome)
        if latency_s is not None:
            latency.observe(latency_s, service=self.service_name)
        if self.tenant is not None:
            cache[6].inc(
                tenant=self.tenant, service=self.service_name, outcome=outcome
            )

    # -- SLA hooks (extension) ----------------------------------------------
    def add_outcome_listener(
        self, listener: Callable[[float, Optional[float], str], None]
    ) -> None:
        """Subscribe ``listener(time, latency_s, outcome)`` to every request."""
        self._outcome_listeners.append(listener)

    def _notify(self, latency_s: Optional[float], outcome: str) -> None:
        for listener in self._outcome_listeners:
            listener(self.sim.now, latency_s, outcome)

    # -- failover configuration (mutually exclusive with batching) -----------
    @property
    def retry_policy(self) -> Optional[Any]:
        return self._retry_policy

    @retry_policy.setter
    def retry_policy(self, policy: Optional[Any]) -> None:
        if policy is not None and getattr(self, "_batching", None) is not None:
            raise ValueError(
                "the failover engine is incompatible with dispatch batching "
                "(disable_batching() first)"
            )
        self._retry_policy = policy

    @property
    def request_timeout_s(self) -> Optional[float]:
        return self._request_timeout_s

    @request_timeout_s.setter
    def request_timeout_s(self, timeout_s: Optional[float]) -> None:
        if timeout_s is not None and getattr(self, "_batching", None) is not None:
            raise ValueError(
                "the failover engine is incompatible with dispatch batching "
                "(disable_batching() first)"
            )
        self._request_timeout_s = timeout_s

    # -- dispatch batching (extension) ----------------------------------------
    def enable_batching(self, window_s: float = 0.001, max_batch: int = 32) -> None:
        """Coalesce same-class requests into shared dispatch batches.

        A request arriving while a batch for its class is open joins it;
        the batch dispatches when ``window_s`` elapses after it opened or
        when it reaches ``max_batch`` members, whichever comes first.
        Incompatible with the failover engine (an attempt retried on a
        new replica cannot share another request's forward transfer).
        """
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if self.retry_policy is not None or self.request_timeout_s is not None:
            raise ValueError(
                "dispatch batching is incompatible with the failover engine"
            )
        self._batching = (window_s, max_batch)

    def disable_batching(self) -> None:
        """Stop opening new batches (open ones drain normally)."""
        self._batching = None

    # -- policy management (the ASP-facing hook, §3.4) -----------------------
    def set_policy(self, policy: SwitchingPolicy) -> None:
        """Replace the request switching policy with an ASP-specific one."""
        if not isinstance(policy, SwitchingPolicy):
            raise TypeError("policy must be a SwitchingPolicy")
        self.policy = policy

    # -- node management (SODA Master's resizing hooks) ------------------------
    def add_node(self, node: VirtualServiceNode) -> None:
        if node in self.nodes:
            raise ValueError(f"node {node.name} already behind the switch")
        self.nodes.append(node)
        self.per_node_count.setdefault(node.name, 0)

    def remove_node(self, node: VirtualServiceNode) -> None:
        if node not in self.nodes:
            raise ValueError(f"node {node.name} not behind the switch")
        if node is self.home_node and len(self.nodes) > 1:
            raise ValueError("cannot remove the switch's home node")
        self.nodes.remove(node)
        self.quarantined.discard(node.name)

    # -- health quarantine (failover extension) -------------------------------
    def quarantine(self, node: VirtualServiceNode) -> None:
        """Take a node out of dispatch rotation (health check failed).

        Idempotent; the node object stays behind the switch so the
        watchdog can still reboot it in place.
        """
        if node not in self.nodes:
            raise ValueError(f"node {node.name} not behind the switch")
        self.quarantined.add(node.name)

    def unquarantine(self, node: VirtualServiceNode) -> None:
        """Return a recovered node to dispatch rotation.  Idempotent."""
        self.quarantined.discard(node.name)

    def weights(self) -> Dict[str, int]:
        """Node name -> relative capacity, read from the config file."""
        by_endpoint = {(n.endpoint.ip, n.endpoint.port): n for n in self.nodes}
        weights: Dict[str, int] = {}
        for directive in self.config.backends:
            node = by_endpoint.get((directive.ip, directive.port))
            if node is not None:
                weights[node.name] = directive.capacity
        return weights

    # -- dispatch ------------------------------------------------------------
    def _healthy(self) -> List[VirtualServiceNode]:
        if self.quarantined:
            return [
                n for n in self.nodes
                if n.is_available and n.name not in self.quarantined
            ]
        return [n for n in self.nodes if n.is_available]

    def select(
        self,
        request: Optional[Request] = None,
        exclude: Iterable[str] = (),
    ) -> VirtualServiceNode:
        """Pick a back-end (no simulated time; used by serve and tests).

        Requests targeting a component of a partitionable service are
        restricted to that component's nodes.  ``exclude`` removes nodes
        by name — the failover path uses it to avoid re-trying a replica
        that already failed this request.
        """
        candidates = self._healthy()
        if exclude:
            candidates = [n for n in candidates if n.name not in exclude]
        if request is not None and request.component:
            candidates = [n for n in candidates if n.component == request.component]
        if not candidates:
            what = (
                f"component {request.component!r}"
                if request is not None and request.component
                else "node"
            )
            raise ServiceUnavailableError(
                f"service {self.service_name!r} has no healthy {what}"
            )
        choice = self.policy.choose(candidates, self.weights())
        if choice not in candidates:
            # Ill-behaving custom policy (§5): contain the damage to this
            # service by falling back to the first healthy node.
            choice = candidates[0]
        return choice

    def serve(self, request: Request) -> Generator[Event, Any, NodeResponse]:
        """Full client-visible request path (simulated-process step)."""
        if self.home_node.torn_down:
            raise ServiceUnavailableError(f"switch of {self.service_name!r} is gone")
        started = self.sim.now
        # Observability: open the dispatch segment (and, for requests
        # arriving without a workload-created root span, the root too).
        # Spans only read the clock — the timing model is untouched.
        tracer = tracer_of(self.sim)
        lane = f"switch:{self.service_name}"
        root = dispatch = None
        owns_root = False
        if tracer is not None:
            root = request.trace
            if root is None:
                owns_root = True
                root = tracer.start_span(
                    "request", lane=lane, start=started, service=self.service_name
                )
                request = replace(request, trace=root)
            dispatch = tracer.start_span("dispatch", lane=lane, start=started, parent=root)
            if self.tenant is not None:
                dispatch.annotate(tenant=self.tenant)
        # 1. Client -> switch home node.
        inbound = self.lan.transfer(
            request.client, self.home_node.host.nic, REQUEST_SIZE_MB,
            label=f"switch:{self.service_name}:in",
        )
        yield inbound.done
        # SLA class-priority shedding: drop at ingress while backlog
        # saturates, before the request consumes a dispatcher slot.
        if self.shedder is not None and self.shedder.should_shed(self):
            self.shedded += 1
            self._notify(None, "shed")
            self._obs_outcome("shed")
            self._finish_spans(dispatch, root if owns_root else None, "shed")
            raise RequestSheddedError(
                f"service {self.service_name!r} shed a request under load"
            )
        # Failover path (extension): with a retry policy or a timeout
        # budget installed, dispatch attempts run — and re-run — through
        # the failover engine.  Neither installed: the plain path below
        # is untouched, keeping fault-free digests bit-identical.
        if self.retry_policy is not None or self.request_timeout_s is not None:
            response = yield from self._serve_with_failover(
                request, started, lane, root, dispatch, owns_root
            )
            return response
        # Batching path (extension): join/open a coalescing batch; the
        # batch pays the dispatcher slot, classify CPU, and forward
        # transfers once on behalf of all its members.
        if self._batching is not None:
            response = yield from self._serve_batched(
                request, started, root, dispatch, owns_root
            )
            return response
        # 2. Switch processing (serialised).
        slot = self._dispatcher.request()
        try:
            yield slot
            yield self.sim.timeout(
                SWITCH_CPU_MCYCLES / self.home_node.host.cpu_mhz
            )
            try:
                backend = self.select(request)
            except ServiceUnavailableError:
                self._notify(None, "failed")
                self._obs_outcome("failed")
                self._finish_spans(dispatch, root if owns_root else None, "failed")
                raise
        finally:
            self._dispatcher.release(slot)
        # 3. Forward to the back-end (loopback when co-located).
        forward = self.lan.transfer(
            self.home_node.host.nic, backend.host.nic, REQUEST_SIZE_MB,
            label=f"switch:{self.service_name}:fwd",
        )
        yield forward.done
        # 4. Back-end serves; response returns directly to the client.
        self.dispatched += 1
        self.per_node_count[backend.name] = self.per_node_count.get(backend.name, 0) + 1
        cache = self._obs_metrics()
        if cache is not None:
            cache[3].inc(service=self.service_name, node=backend.name)
        if dispatch is not None:
            # The back-end process bootstraps at this same instant, so
            # closing the dispatch segment here makes it contiguous with
            # the node's queue_wait segment.
            dispatch.finish(self.sim.now).annotate(node=backend.name)
        try:
            response = yield self.sim.process(
                backend.serve(request), name=f"serve:{backend.name}"
            )
        except SODAError:
            self.rejected += 1
            self._notify(None, "failed")
            self._obs_outcome("failed")
            self._finish_spans(None, root if owns_root else None, "failed")
            raise
        elapsed = self.sim.now - started
        self.response_times.record(self.sim.now, elapsed)
        self._notify(elapsed, "ok")
        self._obs_outcome("ok", elapsed)
        if owns_root:
            root.finish(self.sim.now).annotate(node=response.node_name)
        return response

    # -- dispatch batching engine (extension) ---------------------------------
    def _serve_batched(
        self, request: Request, started: float, root, dispatch, owns_root: bool
    ) -> Generator[Event, Any, NodeResponse]:
        """Member side of the batched serving path.

        Runs after the request's own ingress and shed check.  The member
        joins (or opens) its class's batch, waits for the batch's shared
        dispatch work, then serves and accounts exactly like the plain
        path: its own back-end process, response-time sample, outcome
        notification, and spans — the dispatch span closes at the same
        instant the back-end process starts, so span tiling per request
        is preserved.
        """
        window_s, max_batch = self._batching
        key = request.component
        batch = self._open_batches.get(key)
        if batch is None or batch.closed or len(batch.members) >= max_batch:
            batch = _DispatchBatch(self.sim, key)
            self._open_batches[key] = batch
            self.sim.process(
                self._run_batch(batch, window_s),
                name=f"batch:{self.service_name}:{key or '-'}",
            )
        joined = Event(self.sim)
        batch.members.append((request, joined))
        if len(batch.members) >= max_batch and not batch.full.triggered:
            batch.full.succeed()
        backend, exc = yield joined
        if exc is not None:
            self._notify(None, "failed")
            self._obs_outcome("failed")
            self._finish_spans(dispatch, root if owns_root else None, "failed")
            raise exc
        # Shared work done (forward transfer included); from here the
        # member path is the plain path's per-request tail.
        self.dispatched += 1
        self.per_node_count[backend.name] = self.per_node_count.get(backend.name, 0) + 1
        cache = self._obs_metrics()
        if cache is not None:
            cache[3].inc(service=self.service_name, node=backend.name)
        if dispatch is not None:
            dispatch.finish(self.sim.now).annotate(node=backend.name)
        try:
            response = yield self.sim.process(
                backend.serve(request), name=f"serve:{backend.name}"
            )
        except SODAError:
            self.rejected += 1
            self._notify(None, "failed")
            self._obs_outcome("failed")
            self._finish_spans(None, root if owns_root else None, "failed")
            raise
        elapsed = self.sim.now - started
        self.response_times.record(self.sim.now, elapsed)
        self._notify(elapsed, "ok")
        self._obs_outcome("ok", elapsed)
        if owns_root:
            root.finish(self.sim.now).annotate(node=response.node_name)
        return response

    def _run_batch(
        self, batch: _DispatchBatch, window_s: float
    ) -> Generator[Event, Any, None]:
        """Batch side: one slot, one classify slice, one flow per group.

        Spawned when the batch opens; closes it after ``window_s`` or
        when it fills, then performs the coalesced dispatch work and
        fires every member's event — success carries the chosen
        back-end once that back-end's combined forward transfer lands.
        """
        guard = self.sim.timeout(window_s)
        if not batch.full.triggered:
            yield self.sim.any_of([guard, batch.full])
        batch.closed = True
        if self._open_batches.get(batch.key) is batch:
            del self._open_batches[batch.key]
        # One dispatcher slot and one classify slice for the whole batch
        # — this is the coalescing win on the switch's CPU.
        groups: Dict[VirtualServiceNode, List[Event]] = {}
        slot = self._dispatcher.request()
        try:
            yield slot
            yield self.sim.timeout(
                SWITCH_CPU_MCYCLES / self.home_node.host.cpu_mhz
            )
            for req, joined in batch.members:
                try:
                    backend = self.select(req)
                except ServiceUnavailableError as exc:
                    joined.succeed((None, exc))
                    continue
                groups.setdefault(backend, []).append(joined)
        finally:
            self._dispatcher.release(slot)
        self.batches_dispatched += 1
        # One combined forward transfer per chosen back-end; members
        # resume the instant their group's last byte lands.
        for backend, events in groups.items():
            flow = self.lan.transfer(
                self.home_node.host.nic, backend.host.nic,
                len(events) * REQUEST_SIZE_MB,
                label=f"switch:{self.service_name}:fwd",
            )
            flow.done.callbacks.append(
                lambda _ev, b=backend, evs=events: [
                    joined.succeed((b, None)) for joined in evs
                ]
            )

    # -- failover engine (extension) -----------------------------------------
    def _serve_with_failover(
        self, request: Request, started: float, lane: str,
        root, dispatch, owns_root: bool,
    ) -> Generator[Event, Any, NodeResponse]:
        """Serving tail with retry, failover, and a timeout budget.

        Runs after ingress and the shed check.  Each attempt pays the
        dispatcher slot + classify CPU again (the switch really does
        re-dispatch), picks a replica the request has not failed on yet,
        and races the attempt against the remaining timeout budget.  A
        failed attempt backs off per the retry policy before the next
        one; when every live replica has been tried, the exclusion set
        resets so watchdog-rebooted nodes get a chance.  A timed-out
        attempt is abandoned, not cancelled — the back-end finishes the
        work like a real server whose client hung up.
        """
        policy = self.retry_policy
        max_attempts = policy.max_attempts if policy is not None else 1
        deadline = (
            None if self.request_timeout_s is None
            else started + self.request_timeout_s
        )
        tracer = tracer_of(self.sim)
        cache = self._obs_metrics()
        tried: Set[str] = set()
        failure: Optional[SODAError] = None
        any_dispatched = False
        attempt = 0
        while attempt < max_attempts:
            attempt += 1
            # Switch processing (serialised), once per attempt.
            backend = None
            slot = self._dispatcher.request()
            try:
                yield slot
                yield self.sim.timeout(
                    SWITCH_CPU_MCYCLES / self.home_node.host.cpu_mhz
                )
                try:
                    backend = self.select(request, exclude=tried)
                except ServiceUnavailableError as exc:
                    failure = exc
                    if tried:
                        # Every replica failed this request once already;
                        # a watchdog reboot may have revived one — widen
                        # the net before writing the attempt off.
                        tried.clear()
                        try:
                            backend = self.select(request)
                            failure = None
                        except ServiceUnavailableError as again:
                            failure = again
            finally:
                self._dispatcher.release(slot)
            if dispatch is not None and not dispatch.finished:
                dispatch.finish(self.sim.now).annotate(
                    node=backend.name if backend is not None else "-"
                )
            if backend is not None:
                if deadline is not None and deadline - self.sim.now <= 0:
                    failure = self._timeout_failure(cache)
                    break
                span = None
                if tracer is not None:
                    span = tracer.start_span(
                        "attempt", lane=lane, start=self.sim.now, parent=root,
                        node=backend.name, attempt=attempt,
                    )
                any_dispatched = True
                proc = self.sim.process(
                    self._attempt(backend, request), name=f"attempt:{backend.name}"
                )
                if deadline is None:
                    response, exc = yield proc
                else:
                    guard = self.sim.timeout(deadline - self.sim.now)
                    yield self.sim.any_of([proc, guard])
                    if proc.is_alive:
                        # Budget exhausted mid-attempt; abandon it.
                        if span is not None:
                            span.finish(self.sim.now, "timeout")
                        failure = self._timeout_failure(cache)
                        break
                    response, exc = proc.value
                if exc is None:
                    if span is not None:
                        span.finish(self.sim.now)
                    elapsed = self.sim.now - started
                    self.response_times.record(self.sim.now, elapsed)
                    self._notify(elapsed, "ok")
                    self._obs_outcome("ok", elapsed)
                    if owns_root:
                        root.finish(self.sim.now).annotate(node=response.node_name)
                    return response
                failure = exc
                tried.add(backend.name)
                if span is not None:
                    span.finish(self.sim.now, "failed")
            if attempt >= max_attempts:
                break
            # Back off before the next attempt, clamped to the budget.
            self.failovers += 1
            if cache is not None:
                cache[4].inc(service=self.service_name)
            delay = policy.delay(attempt) if policy is not None else 0.0
            if deadline is not None:
                remaining = deadline - self.sim.now
                if remaining <= 0:
                    failure = self._timeout_failure(cache)
                    break
                if delay > remaining:
                    delay = remaining
            if delay > 0:
                yield self.sim.timeout(delay)
        if failure is None:  # pragma: no cover - defensive
            failure = ServiceUnavailableError(
                f"service {self.service_name!r} exhausted its attempts"
            )
        if any_dispatched:
            self.rejected += 1
        self._notify(None, "failed")
        self._obs_outcome("failed")
        self._finish_spans(dispatch, root if owns_root else None, "failed")
        raise failure

    def _timeout_failure(self, cache) -> RequestTimeoutError:
        self.timeouts += 1
        if cache is not None:
            cache[5].inc(service=self.service_name)
        return RequestTimeoutError(
            f"service {self.service_name!r} request exceeded its "
            f"{self.request_timeout_s:g}s budget"
        )

    def _attempt(
        self, backend: VirtualServiceNode, request: Request
    ) -> Generator[Event, Any, tuple]:
        """One dispatch attempt; returns ``(response, exc)``, never raises.

        Catching :class:`SODAError` inside the child process keeps an
        abandoned (timed-out) attempt from failing a process nobody is
        left awaiting.
        """
        # Forward to the back-end (loopback when co-located).
        forward = self.lan.transfer(
            self.home_node.host.nic, backend.host.nic, REQUEST_SIZE_MB,
            label=f"switch:{self.service_name}:fwd",
        )
        yield forward.done
        self.dispatched += 1
        self.per_node_count[backend.name] = self.per_node_count.get(backend.name, 0) + 1
        cache = self._obs_metrics()
        if cache is not None:
            cache[3].inc(service=self.service_name, node=backend.name)
        try:
            response = yield self.sim.process(
                backend.serve(request), name=f"serve:{backend.name}"
            )
        except SODAError as exc:
            return None, exc
        return response, None

    def _finish_spans(self, dispatch, root, status: str) -> None:
        """Close still-open spans on an error path (no-op for None)."""
        now = self.sim.now
        if dispatch is not None and not dispatch.finished:
            dispatch.finish(now, status)
        if root is not None and not root.finished:
            root.finish(now, status)
