"""Reactive autoscaling over SODA_service_resizing (extension).

The paper gives ASPs a resizing API (§4.1) but leaves *when* to call it
to the ASP.  :class:`ReactiveAutoscaler` is that missing controller: a
simulated process that periodically inspects the service's recent mean
response time and scales the ``<n, M>`` requirement up when the SLO is
threatened and down when capacity sits idle — the elasticity loop every
modern platform runs, built from nothing but the paper's own API.

SLA integration: :meth:`ReactiveAutoscaler.notify_breach` queues a
resize request from outside the latency loop (wired from an
:class:`~repro.sla.monitor.SLOMonitor` through a
:class:`~repro.sla.enforcement.BreachEscalator`); the next control
period scales up even if the latency window alone would not, so
sustained SLO violations force capacity instead of just credits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Tuple

from repro.core.agent import SODAAgent
from repro.core.auth import Credentials
from repro.core.errors import SODAError
from repro.image.repository import ImageRepository
from repro.sim.kernel import Event, Simulator

__all__ = ["AutoscalerConfig", "ScalingDecision", "ReactiveAutoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Controller parameters."""

    target_response_s: float
    min_units: int = 1
    max_units: int = 4
    check_period_s: float = 20.0
    scale_up_at: float = 0.9  # fraction of target triggering +1
    scale_down_at: float = 0.4  # fraction of target allowing -1
    min_samples: int = 5

    def __post_init__(self) -> None:
        if self.target_response_s <= 0:
            raise ValueError("target response time must be positive")
        if not 1 <= self.min_units <= self.max_units:
            raise ValueError(
                f"need 1 <= min_units <= max_units, got {self.min_units}/{self.max_units}"
            )
        if self.check_period_s <= 0:
            raise ValueError("check period must be positive")
        if not 0 < self.scale_down_at < self.scale_up_at:
            raise ValueError("need 0 < scale_down_at < scale_up_at")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")


@dataclass(frozen=True)
class ScalingDecision:
    """One controller action, for the audit trail."""

    time: float
    observed_response_s: float
    from_units: int
    to_units: int
    reason: str


class ReactiveAutoscaler:
    """Periodically resizes one service based on observed latency."""

    def __init__(
        self,
        sim: Simulator,
        agent: SODAAgent,
        credentials: Credentials,
        service_name: str,
        repository: ImageRepository,
        config: AutoscalerConfig,
    ):
        self.sim = sim
        self.agent = agent
        self.credentials = credentials
        self.service_name = service_name
        self.repository = repository
        self.config = config
        self.decisions: List[ScalingDecision] = []
        self.capacity_timeline: List[Tuple[float, int]] = []
        # SLA breach requests queued for the next control period.
        self._pending_breaches: List[Any] = []

    def notify_breach(self, violation: Any = None) -> None:
        """Request a scale-up at the next control period (SLA hook).

        ``violation`` is typically an :class:`~repro.sla.monitor.SLAViolation`
        but any object (or None) is accepted; only its ``observed``
        attribute, if present, is used for the audit trail.
        """
        self._pending_breaches.append(violation)

    def _recent_mean_response(self, window_start: float) -> Optional[float]:
        record = self.agent.master.get_service(self.service_name)
        monitor = record.switch.response_times
        window = monitor.window(window_start, self.sim.now + 1e-9)
        if window.count < self.config.min_samples:
            return None
        return window.mean()

    def run(self, duration_s: float) -> Generator[Event, Any, List[ScalingDecision]]:
        """The control loop (a simulated process)."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        config = self.config
        deadline = self.sim.now + duration_s
        record = self.agent.master.get_service(self.service_name)
        self.capacity_timeline.append((self.sim.now, record.total_units))
        while self.sim.now < deadline:
            window_start = self.sim.now
            yield self.sim.timeout(config.check_period_s)
            observed = self._recent_mean_response(window_start)
            breaches, self._pending_breaches = self._pending_breaches, []
            if observed is None and not breaches:
                continue
            record = self.agent.master.get_service(self.service_name)
            units = record.total_units
            target = None
            reason = ""
            if breaches:
                # A breach request overrides the latency heuristics: the
                # SLO is already violated, never scale down now.
                if units < config.max_units:
                    target, reason = units + 1, "sla breach"
            elif observed > config.scale_up_at * config.target_response_s:
                if units < config.max_units:
                    target, reason = units + 1, "latency above threshold"
            elif observed < config.scale_down_at * config.target_response_s:
                if units > config.min_units:
                    target, reason = units - 1, "capacity idle"
            if target is None:
                continue
            if observed is None:
                # Breach-triggered with an empty latency window: audit
                # with the violation's own observed value.
                observed = float(getattr(breaches[-1], "observed", float("nan")))
            try:
                yield from self.agent.service_resizing(
                    self.credentials, self.service_name, self.repository, target
                )
            except SODAError:
                continue  # e.g. the HUP is full; try again next period
            self.decisions.append(
                ScalingDecision(
                    time=self.sim.now,
                    observed_response_s=observed,
                    from_units=units,
                    to_units=target,
                    reason=reason,
                )
            )
            self.capacity_timeline.append((self.sim.now, target))
        return self.decisions

    @property
    def scale_ups(self) -> int:
        return sum(1 for d in self.decisions if d.to_units > d.from_units)

    @property
    def scale_downs(self) -> int:
        return sum(1 for d in self.decisions if d.to_units < d.from_units)

    @property
    def breach_resizes(self) -> int:
        """Resizes triggered by SLA breach notifications."""
        return sum(1 for d in self.decisions if d.reason == "sla breach")
