"""Request switching policies.

"The service switch enforces a default request switching policy, which
can be *replaced* with a service-specific policy by the ASP" (paper
§3.4).  The default is weighted round-robin with weights equal to node
capacities (§5: "The request switching policy is weighted round-robin,
with the weights reflecting the capacity of the two virtual service
nodes").

A policy sees only healthy candidates and their weights/in-flight
counts and returns one of them.  Custom ASP policies wrap a plain
callable; SODA's isolation means an ill-behaving custom policy can hurt
only its own service (§5), which the switch enforces by validating the
policy's choice.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.node import VirtualServiceNode
from repro.sim.rng import RandomStreams

__all__ = [
    "SwitchingPolicy",
    "WeightedRoundRobinPolicy",
    "RoundRobinPolicy",
    "LeastConnectionsPolicy",
    "RandomPolicy",
    "SourceHashPolicy",
    "FastestResponsePolicy",
    "CustomPolicy",
]


class SwitchingPolicy:
    """Base class: pick one node from non-empty ``candidates``.

    ``weights`` maps node name -> relative capacity from the service
    configuration file.
    """

    name = "base"

    def choose(
        self,
        candidates: Sequence[VirtualServiceNode],
        weights: Dict[str, int],
    ) -> VirtualServiceNode:
        raise NotImplementedError


class WeightedRoundRobinPolicy(SwitchingPolicy):
    """Smooth weighted round-robin (the SODA default).

    Interleaves choices so a weight-2 node gets every other request
    rather than bursts of two — the scheme nginx popularised.  Exact
    long-run ratios equal the weight ratios.
    """

    name = "weighted-round-robin"

    def __init__(self) -> None:
        self._current: Dict[str, float] = {}

    def choose(self, candidates, weights):
        if not candidates:
            raise ValueError("no candidates")
        total = 0.0
        best = None
        for node in candidates:
            weight = weights.get(node.name, 1)
            total += weight
            self._current[node.name] = self._current.get(node.name, 0.0) + weight
            if best is None or self._current[node.name] > self._current[best.name]:
                best = node
        self._current[best.name] -= total
        return best


class RoundRobinPolicy(SwitchingPolicy):
    """Plain round-robin, ignoring weights."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, candidates, weights):
        if not candidates:
            raise ValueError("no candidates")
        node = candidates[self._next % len(candidates)]
        self._next += 1
        return node


class LeastConnectionsPolicy(SwitchingPolicy):
    """Fewest in-flight requests per unit of weight."""

    name = "least-connections"

    def choose(self, candidates, weights):
        if not candidates:
            raise ValueError("no candidates")
        return min(
            candidates,
            key=lambda n: (n.inflight / max(weights.get(n.name, 1), 1), n.name),
        )


class RandomPolicy(SwitchingPolicy):
    """Weight-proportional random choice (seeded; deterministic)."""

    name = "random"

    def __init__(self, streams: Optional[RandomStreams] = None):
        self._streams = streams or RandomStreams(seed=0)

    def choose(self, candidates, weights):
        if not candidates:
            raise ValueError("no candidates")
        cum: List[float] = []
        total = 0.0
        for node in candidates:
            total += weights.get(node.name, 1)
            cum.append(total)
        x = self._streams.uniform("switch-random", 0.0, total)
        for node, edge in zip(candidates, cum):
            if x <= edge:
                return node
        return candidates[-1]


class SourceHashPolicy(SwitchingPolicy):
    """Session affinity: hash the client's identity onto a node.

    The same client always lands on the same node (while the node set
    is stable), which a stateful service-specific policy would want —
    exactly the kind of replacement policy §3.4 anticipates.  Weights
    are honoured by giving each node a number of hash slots equal to
    its weight.
    """

    name = "source-hash"

    def choose(self, candidates, weights):
        if not candidates:
            raise ValueError("no candidates")
        return self.choose_for(candidates, weights, client_key="")

    def choose_for(self, candidates, weights, client_key: str):
        if not candidates:
            raise ValueError("no candidates")
        slots = []
        for node in sorted(candidates, key=lambda n: n.name):
            slots.extend([node] * max(1, int(weights.get(node.name, 1))))
        import hashlib

        digest = hashlib.sha256(client_key.encode()).digest()
        return slots[int.from_bytes(digest[:4], "little") % len(slots)]


class FastestResponsePolicy(SwitchingPolicy):
    """Route to the node with the best exponentially-weighted response
    time; unmeasured nodes are probed first.  Adapts to heterogeneous
    or degraded nodes without configured weights."""

    name = "fastest-response"

    def __init__(self, alpha: float = 0.2):
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._ewma: Dict[str, float] = {}

    def observe(self, node_name: str, response_s: float) -> None:
        """Feed a measured response time back into the policy."""
        if response_s < 0:
            raise ValueError(f"negative response time: {response_s}")
        if node_name in self._ewma:
            self._ewma[node_name] = (
                (1 - self.alpha) * self._ewma[node_name] + self.alpha * response_s
            )
        else:
            self._ewma[node_name] = response_s

    def choose(self, candidates, weights):
        if not candidates:
            raise ValueError("no candidates")
        unprobed = [n for n in candidates if n.name not in self._ewma]
        if unprobed:
            return unprobed[0]
        return min(candidates, key=lambda n: (self._ewma[n.name], n.name))


class CustomPolicy(SwitchingPolicy):
    """An ASP-supplied policy function (§3.4's replaceable policy).

    ``fn(candidates, weights) -> node``.  The switch validates the
    returned node, so a buggy custom policy degrades only its own
    service ("even if the service-specific policy is ill-behaving, it
    will not affect other services hosted in the HUP", §5).
    """

    def __init__(self, fn: Callable, name: str = "custom"):
        if not callable(fn):
            raise TypeError("custom policy must be callable")
        self._fn = fn
        self.name = name

    def choose(self, candidates, weights):
        return self._fn(list(candidates), dict(weights))
