"""The SODA Master's resource allocation (paper §3.2 + footnote 2).

Maps a requirement ``<n, M>`` onto ``n' <= n`` virtual service nodes
under the paper's two simplifying assumptions: (1) full replication,
(2) node granularity of whole machine instances — a node's capacity is
one M or a multiple of M.  "Since each virtual service node is a
virtual machine running on the host OS, there will be a slow-down in
both processing and network transmission [...] we set the slow-down
factor to be 1.5 and we assume no resource aggregation": the CPU and
bandwidth components of every unit are inflated by 1.5 at reservation
time, and k units on one host cost exactly k inflated-M vectors (no
aggregation discount).

Three placement strategies are provided for the ablation study; the
paper's behaviour corresponds to first-fit over its two hosts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.errors import AdmissionError
from repro.core.requirements import ResourceRequirement
from repro.host.reservation import ResourceVector

__all__ = [
    "SLOWDOWN_INFLATION",
    "PlacementStrategy",
    "NodeAssignment",
    "AllocationPlan",
    "inflated_unit_vector",
    "plan_allocation",
]

#: Footnote 2: the conservative slow-down factor applied to CPU and
#: network bandwidth during resource allocation.
SLOWDOWN_INFLATION = 1.5


class PlacementStrategy(enum.Enum):
    FIRST_FIT = "first-fit"
    BEST_FIT = "best-fit"
    WORST_FIT = "worst-fit"


@dataclass(frozen=True)
class NodeAssignment:
    """``units`` machine instances placed on ``host_name`` as one node."""

    host_name: str
    units: int

    def __post_init__(self) -> None:
        if self.units < 1:
            raise ValueError(f"units must be >= 1, got {self.units}")


@dataclass(frozen=True)
class AllocationPlan:
    """The Master's decision for one service creation/resizing."""

    requirement: ResourceRequirement
    unit_vector: ResourceVector  # inflated resources of one M
    assignments: Tuple[NodeAssignment, ...]

    @property
    def n_nodes(self) -> int:
        return len(self.assignments)

    @property
    def total_units(self) -> int:
        return sum(a.units for a in self.assignments)

    def node_vector(self, assignment: NodeAssignment) -> ResourceVector:
        """Resources one node reserves (no aggregation discount)."""
        return self.unit_vector.scaled(float(assignment.units))


def inflated_unit_vector(
    requirement: ResourceRequirement, inflation: float = SLOWDOWN_INFLATION
) -> ResourceVector:
    """One machine instance M with CPU and bandwidth inflated."""
    if inflation < 1.0:
        raise ValueError(f"inflation factor must be >= 1, got {inflation}")
    m = requirement.machine
    return ResourceVector(
        cpu_mhz=m.cpu_mhz * inflation,
        mem_mb=m.mem_mb,
        disk_mb=m.disk_mb,
        bw_mbps=m.bw_mbps * inflation,
    )


def _units_that_fit(available: ResourceVector, unit: ResourceVector) -> int:
    """How many unit vectors fit into ``available``."""
    counts = []
    for attr in ("cpu_mhz", "mem_mb", "disk_mb", "bw_mbps"):
        need = getattr(unit, attr)
        if need > 0:
            counts.append(int((getattr(available, attr) + 1e-9) // need))
    return min(counts) if counts else 0


def plan_allocation(
    requirement: ResourceRequirement,
    availability: Sequence[Tuple[str, ResourceVector]],
    strategy: PlacementStrategy = PlacementStrategy.FIRST_FIT,
    inflation: float = SLOWDOWN_INFLATION,
) -> AllocationPlan:
    """Place ``n`` machine instances onto hosts.

    ``availability`` is the (host name, available vector) list collected
    from the SODA Daemons.  Units landing on the same host merge into a
    single multi-M virtual service node.  Raises
    :class:`AdmissionError` when the requirement cannot be satisfied —
    the §3.2 "request failure".
    """
    unit = inflated_unit_vector(requirement, inflation)
    remaining: Dict[str, ResourceVector] = {}
    order: List[str] = []
    for host_name, vector in availability:
        if host_name in remaining:
            raise ValueError(f"duplicate availability report for host {host_name!r}")
        remaining[host_name] = vector
        order.append(host_name)

    placed: Dict[str, int] = {}
    for _ in range(requirement.n):
        candidates = [h for h in order if _units_that_fit(remaining[h], unit) >= 1]
        if not candidates:
            total_placed = sum(placed.values())
            raise AdmissionError(
                f"cannot satisfy {requirement}: placed {total_placed}/{requirement.n} "
                f"machine instances (inflation {inflation}x on CPU/bandwidth)"
            )
        if strategy is PlacementStrategy.FIRST_FIT:
            chosen = candidates[0]
        elif strategy is PlacementStrategy.BEST_FIT:
            # Tightest fit: fewest remaining units after placement.
            chosen = min(
                candidates, key=lambda h: (_units_that_fit(remaining[h], unit), h)
            )
        else:  # WORST_FIT
            chosen = max(
                candidates,
                key=lambda h: (_units_that_fit(remaining[h], unit), -order.index(h)),
            )
        remaining[chosen] = remaining[chosen] - unit
        placed[chosen] = placed.get(chosen, 0) + 1

    assignments = tuple(
        NodeAssignment(host_name=h, units=placed[h]) for h in order if h in placed
    )
    return AllocationPlan(requirement=requirement, unit_vector=unit, assignments=assignments)
