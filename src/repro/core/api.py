"""The HUPTestbed facade: a whole simulated SODA platform in one object.

Builds and wires everything the examples and experiments need: the
event kernel, the LAN, the HUP hosts with their SODA Daemons (each with
a disjoint IP pool and a bridging module), the SODA Master and Agent,
an ASP-side image repository machine, and client machines.

:func:`build_paper_testbed` reproduces the paper's §4 setup: *seattle*
and *tacoma* on a 100 Mbps LAN, "a number of laptop and desktop PCs
running as the SODA Agent, SODA Master, and service clients".
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.agent import SODAAgent
from repro.core.daemon import SODADaemon
from repro.core.master import SODAMaster
from repro.core.allocation import PlacementStrategy, SLOWDOWN_INFLATION
from repro.host.bridge import BridgingModule, ProxyModule
from repro.host.machine import Host, make_seattle, make_tacoma
from repro.net.ip import IPAddressPool, check_disjoint
from repro.net.lan import LAN, NetworkInterface
from repro.image.repository import ImageRepository
from repro.obs import active as active_observability
from repro.sim.kernel import Process, Simulator
from repro.sim.rng import RandomStreams

__all__ = ["HUPTestbed", "build_paper_testbed"]

CLIENT_NIC_MBPS = 100.0
REPO_NIC_MBPS = 100.0


class HUPTestbed:
    """A fully wired simulated HUP."""

    def __init__(
        self,
        seed: int = 0,
        lan_bandwidth_mbps: float = 100.0,
        lan_latency_s: float = 0.0002,
        strategy: PlacementStrategy = PlacementStrategy.FIRST_FIT,
        inflation: float = SLOWDOWN_INFLATION,
    ):
        self.sim = Simulator()
        # Ambient observability: a hub activated around experiment code
        # attaches to every testbed built inside the `with` block, so
        # experiments need no per-call plumbing to be traced.
        hub = active_observability()
        if hub is not None:
            hub.attach(self.sim)
        self.streams = RandomStreams(seed)
        self.lan = LAN(self.sim, bandwidth_mbps=lan_bandwidth_mbps, latency_s=lan_latency_s)
        self.hosts: Dict[str, Host] = {}
        self.daemons: Dict[str, SODADaemon] = {}
        self._strategy = strategy
        self._inflation = inflation
        self.master: Optional[SODAMaster] = None
        self.agent: Optional[SODAAgent] = None
        self.repositories: Dict[str, ImageRepository] = {}
        self.clients: Dict[str, NetworkInterface] = {}
        self.fleets: list = []  # attached fluid background fleets (hybrid runs)
        self._next_pool_base = 0

    # -- assembly ----------------------------------------------------------
    def add_host(
        self,
        host: Host,
        ip_pool: Optional[IPAddressPool] = None,
        pool_size: int = 16,
        proxy_mode: bool = False,
    ) -> SODADaemon:
        """Attach a host and start its SODA Daemon.

        IP pools default to disjoint /28-sized slices of 128.10.<k>.0,
        honouring §4.3's disjointness requirement.
        """
        if self.master is not None:
            raise RuntimeError("cannot add hosts after finalize()")
        if host.name in self.hosts:
            raise ValueError(f"host {host.name!r} already added")
        if host.nic is None:
            host.attach(self.lan)
        if ip_pool is None:
            base = 9 + self._next_pool_base
            self._next_pool_base += 1
            ip_pool = IPAddressPool(f"128.10.{base}.125", size=pool_size, owner=host.name)
        networking = (
            ProxyModule(host_ip=f"128.10.0.{len(self.hosts) + 1}", host_name=host.name)
            if proxy_mode
            else BridgingModule(host.name)
        )
        daemon = SODADaemon(
            sim=self.sim, host=host, lan=self.lan, ip_pool=ip_pool, networking=networking
        )
        self.hosts[host.name] = host
        self.daemons[host.name] = daemon
        return daemon

    def finalize(self) -> "HUPTestbed":
        """Create the Master and Agent once all hosts are added."""
        if self.master is not None:
            raise RuntimeError("already finalized")
        overlap = check_disjoint([d.ip_pool for d in self.daemons.values()])
        if overlap is not None:
            raise ValueError(f"IP pools of {overlap[0]!r} and {overlap[1]!r} overlap")
        self.master = SODAMaster(
            self.sim,
            self.lan,
            list(self.daemons.values()),
            strategy=self._strategy,
            inflation=self._inflation,
        )
        self.agent = SODAAgent(self.sim, self.master)
        return self

    def add_repository(self, name: str = "asp-repo") -> ImageRepository:
        """An ASP-side image repository machine on the LAN."""
        if name in self.repositories:
            raise ValueError(f"repository {name!r} already exists")
        nic = self.lan.nic(name, REPO_NIC_MBPS)
        repo = ImageRepository(name, nic)
        self.repositories[name] = repo
        return repo

    def add_client(self, name: str) -> NetworkInterface:
        """A client machine NIC on the LAN."""
        if name in self.clients:
            raise ValueError(f"client {name!r} already exists")
        nic = self.lan.nic(name, CLIENT_NIC_MBPS)
        self.clients[name] = nic
        return nic

    def add_fluid_fleet(
        self,
        n_hosts: int = 1000,
        n_clusters: int = 20,
        specs=None,
        fidelity: str = "fluid",
        **cluster_kwargs,
    ):
        """Attach an aggregated background fleet (hybrid fidelity mode).

        The fleet's clusters own their *own* LAN segments and draw from
        ``fluid:*`` named streams, so attaching one — at either fidelity
        — leaves every focus-service digest bit-identical (the hybrid
        contract; see :mod:`repro.sim.fluid`).  Returns the
        :class:`~repro.sim.fluid.FluidBackgroundLoad`; start it with
        ``fleet.start(duration_s)`` alongside focus traffic or drive it
        to completion with ``testbed.run(fleet.run(duration_s))``.
        """
        from repro.sim.fluid import (
            FluidBackgroundLoad,
            FluidCluster,
            FluidServiceSpec,
        )

        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if n_hosts < n_clusters:
            raise ValueError(
                f"n_hosts ({n_hosts}) must cover n_clusters ({n_clusters})"
            )
        if specs is None:
            specs = [
                FluidServiceSpec(
                    name="background-web",
                    arrival_rps=100.0 * n_clusters,
                    mean_batch=200,
                )
            ]
        base, extra = divmod(n_hosts, n_clusters)
        clusters = [
            FluidCluster(
                self.sim,
                f"bg-cluster-{c}",
                base + (1 if c < extra else 0),
                **cluster_kwargs,
            )
            for c in range(n_clusters)
        ]
        fleet = FluidBackgroundLoad(
            self.sim, self.streams, clusters, list(specs), fidelity=fidelity
        )
        self.fleets.append(fleet)
        return fleet

    # -- execution ------------------------------------------------------------
    def run(self, generator, name: str = "", limit: float = float("inf")) -> Any:
        """Drive one simulated process to completion and return its value."""
        process = self.sim.process(generator, name=name)
        return self.sim.run_until_process(process, limit=limit)

    def spawn(self, generator, name: str = "") -> Process:
        """Start a background simulated process."""
        return self.sim.process(generator, name=name)

    @property
    def now(self) -> float:
        return self.sim.now


def build_paper_testbed(
    seed: int = 0,
    strategy: PlacementStrategy = PlacementStrategy.FIRST_FIT,
    proxy_mode: bool = False,
) -> HUPTestbed:
    """The paper's §4 testbed: seattle + tacoma on a 100 Mbps LAN."""
    testbed = HUPTestbed(seed=seed, strategy=strategy)
    testbed.add_host(make_seattle(testbed.sim), proxy_mode=proxy_mode)
    testbed.add_host(make_tacoma(testbed.sim), proxy_mode=proxy_mode)
    testbed.finalize()
    return testbed
