"""Off-line QoS/resource profiling: deriving <n, M>.

Paper §3: "The resource requirement specification is the result of
off-line QoS/resource profiling [13], which is out of the scope of this
paper."  This module supplies that missing piece as a library feature:
given an application's per-request execution profile and its service
level objective, derive the ``<n, M>`` to hand to
``SODA_service_creation``.

The model prices one machine instance M as a single server whose
per-request holding time combines (a) guest CPU time at the *inflated*
CPU share (so the UML slow-down is already paid for, footnote 2) and
(b) response transmission at M's bandwidth share.  An M/M/1-style
waiting-time expansion ``response ~ holding / (1 - utilisation)`` turns
the SLO into a maximum safe utilisation, and the peak request rate into
a unit count.  The derivation is validated end-to-end in the test
suite: deploying the derived requirement and replaying the declared
load meets the declared SLO.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.allocation import SLOWDOWN_INFLATION
from repro.core.errors import InvalidRequestError
from repro.core.requirements import MachineConfig, ResourceRequirement
from repro.guestos.syscall import SyscallCostModel, SyscallMix
from repro.net.http import TCP_EFFICIENCY

__all__ = ["ServiceLoadSpec", "ProfileReport", "InfeasibleSLOError", "ResourceProfiler"]

# RAM the guest OS itself needs before application working set.
GUEST_OS_FLOOR_MB = 64.0


class InfeasibleSLOError(InvalidRequestError):
    """The SLO cannot be met with the proposed machine configuration."""


@dataclass(frozen=True)
class ServiceLoadSpec:
    """What the ASP knows about its application."""

    request_mix: SyscallMix
    response_mb: float
    peak_rps: float
    target_response_s: float
    working_set_mb: float = 64.0
    dataset_mb: float = 256.0

    def __post_init__(self) -> None:
        if self.response_mb < 0:
            raise ValueError(f"negative response size: {self.response_mb}")
        if self.peak_rps <= 0:
            raise ValueError(f"peak rate must be positive, got {self.peak_rps}")
        if self.target_response_s <= 0:
            raise ValueError(f"SLO must be positive, got {self.target_response_s}")
        if self.working_set_mb < 0 or self.dataset_mb < 0:
            raise ValueError("working set and dataset must be non-negative")


@dataclass(frozen=True)
class ProfileReport:
    """The derivation, fully shown."""

    requirement: ResourceRequirement
    holding_time_s: float
    unit_capacity_rps: float
    max_utilisation: float
    expected_response_s: float
    expected_utilisation: float


class ResourceProfiler:
    """Derives ``<n, M>`` from a :class:`ServiceLoadSpec`."""

    def __init__(
        self,
        syscall_model: SyscallCostModel = None,
        inflation: float = SLOWDOWN_INFLATION,
    ):
        if inflation < 1.0:
            raise ValueError(f"inflation must be >= 1, got {inflation}")
        self.model = syscall_model or SyscallCostModel()
        self.inflation = inflation

    def holding_time_s(self, spec: ServiceLoadSpec, machine: MachineConfig) -> float:
        """Per-request busy time of one machine-instance worker."""
        cpu_s = self.model.mix_time_s(
            spec.request_mix, machine.cpu_mhz * self.inflation, in_uml=True
        )
        wire_mb = spec.response_mb / TCP_EFFICIENCY
        transmit_s = wire_mb * 8.0 / machine.bw_mbps
        return cpu_s + transmit_s

    def derive(
        self, spec: ServiceLoadSpec, machine: MachineConfig = None
    ) -> ProfileReport:
        """The full derivation; raises :class:`InfeasibleSLOError` when
        the SLO is unreachable with this M."""
        machine = machine or MachineConfig()
        # Memory and disk gates first: one unit must hold the guest OS
        # floor + working set, and the dataset + a slim rootfs.
        if machine.mem_mb < GUEST_OS_FLOOR_MB + spec.working_set_mb:
            raise InfeasibleSLOError(
                f"M.mem {machine.mem_mb} MB cannot hold the guest OS floor "
                f"({GUEST_OS_FLOOR_MB} MB) plus working set {spec.working_set_mb} MB"
            )
        if machine.disk_mb < spec.dataset_mb:
            raise InfeasibleSLOError(
                f"M.disk {machine.disk_mb} MB cannot hold the {spec.dataset_mb} MB dataset"
            )
        holding = self.holding_time_s(spec, machine)
        if holding >= spec.target_response_s:
            raise InfeasibleSLOError(
                f"a lone request takes {holding:.3f}s on one M; the SLO "
                f"{spec.target_response_s:.3f}s is unreachable — use a larger M"
            )
        # response ~ holding / (1 - rho)  =>  rho_max = 1 - holding/target.
        max_utilisation = 1.0 - holding / spec.target_response_s
        unit_capacity = 1.0 / holding
        n = max(1, math.ceil(spec.peak_rps / (max_utilisation * unit_capacity)))
        expected_utilisation = spec.peak_rps * holding / n
        expected_response = holding / (1.0 - expected_utilisation)
        return ProfileReport(
            requirement=ResourceRequirement(n=n, machine=machine),
            holding_time_s=holding,
            unit_capacity_rps=unit_capacity,
            max_utilisation=max_utilisation,
            expected_response_s=expected_response,
            expected_utilisation=expected_utilisation,
        )

    def derive_requirement(
        self, spec: ServiceLoadSpec, machine: MachineConfig = None
    ) -> ResourceRequirement:
        """Just the ``<n, M>``."""
        return self.derive(spec, machine).requirement
