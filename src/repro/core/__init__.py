"""SODA core: the paper's contribution.

The entities of §2.2/§3, layered on the substrates:

* :mod:`repro.core.requirements` — machine configuration ``M`` and the
  ``<n, M>`` resource requirement (Table 1).
* :mod:`repro.core.agent` — the **SODA Agent**: ASP-facing API with
  authentication and billing (§3.1, §4.1).
* :mod:`repro.core.master` — the **SODA Master**: admission control,
  ``<n, M>`` to virtual-service-node mapping, priming coordination,
  service switch creation, resizing, teardown (§3.2, §3.4).
* :mod:`repro.core.daemon` — the **SODA Daemon** on each HUP host:
  reservations, image download, rootfs tailoring, UML bootstrap, IP
  assignment, bridging updates (§3.3, §4.3).
* :mod:`repro.core.switch` — the per-service **service switch** with a
  replaceable request switching policy (§3.4).
* :mod:`repro.core.node` — the virtual service node wrapper the switch
  dispatches to.
* :mod:`repro.core.allocation` — the Master's placement strategies,
  including the slow-down inflation factor (footnote 2).
* :mod:`repro.core.config` — the service configuration file (Table 3).
* :mod:`repro.core.federation` — multi-HUP federation (a §3.5
  future-work item, implemented as an extension).
* :mod:`repro.core.api` — the :class:`HUPTestbed` facade wiring a whole
  simulated platform together (what examples and experiments use).
"""

from repro.core.agent import SODAAgent
from repro.core.allocation import (
    AllocationPlan,
    NodeAssignment,
    PlacementStrategy,
    SLOWDOWN_INFLATION,
    plan_allocation,
)
from repro.core.api import HUPTestbed, build_paper_testbed
from repro.core.auth import ASPAccount, ASPRegistry
from repro.core.autoscaler import AutoscalerConfig, ReactiveAutoscaler
from repro.core.billing import BillingLedger
from repro.core.config import BackEndDirective, ServiceConfigFile
from repro.core.daemon import SODADaemon
from repro.core.errors import (
    AdmissionError,
    AuthenticationError,
    InvalidRequestError,
    RequestSheddedError,
    ServiceNotFoundError,
    SODAError,
)
from repro.core.federation import FederatedHUP
from repro.core.master import SODAMaster
from repro.core.monitoring import HUPMonitor, UtilisationSampler
from repro.core.node import Request, VirtualServiceNode
from repro.core.profiling import ResourceProfiler, ServiceLoadSpec
from repro.core.recovery import NodeWatchdog, reboot_node
from repro.core.policies import (
    LeastConnectionsPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    SwitchingPolicy,
    WeightedRoundRobinPolicy,
)
from repro.core.requirements import MachineConfig, ResourceRequirement
from repro.core.service import ServiceRecord, ServiceState
from repro.core.switch import ServiceSwitch

__all__ = [
    "ASPAccount",
    "ASPRegistry",
    "AdmissionError",
    "AllocationPlan",
    "AuthenticationError",
    "AutoscalerConfig",
    "BackEndDirective",
    "BillingLedger",
    "FederatedHUP",
    "HUPMonitor",
    "HUPTestbed",
    "NodeWatchdog",
    "ResourceProfiler",
    "ServiceLoadSpec",
    "UtilisationSampler",
    "reboot_node",
    "InvalidRequestError",
    "LeastConnectionsPolicy",
    "MachineConfig",
    "NodeAssignment",
    "PlacementStrategy",
    "RandomPolicy",
    "ReactiveAutoscaler",
    "Request",
    "RequestSheddedError",
    "ResourceRequirement",
    "RoundRobinPolicy",
    "SLOWDOWN_INFLATION",
    "SODAAgent",
    "SODADaemon",
    "SODAError",
    "SODAMaster",
    "ServiceConfigFile",
    "ServiceNotFoundError",
    "ServiceRecord",
    "ServiceState",
    "ServiceSwitch",
    "SwitchingPolicy",
    "VirtualServiceNode",
    "WeightedRoundRobinPolicy",
    "build_paper_testbed",
    "plan_allocation",
]
