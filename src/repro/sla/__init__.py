"""Service-level agreements: the promise layer over <n, M> reservations.

The paper's utility framing (ASPs buy guaranteed capacity; the Agent
bills for it, §2.2) implies a contract the repo previously lacked.
This package supplies it end to end:

* :mod:`repro.sla.contract` — :class:`SLAContract` (service class,
  latency percentile objectives over sliding breach windows,
  availability/throughput floors, penalty schedule).
* :mod:`repro.sla.monitor` — :class:`SLOMonitor`, a simulated process
  tapping per-request outcomes from the service switch and emitting
  deterministic :class:`SLAViolation` records.
* :mod:`repro.sla.enforcement` — class-priority load shedding at the
  switch (bronze before silver before gold), SLA-aware admission in the
  SODA Master, and breach-triggered autoscaling.
* :mod:`repro.sla.penalties` — violation records become
  :class:`~repro.core.billing.CreditNote` entries; invoices net out
  accrual minus SLA credits.
* :mod:`repro.sla.report` — per-service compliance scorecards exported
  through the metrics CSV pipeline.

Layering rule: nothing in this package imports the control-plane
modules (`core.switch`, `core.master`, `core.agent`,
`core.autoscaler`) at module level — the SLA layer observes and advises
the control plane through duck-typed hooks, which is also what keeps
the imports acyclic.
"""

from repro.sla.contract import (
    LatencyObjective,
    PenaltySchedule,
    ServiceClass,
    SLAContract,
)
from repro.sla.enforcement import (
    BreachEscalator,
    ClassPriorityShedder,
    check_admissible,
    estimate_capacity_rps,
)
from repro.sla.monitor import SLAViolation, SLOMonitor
from repro.sla.penalties import PenaltySettler, Settlement, credit_for_violations
from repro.sla.report import (
    ComplianceSummary,
    compliance_result,
    compliance_summary,
    export_compliance,
)

__all__ = [
    "BreachEscalator",
    "ClassPriorityShedder",
    "ComplianceSummary",
    "LatencyObjective",
    "PenaltySchedule",
    "PenaltySettler",
    "SLAContract",
    "SLAViolation",
    "SLOMonitor",
    "ServiceClass",
    "Settlement",
    "check_admissible",
    "compliance_result",
    "compliance_summary",
    "credit_for_violations",
    "estimate_capacity_rps",
    "export_compliance",
]
