"""Service-level agreements: contracts, classes and objectives.

The paper's utility-platform framing presumes ASPs buy *guaranteed*
capacity — the Agent "performs other administrative tasks such as
billing" (§2.2) — yet a raw ``<n, M>`` reservation says nothing about
what the ASP was promised.  An :class:`SLAContract` is that missing
promise: a service class (gold/silver/bronze), latency percentile
objectives over sliding breach windows, an availability floor, a
throughput floor, and a penalty schedule that converts breaches into
billing credits (see :mod:`repro.sla.penalties`).

This module is deliberately free of any dependency on the core control
plane so that contracts can be constructed, validated and serialised
without a simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "ServiceClass",
    "LatencyObjective",
    "PenaltySchedule",
    "SLAContract",
]


class ServiceClass(enum.Enum):
    """Contract tier; decides shedding order under platform pressure."""

    GOLD = "gold"
    SILVER = "silver"
    BRONZE = "bronze"

    @property
    def shed_rank(self) -> int:
        """Lower rank is shed first (bronze before silver before gold)."""
        return _SHED_RANK[self]

    @property
    def queue_tolerance(self) -> int:
        """Multiplier on the shed queue limit: higher classes tolerate
        deeper backlogs before their traffic is dropped."""
        return _QUEUE_TOLERANCE[self]


_SHED_RANK = {ServiceClass.BRONZE: 0, ServiceClass.SILVER: 1, ServiceClass.GOLD: 2}
_QUEUE_TOLERANCE = {ServiceClass.BRONZE: 1, ServiceClass.SILVER: 2, ServiceClass.GOLD: 4}


@dataclass(frozen=True)
class LatencyObjective:
    """``p<percentile> <= threshold_s`` over a sliding breach window."""

    percentile: float
    threshold_s: float
    window_s: float = 30.0
    min_samples: int = 5

    def __post_init__(self) -> None:
        if not 0 < self.percentile <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {self.percentile}")
        if self.threshold_s <= 0:
            raise ValueError(f"threshold must be positive, got {self.threshold_s}")
        if self.window_s <= 0:
            raise ValueError(f"window must be positive, got {self.window_s}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")

    def __str__(self) -> str:
        return f"p{self.percentile:g} <= {self.threshold_s:g}s over {self.window_s:g}s"


@dataclass(frozen=True)
class PenaltySchedule:
    """How breaches turn into money.

    Each recorded :class:`~repro.sla.monitor.SLAViolation` earns the ASP
    ``credit_per_violation`` currency units, capped so the total credit
    for a service never exceeds ``cap_fraction`` of the charges the
    service has accrued — an SLA refunds a bill, it never inverts it.
    """

    credit_per_violation: float = 0.05
    cap_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.credit_per_violation < 0:
            raise ValueError(
                f"credit cannot be negative: {self.credit_per_violation}"
            )
        if not 0 <= self.cap_fraction <= 1:
            raise ValueError(f"cap_fraction must be in [0, 1], got {self.cap_fraction}")


@dataclass(frozen=True)
class SLAContract:
    """The promise attached to one hosted service.

    ``window_s``/``min_samples`` govern the availability and throughput
    floors; each latency objective carries its own window.
    """

    service_class: ServiceClass
    latency: Tuple[LatencyObjective, ...] = ()
    availability_floor: Optional[float] = None
    throughput_floor_rps: Optional[float] = None
    penalties: PenaltySchedule = field(default_factory=PenaltySchedule)
    window_s: float = 30.0
    min_samples: int = 5

    def __post_init__(self) -> None:
        if not isinstance(self.service_class, ServiceClass):
            raise ValueError(f"not a service class: {self.service_class!r}")
        if isinstance(self.latency, LatencyObjective):
            object.__setattr__(self, "latency", (self.latency,))
        if self.availability_floor is not None and not 0 < self.availability_floor <= 1:
            raise ValueError(
                f"availability floor must be in (0, 1], got {self.availability_floor}"
            )
        if self.throughput_floor_rps is not None and self.throughput_floor_rps <= 0:
            raise ValueError(
                f"throughput floor must be positive, got {self.throughput_floor_rps}"
            )
        if self.window_s <= 0:
            raise ValueError(f"window must be positive, got {self.window_s}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")
        if not self.latency and self.availability_floor is None and (
            self.throughput_floor_rps is None
        ):
            raise ValueError("contract declares no objective at all")

    @property
    def has_latency_objective(self) -> bool:
        return bool(self.latency)

    # -- presets ----------------------------------------------------------
    @classmethod
    def gold(cls, p95_s: float = 0.5, window_s: float = 30.0) -> "SLAContract":
        """Premium tier: tight latency, high availability, rich credits."""
        return cls(
            service_class=ServiceClass.GOLD,
            latency=(LatencyObjective(95.0, p95_s, window_s=window_s),),
            availability_floor=0.99,
            penalties=PenaltySchedule(credit_per_violation=0.10),
            window_s=window_s,
        )

    @classmethod
    def silver(cls, p95_s: float = 1.5, window_s: float = 30.0) -> "SLAContract":
        """Mid tier: looser latency, modest credits."""
        return cls(
            service_class=ServiceClass.SILVER,
            latency=(LatencyObjective(95.0, p95_s, window_s=window_s),),
            availability_floor=0.95,
            penalties=PenaltySchedule(credit_per_violation=0.05),
            window_s=window_s,
        )

    @classmethod
    def bronze(cls, p95_s: float = 5.0, window_s: float = 30.0) -> "SLAContract":
        """Best-effort tier: shed first, token credits."""
        return cls(
            service_class=ServiceClass.BRONZE,
            latency=(LatencyObjective(95.0, p95_s, window_s=window_s),),
            penalties=PenaltySchedule(credit_per_violation=0.01),
            window_s=window_s,
        )
