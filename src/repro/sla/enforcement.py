"""SLA enforcement: shedding, admission, and breach-triggered scaling.

Three mechanisms keep promises enforceable rather than aspirational:

* :class:`ClassPriorityShedder` — class-priority load shedding at the
  service switch.  When backlog (the switch dispatcher queue plus the
  back-end worker queues) saturates, bronze traffic is dropped first,
  then silver, then gold: each class tolerates a queue depth scaled by
  its :attr:`~repro.sla.contract.ServiceClass.queue_tolerance`.
* :func:`check_admissible` — SLA-aware admission in the SODA Master: a
  contract whose objectives are infeasible for the requested ``<n, M>``
  is rejected up front instead of accruing guaranteed penalties.
* :class:`BreachEscalator` — the bridge from monitoring to elasticity:
  sustained violations are forwarded to a
  :class:`~repro.core.autoscaler.ReactiveAutoscaler` as resize requests.

Only :mod:`repro.core.errors` is imported from the control plane, so
this module can be loaded by the SODA Master without an import cycle.
"""

from __future__ import annotations

from typing import Any, List

from repro.core.errors import AdmissionError
from repro.sla.contract import ServiceClass, SLAContract
from repro.sla.monitor import SLAViolation

__all__ = [
    "DEFAULT_SHED_QUEUE_LIMIT",
    "NOMINAL_REQUEST_MCYCLES",
    "MIN_LATENCY_FACTOR",
    "ClassPriorityShedder",
    "estimate_capacity_rps",
    "check_admissible",
    "BreachEscalator",
]

# Backlog (queued requests) at which a BRONZE-class service starts
# shedding; silver and gold scale this by their queue tolerance.
DEFAULT_SHED_QUEUE_LIMIT = 8

# Conservative per-request CPU estimate used for feasibility math: the
# web content mix at 0.25 MB (user work + interposed syscalls, see
# docs/MODELING.md §2) costs ~2.5 Mcycles.
NOMINAL_REQUEST_MCYCLES = 2.5

# A latency objective below this multiple of the bare service time is
# infeasible even with an empty queue (dispatch + transfer overheads).
MIN_LATENCY_FACTOR = 2.0


class ClassPriorityShedder:
    """Queue-depth load shedding scaled by service class.

    Attached to a :class:`~repro.core.switch.ServiceSwitch` (duck-typed:
    anything with ``_dispatcher.queue`` and ``nodes[*].workers.queue``).
    Under shared-platform pressure every class sees the same backlog
    growth, so the class with the smallest limit — bronze — sheds first.

    With ``capacity_aware=True`` the limit additionally shrinks in
    proportion to the fraction of the service's back-ends currently
    able to serve (graceful degradation under faults): when replicas
    crash, capacity drops, so the tolerable backlog drops with it and
    low classes shed *before* the queue built for full capacity fills.
    The default is off, preserving the PR 1 behaviour bit-for-bit.
    """

    def __init__(
        self,
        service_class: ServiceClass,
        base_queue_limit: int = DEFAULT_SHED_QUEUE_LIMIT,
        capacity_aware: bool = False,
    ):
        if base_queue_limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {base_queue_limit}")
        self.service_class = service_class
        self.base_queue_limit = base_queue_limit
        self.capacity_aware = capacity_aware

    @property
    def queue_limit(self) -> int:
        return self.base_queue_limit * self.service_class.queue_tolerance

    def effective_queue_limit(self, switch: Any) -> int:
        """The limit in force right now (capacity-scaled when enabled)."""
        limit = self.queue_limit
        if not self.capacity_aware:
            return limit
        nodes = switch.nodes
        total = len(nodes)
        if total == 0:
            return limit
        healthy = sum(1 for node in nodes if node.is_available)
        # Never scale below 1: a fully-dark service still sheds (every
        # request) rather than dividing by zero.
        return max(1, (limit * healthy) // total)

    def pressure(self, switch: Any) -> int:
        """Requests queued but not yet being served, switch + back-ends."""
        waiting = len(switch._dispatcher.queue)
        for node in switch.nodes:
            waiting += len(node.workers.queue)
        return waiting

    def should_shed(self, switch: Any) -> bool:
        return self.pressure(switch) >= self.effective_queue_limit(switch)


def estimate_capacity_rps(n: int, cpu_mhz: float) -> float:
    """Sustainable request rate of ``n`` machine instances of ``M``."""
    if n < 1 or cpu_mhz <= 0:
        raise ValueError(f"need n >= 1 and positive cpu, got n={n}, cpu={cpu_mhz}")
    return n * cpu_mhz / NOMINAL_REQUEST_MCYCLES


def check_admissible(contract: SLAContract, requirement: Any) -> None:
    """Reject contracts infeasible for the requested ``<n, M>``.

    ``requirement`` is a :class:`~repro.core.requirements.ResourceRequirement`
    (duck-typed to avoid the import cycle through the Master).  Raises
    :class:`~repro.core.errors.AdmissionError` on infeasibility.
    """
    cpu_mhz = requirement.machine.cpu_mhz
    floor = contract.throughput_floor_rps
    if floor is not None:
        capacity = estimate_capacity_rps(requirement.n, cpu_mhz)
        if floor > capacity:
            raise AdmissionError(
                f"throughput floor {floor:g} rps exceeds the ~{capacity:.0f} rps "
                f"capacity of {requirement}"
            )
    min_feasible_s = MIN_LATENCY_FACTOR * NOMINAL_REQUEST_MCYCLES / cpu_mhz
    for objective in contract.latency:
        if objective.threshold_s < min_feasible_s:
            raise AdmissionError(
                f"latency objective {objective} is below the {min_feasible_s:.4g}s "
                f"feasibility floor of a {cpu_mhz:g} MHz machine instance"
            )


class BreachEscalator:
    """Turns sustained SLO breaches into autoscaler resize requests.

    Registered as a breach listener on an
    :class:`~repro.sla.monitor.SLOMonitor`; after every ``sustained``
    violations it calls ``autoscaler.notify_breach`` (duck-typed to
    :meth:`repro.core.autoscaler.ReactiveAutoscaler.notify_breach`), so
    a transient blip does not trigger a resize but a persistent breach
    does.
    """

    def __init__(self, autoscaler: Any, sustained: int = 2):
        if sustained < 1:
            raise ValueError(f"sustained must be >= 1, got {sustained}")
        self.autoscaler = autoscaler
        self.sustained = sustained
        self.escalations = 0
        self.forwarded: List[SLAViolation] = []
        self._pending = 0

    def wire(self, monitor: Any) -> "BreachEscalator":
        """Subscribe to a monitor's breach feed; returns self."""
        monitor.breach_listeners.append(self)
        return self

    def __call__(self, violation: SLAViolation) -> None:
        self._pending += 1
        if self._pending < self.sustained:
            return
        self._pending = 0
        self.escalations += 1
        self.forwarded.append(violation)
        self.autoscaler.notify_breach(violation)
