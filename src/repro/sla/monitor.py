"""Runtime SLO monitoring.

The :class:`SLOMonitor` taps per-request outcomes from a service's
switch (success latency, failures, shed requests) into sliding windows
and periodically evaluates them against the service's
:class:`~repro.sla.contract.SLAContract`, emitting timestamped
:class:`SLAViolation` records.  Everything is driven off simulated time
and deterministic data structures, so two runs with the same seed
produce bit-identical violation streams.

The monitor never imports the control plane: it attaches to any object
exposing ``add_outcome_listener`` (duck-typed to
:class:`repro.core.switch.ServiceSwitch`), which keeps the SLA layer a
strict consumer of the serving path.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional

import numpy as np

from repro.obs.metrics import registry_of
from repro.sla.contract import SLAContract
from repro.sim.kernel import Event, Simulator

__all__ = ["OUTCOME_OK", "OUTCOME_FAILED", "OUTCOME_SHED", "SLAViolation", "SLOMonitor"]

# Request outcome tags delivered by the switch.
OUTCOME_OK = "ok"
OUTCOME_FAILED = "failed"
OUTCOME_SHED = "shed"


@dataclass(frozen=True)
class SLAViolation:
    """One detected breach of one objective at one evaluation instant."""

    time: float
    service: str
    kind: str  # "latency" | "availability" | "throughput"
    observed: float
    limit: float
    window_s: float
    detail: str = ""

    def __str__(self) -> str:
        return (
            f"t={self.time:.1f}s {self.service}: {self.kind} "
            f"{self.observed:.4g} vs limit {self.limit:.4g} "
            f"({self.detail or f'{self.window_s:g}s window'})"
        )


class SLOMonitor:
    """Sliding-window SLO evaluation for one service."""

    def __init__(
        self,
        sim: Simulator,
        service_name: str,
        contract: SLAContract,
        check_period_s: float = 5.0,
    ):
        if check_period_s <= 0:
            raise ValueError(f"check period must be positive, got {check_period_s}")
        self.sim = sim
        self.service_name = service_name
        self.contract = contract
        self.check_period_s = check_period_s
        # Time-sorted outcome streams (appends happen in sim-time order).
        self._ok_times: List[float] = []
        self._ok_latencies: List[float] = []
        self._fail_times: List[float] = []
        self._shed_times: List[float] = []
        # Cumulative counters for the compliance report.
        self.total_ok = 0
        self.total_failed = 0
        self.total_shed = 0
        self.first_shed_time: Optional[float] = None
        self.violations: List[SLAViolation] = []
        self.evaluations = 0
        self.breach_evaluations = 0
        self.breach_listeners: List[Callable[[SLAViolation], None]] = []

    # -- ingestion --------------------------------------------------------
    def attach(self, switch: Any) -> None:
        """Subscribe to a switch's per-request outcome feed."""
        switch.add_outcome_listener(self.observe)

    def observe(self, time: float, latency_s: Optional[float], outcome: str) -> None:
        """One request outcome (called by the switch)."""
        if outcome == OUTCOME_OK:
            if latency_s is None:
                raise ValueError("successful outcome needs a latency")
            self._ok_times.append(time)
            self._ok_latencies.append(latency_s)
            self.total_ok += 1
        elif outcome == OUTCOME_FAILED:
            self._fail_times.append(time)
            self.total_failed += 1
        elif outcome == OUTCOME_SHED:
            self._shed_times.append(time)
            self.total_shed += 1
            if self.first_shed_time is None:
                self.first_shed_time = time
        else:
            raise ValueError(f"unknown outcome {outcome!r}")

    # -- window arithmetic ------------------------------------------------
    @staticmethod
    def _count_since(times: List[float], start: float) -> int:
        return len(times) - bisect_left(times, start)

    def _latencies_since(self, start: float) -> List[float]:
        return self._ok_latencies[bisect_left(self._ok_times, start):]

    # -- evaluation -------------------------------------------------------
    def evaluate(self, now: Optional[float] = None) -> List[SLAViolation]:
        """Check every objective against its sliding window at ``now``.

        Returns (without recording) the violations detected; the
        :meth:`run` loop records them and notifies breach listeners.
        """
        now = self.sim.now if now is None else now
        contract = self.contract
        found: List[SLAViolation] = []
        for objective in contract.latency:
            window = self._latencies_since(now - objective.window_s)
            if len(window) < objective.min_samples:
                continue
            observed = float(np.percentile(window, objective.percentile))
            if observed > objective.threshold_s:
                found.append(
                    SLAViolation(
                        time=now,
                        service=self.service_name,
                        kind="latency",
                        observed=observed,
                        limit=objective.threshold_s,
                        window_s=objective.window_s,
                        detail=str(objective),
                    )
                )
        start = now - contract.window_s
        ok = self._count_since(self._ok_times, start)
        bad = self._count_since(self._fail_times, start) + self._count_since(
            self._shed_times, start
        )
        offered = ok + bad
        if contract.availability_floor is not None and offered >= contract.min_samples:
            availability = ok / offered
            if availability < contract.availability_floor:
                found.append(
                    SLAViolation(
                        time=now,
                        service=self.service_name,
                        kind="availability",
                        observed=availability,
                        limit=contract.availability_floor,
                        window_s=contract.window_s,
                    )
                )
        if contract.throughput_floor_rps is not None:
            goodput = ok / contract.window_s
            demand = offered / contract.window_s
            # Only a breach when demand was there and we under-delivered.
            if demand >= contract.throughput_floor_rps and (
                goodput < contract.throughput_floor_rps
            ):
                found.append(
                    SLAViolation(
                        time=now,
                        service=self.service_name,
                        kind="throughput",
                        observed=goodput,
                        limit=contract.throughput_floor_rps,
                        window_s=contract.window_s,
                    )
                )
        return found

    def run(self, duration_s: float) -> Generator[Event, Any, List[SLAViolation]]:
        """Evaluate periodically for ``duration_s`` (a sim process)."""
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        deadline = self.sim.now + duration_s
        while self.sim.now < deadline:
            yield self.sim.timeout(self.check_period_s)
            found = self.evaluate()
            self.evaluations += 1
            if found:
                self.breach_evaluations += 1
                self.violations.extend(found)
                registry = registry_of(self.sim)
                for violation in found:
                    if registry is not None:
                        registry.counter(
                            "soda_sla_breaches_total",
                            "SLA objective breaches detected, by kind.",
                            ("service", "kind"),
                        ).inc(service=self.service_name, kind=violation.kind)
                    for listener in self.breach_listeners:
                        listener(violation)
        return self.violations

    # -- queries ----------------------------------------------------------
    @property
    def total_requests(self) -> int:
        return self.total_ok + self.total_failed + self.total_shed

    def violations_of(self, kind: str) -> List[SLAViolation]:
        return [v for v in self.violations if v.kind == kind]
