"""Penalty settlement: violation records become billing credits.

The contract's :class:`~repro.sla.contract.PenaltySchedule` prices each
recorded :class:`~repro.sla.monitor.SLAViolation`; a
:class:`PenaltySettler` converts a monitor's violation stream into
:class:`~repro.core.billing.CreditNote` entries on the
:class:`~repro.core.billing.BillingLedger`, so the ASP's invoice nets
out accrual minus SLA credits.  Settlement is incremental and
idempotent per violation: settling twice never double-credits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.billing import BillingLedger
from repro.obs import ambient_registry
from repro.sla.contract import PenaltySchedule
from repro.sla.monitor import SLAViolation

__all__ = ["Settlement", "credit_for_violations", "PenaltySettler"]


@dataclass(frozen=True)
class Settlement:
    """Outcome of one settlement pass for one service."""

    service: str
    settled_at: float
    n_violations: int
    credit: float
    capped: bool


def credit_for_violations(
    schedule: PenaltySchedule,
    n_violations: int,
    gross: float,
    already_credited: float = 0.0,
) -> float:
    """Credit owed for ``n_violations`` new breaches.

    The uncapped credit is ``n * credit_per_violation``; the total
    credited against a service never exceeds ``cap_fraction * gross``
    (an SLA refunds charges, it never inverts the invoice).
    """
    if n_violations < 0:
        raise ValueError(f"violation count cannot be negative: {n_violations}")
    if gross < 0 or already_credited < 0:
        raise ValueError("gross and credited amounts cannot be negative")
    uncapped = schedule.credit_per_violation * n_violations
    headroom = max(0.0, schedule.cap_fraction * gross - already_credited)
    return min(uncapped, headroom)


class PenaltySettler:
    """Incrementally settles violation streams into ledger credits."""

    def __init__(self, ledger: BillingLedger):
        self.ledger = ledger
        self._settled: Dict[str, int] = {}  # service -> violations already priced
        self.settlements: list = []

    def settled_count(self, service: str) -> int:
        return self._settled.get(service, 0)

    def settle(
        self,
        service: str,
        asp: str,
        schedule: PenaltySchedule,
        violations: Sequence[SLAViolation],
        now: float,
    ) -> Settlement:
        """Price every not-yet-settled violation and post the credit.

        ``violations`` is the monitor's append-only record list; only
        entries beyond the last settled index are priced.
        """
        start = self._settled.get(service, 0)
        fresh = list(violations[start:])
        gross = self.ledger.service_gross(service, now)
        already = self.ledger.credit_total(service=service)
        credit = credit_for_violations(
            schedule, len(fresh), gross, already_credited=already
        )
        capped = credit < schedule.credit_per_violation * len(fresh)
        if credit > 0:
            kinds = sorted({v.kind for v in fresh})
            self.ledger.add_credit(
                service=service,
                asp=asp,
                now=now,
                amount=credit,
                reason=f"SLA: {len(fresh)} violation(s) [{', '.join(kinds)}]",
            )
            # The settler has no simulator handle, so its credit counter
            # reports through the ambiently active observability hub.
            registry = ambient_registry()
            if registry is not None:
                registry.counter(
                    "soda_sla_credit_total",
                    "SLA penalty credits posted to the billing ledger.",
                    ("service",),
                ).inc(credit, service=service)
        self._settled[service] = start + len(fresh)
        settlement = Settlement(
            service=service,
            settled_at=now,
            n_violations=len(fresh),
            credit=credit,
            capped=capped,
        )
        self.settlements.append(settlement)
        return settlement
