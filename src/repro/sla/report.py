"""Per-service SLA compliance reporting.

Summarises one monitored service — outcome counts, violation counts by
kind, gross charges, SLA credits, net — and renders the whole platform
view as a :class:`~repro.metrics.report.ExperimentResult`, so the
existing CSV pipeline (:mod:`repro.metrics.export`) exports compliance
summaries with no new machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.billing import BillingLedger
from repro.metrics.export import export_all
from repro.metrics.report import ExperimentResult
from repro.sla.monitor import SLOMonitor

__all__ = ["ComplianceSummary", "compliance_summary", "compliance_result", "export_compliance"]


@dataclass(frozen=True)
class ComplianceSummary:
    """One service's SLA scorecard as of one instant."""

    service: str
    asp: str
    service_class: str
    requests_ok: int
    requests_failed: int
    requests_shed: int
    violations_latency: int
    violations_availability: int
    violations_throughput: int
    gross: float
    credit: float

    @property
    def violations_total(self) -> int:
        return (
            self.violations_latency
            + self.violations_availability
            + self.violations_throughput
        )

    @property
    def net(self) -> float:
        return max(0.0, self.gross - self.credit)

    @property
    def requests_total(self) -> int:
        return self.requests_ok + self.requests_failed + self.requests_shed

    @property
    def success_fraction(self) -> float:
        return self.requests_ok / self.requests_total if self.requests_total else 1.0


def compliance_summary(
    monitor: SLOMonitor, asp: str, ledger: BillingLedger, now: float
) -> ComplianceSummary:
    """Fold one monitor's state and the ledger into a scorecard."""
    return ComplianceSummary(
        service=monitor.service_name,
        asp=asp,
        service_class=monitor.contract.service_class.value,
        requests_ok=monitor.total_ok,
        requests_failed=monitor.total_failed,
        requests_shed=monitor.total_shed,
        violations_latency=len(monitor.violations_of("latency")),
        violations_availability=len(monitor.violations_of("availability")),
        violations_throughput=len(monitor.violations_of("throughput")),
        gross=ledger.service_gross(monitor.service_name, now),
        credit=ledger.credit_total(service=monitor.service_name),
    )


def compliance_result(summaries: Sequence[ComplianceSummary]) -> ExperimentResult:
    """Render scorecards as an ExperimentResult table (CSV-exportable)."""
    result = ExperimentResult(
        experiment_id="sla_compliance",
        title="Per-service SLA compliance",
        headers=[
            "service", "class", "ok", "failed", "shed",
            "viol_latency", "viol_avail", "viol_tput",
            "gross", "credit", "net",
        ],
    )
    for s in summaries:
        result.add_row(
            s.service, s.service_class, s.requests_ok, s.requests_failed,
            s.requests_shed, s.violations_latency, s.violations_availability,
            s.violations_throughput, f"{s.gross:.6f}", f"{s.credit:.6f}",
            f"{s.net:.6f}",
        )
    return result


def export_compliance(summaries: Sequence[ComplianceSummary]) -> Dict[str, str]:
    """CSV documents for the compliance table, keyed by filename."""
    return export_all(compliance_result(summaries))
