"""Wall-clock benchmarks of the simulation substrate, with a tracked baseline.

Unlike the experiment benches under ``benchmarks/`` (which regenerate the
paper's tables and figures), these measure the *reproduction pipeline's own
cost*: event-kernel throughput, LAN fluid recomputation under flow churn,
scheduler quantum loops, and a full service-creation round trip.  Every
experiment pays these costs, so regressions here slow the whole repo down.

``python -m repro.bench`` runs every bench several times and appends one
entry (min/median wall-clock per bench) to ``BENCH_simulator.json``.  The
file accumulates a trajectory across PRs::

    {"schema": 1, "entries": [
        {"label": "...", "python": "3.11.7", "results": {
            "kernel_event_throughput": {"min_s": ..., "median_s": ..., "rounds": 5},
            ...}},
        ...]}

``--compare`` prints the speedup of the newest entry against the first (or
``--against LABEL``); ``--check MIN`` exits non-zero unless every compared
bench meets the given speedup factor.  Timings are machine-dependent, so
comparisons are only meaningful between entries produced on one machine.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from typing import Callable, Dict, List, Optional

__all__ = ["BENCHES", "run_benches", "load_history", "main"]

BENCH_FILE = "BENCH_simulator.json"
SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Bench workloads.  These are imported by benchmarks/test_bench_simulator_perf
# so the pytest-benchmark suite and this CLI measure the exact same work.
# ---------------------------------------------------------------------------

def bench_kernel_event_throughput() -> float:
    """Process 100k timeout events through 10 concurrent processes."""
    from repro.sim import Simulator

    sim = Simulator()

    def ticker(sim, n):
        for _ in range(n):
            yield sim.timeout(1.0)

    for _ in range(10):
        sim.process(ticker(sim, 10_000))
    sim.run()
    assert sim.now == 10_000.0
    return sim.now


def bench_lan_flow_churn() -> float:
    """2000 staggered flows through the max-min fair allocator."""
    from repro.net.lan import LAN
    from repro.sim import Simulator
    from repro.sim.rng import RandomStreams

    sim = Simulator()
    lan = LAN(sim, bandwidth_mbps=100.0)
    nics = [lan.nic(f"n{i}", 1000.0) for i in range(20)]
    streams = RandomStreams(seed=0)

    def source(sim, src, dst):
        for _ in range(100):
            flow = lan.transfer(src, dst, size_mb=streams.uniform("s", 0.05, 0.5))
            yield flow.done

    for i in range(10):
        sim.process(source(sim, nics[2 * i], nics[2 * i + 1]))
    sim.run()
    assert sim.now > 0
    return sim.now


def bench_scheduler_quantum_loop() -> float:
    """60 simulated seconds of stride scheduling (6000 quanta)."""
    from repro.host.scheduler import ProportionalShareScheduler, figure5_groups
    from repro.sim.rng import RandomStreams

    scheduler = ProportionalShareScheduler(figure5_groups(), RandomStreams(0))
    trace = scheduler.run(60.0)
    assert abs(trace.horizon_s - 60.0) < 0.011
    return trace.horizon_s


def bench_service_creation_roundtrip() -> float:
    """Full create -> teardown through Agent/Master/Daemon/UML."""
    from repro.core import MachineConfig, ResourceRequirement, build_paper_testbed
    from repro.core.auth import Credentials
    from repro.image.profiles import make_s1_web_content

    testbed = build_paper_testbed(seed=0)
    repo = testbed.add_repository()
    repo.publish(make_s1_web_content())
    testbed.agent.register_asp("acme", "supersecret")
    creds = Credentials("acme", "supersecret")
    requirement = ResourceRequirement(n=2, machine=MachineConfig())
    testbed.run(
        testbed.agent.service_creation(creds, "web", repo, "web-content", requirement)
    )
    testbed.run(testbed.agent.service_teardown(creds, "web"))
    assert testbed.now > 0
    return testbed.now


def bench_admission_decision_throughput() -> float:
    """50k economic admission decisions across the outcome space.

    The admission gate sits on the ``SODA_service_creation`` hot path
    (and the scenario queue drain re-scores on every repricing), so its
    per-decision cost bounds how many tenants a market run can carry.
    """
    from repro.market.admission import EconomicAdmission
    from repro.sla.contract import SLAContract

    policy = EconomicAdmission()
    sla = SLAContract.gold()
    for i in range(50_000):
        policy.decide(
            bid_per_m_hour=0.5 + (i % 40) * 0.1,
            remaining_budget=float(i % 7),
            n_units=1 + i % 4,
            hold_s=60.0 + (i % 10) * 30.0,
            spot_rate=1.0 + (i % 8) * 0.25,
            utilization=(i % 100) / 100.0,
            sla=sla if i % 2 else None,
            capacity_available=bool(i % 3),
        )
    assert policy.decided == 50_000
    return float(policy.decided)


#: bench name -> (callable, default rounds).
BENCHES: Dict[str, tuple] = {
    "kernel_event_throughput": (bench_kernel_event_throughput, 5),
    "lan_flow_churn": (bench_lan_flow_churn, 5),
    "scheduler_quantum_loop": (bench_scheduler_quantum_loop, 5),
    "service_creation_roundtrip": (bench_service_creation_roundtrip, 3),
    "admission_decision_throughput": (bench_admission_decision_throughput, 5),
}


# ---------------------------------------------------------------------------
# Harness.
# ---------------------------------------------------------------------------

def _time_one(fn: Callable[[], object], rounds: int) -> Dict[str, object]:
    fn()  # warm-up round: imports, allocator pools, code caches
    times: List[float] = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return {
        "min_s": round(min(times), 6),
        "median_s": round(statistics.median(times), 6),
        "rounds": rounds,
    }


def run_benches(
    names: Optional[List[str]] = None, rounds: Optional[int] = None
) -> Dict[str, Dict[str, object]]:
    """Run the selected benches; returns {name: {min_s, median_s, rounds}}."""
    selected = names or list(BENCHES)
    results: Dict[str, Dict[str, object]] = {}
    for name in selected:
        if name not in BENCHES:
            raise KeyError(f"unknown bench {name!r}; known: {sorted(BENCHES)}")
        fn, default_rounds = BENCHES[name]
        results[name] = _time_one(fn, rounds or default_rounds)
    return results


def load_history(path: str) -> Dict[str, object]:
    try:
        with open(path) as handle:
            history = json.load(handle)
    except FileNotFoundError:
        return {"schema": SCHEMA_VERSION, "entries": []}
    if "entries" not in history:
        raise ValueError(f"{path} is not a bench history file")
    return history


def _find_entry(history: Dict[str, object], label: Optional[str]) -> Dict[str, object]:
    entries = history["entries"]
    if not entries:
        raise ValueError("bench history is empty")
    if label is None:
        return entries[0]
    for entry in entries:
        if entry["label"] == label:
            return entry
    raise ValueError(f"no bench entry labelled {label!r}")


def compare(
    history: Dict[str, object], against: Optional[str] = None
) -> Dict[str, float]:
    """Speedup factors (baseline median / latest median) per shared bench."""
    baseline = _find_entry(history, against)
    latest = history["entries"][-1]
    speedups: Dict[str, float] = {}
    for name, result in latest["results"].items():
        base = baseline["results"].get(name)
        if base is None:
            continue
        speedups[name] = base["median_s"] / result["median_s"]
    return speedups


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Benchmark the simulation substrate and track a baseline.",
    )
    parser.add_argument("--out", default=BENCH_FILE, help="history file to append to")
    parser.add_argument("--label", default=None, help="entry label (default: timestamp)")
    parser.add_argument("--rounds", type=int, default=None, help="override rounds per bench")
    parser.add_argument(
        "--bench", action="append", default=None,
        help="run only this bench (repeatable); default: all",
    )
    parser.add_argument(
        "--dry-run", action="store_true", help="print results without touching the file"
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="after running, print speedup of the newest entry vs the baseline",
    )
    parser.add_argument(
        "--against", default=None,
        help="baseline entry label for --compare/--check (default: first entry)",
    )
    parser.add_argument(
        "--check", type=float, default=None, metavar="MIN_SPEEDUP",
        help="exit 1 unless every compared bench reaches this speedup factor",
    )
    args = parser.parse_args(argv)

    results = run_benches(args.bench, args.rounds)
    label = args.label or time.strftime("%Y-%m-%dT%H:%M:%S")
    entry = {
        "label": label,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": results,
    }
    width = max(len(n) for n in results)
    for name, result in results.items():
        print(f"{name:<{width}}  min {result['min_s']:.4f}s  median {result['median_s']:.4f}s")

    history = load_history(args.out)
    history["entries"].append(entry)
    if not args.dry_run:
        with open(args.out, "w") as handle:
            json.dump(history, handle, indent=2)
            handle.write("\n")
        print(f"appended entry {label!r} to {args.out}")

    if args.compare or args.check is not None:
        speedups = compare(history, args.against)
        failures = []
        for name, factor in speedups.items():
            print(f"{name:<{width}}  {factor:.2f}x vs baseline")
            if args.check is not None and factor < args.check:
                failures.append(name)
        if failures:
            print(f"below {args.check}x speedup: {failures}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
