"""Wall-clock benchmarks of the simulation substrate, with a tracked baseline.

Unlike the experiment benches under ``benchmarks/`` (which regenerate the
paper's tables and figures), these measure the *reproduction pipeline's own
cost*: event-kernel throughput, LAN fluid recomputation under flow churn,
scheduler quantum loops, and a full service-creation round trip.  Every
experiment pays these costs, so regressions here slow the whole repo down.

``python -m repro.bench`` runs every bench several times and appends one
entry (min/median wall-clock per bench, plus the capturing git commit) to
``BENCH_simulator.json``.  The file accumulates a trajectory across PRs::

    {"schema": 1, "entries": [
        {"label": "...", "python": "3.11.7", "commit": "abc1234", "results": {
            "kernel_event_throughput": {"min_s": ..., "median_s": ..., "rounds": 5},
            ...}},
        ...]}

Re-capturing an existing label *replaces* the old entry with a loud
warning (never silently), so a label always names exactly one capture.
*Composite* benches (``fn.composite = True``) measure several variants
internally and merge extra numeric fields — e.g. a discrete-vs-fluid
speedup — into their result dict alongside ``min_s``/``median_s``.

``--compare`` prints the speedup of the newest entry against the first (or
``--against LABEL``); ``--check MIN`` exits non-zero unless every compared
bench meets the given speedup factor; ``--validate`` checks the history
file against the schema and exits; ``--gate MAX_DROP`` runs the selected
benches and fails on a throughput regression worse than ``MAX_DROP``
against the newest committed entry that measured each bench (the CI
regression gate — it never writes the file).  Timings are
machine-dependent, so comparisons and the gate are only meaningful
between entries produced on one machine.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import subprocess
import sys
import time
from typing import Callable, Dict, List, Optional

__all__ = [
    "BENCHES", "run_benches", "load_history", "validate_history", "gate", "main",
]

BENCH_FILE = "BENCH_simulator.json"
SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Bench workloads.  These are imported by benchmarks/test_bench_simulator_perf
# so the pytest-benchmark suite and this CLI measure the exact same work.
# ---------------------------------------------------------------------------

def bench_kernel_event_throughput() -> float:
    """Process 100k timeout events through 10 concurrent processes."""
    from repro.sim import Simulator

    sim = Simulator()

    def ticker(sim, n):
        for _ in range(n):
            yield sim.timeout(1.0)

    for _ in range(10):
        sim.process(ticker(sim, 10_000))
    sim.run()
    assert sim.now == 10_000.0
    return sim.now


def bench_lan_flow_churn() -> float:
    """2000 staggered flows through the max-min fair allocator."""
    from repro.net.lan import LAN
    from repro.sim import Simulator
    from repro.sim.rng import RandomStreams

    sim = Simulator()
    lan = LAN(sim, bandwidth_mbps=100.0)
    nics = [lan.nic(f"n{i}", 1000.0) for i in range(20)]
    streams = RandomStreams(seed=0)

    def source(sim, src, dst):
        for _ in range(100):
            flow = lan.transfer(src, dst, size_mb=streams.uniform("s", 0.05, 0.5))
            yield flow.done

    for i in range(10):
        sim.process(source(sim, nics[2 * i], nics[2 * i + 1]))
    sim.run()
    assert sim.now > 0
    return sim.now


def bench_scheduler_quantum_loop() -> float:
    """60 simulated seconds of stride scheduling (6000 quanta)."""
    from repro.host.scheduler import ProportionalShareScheduler, figure5_groups
    from repro.sim.rng import RandomStreams

    scheduler = ProportionalShareScheduler(figure5_groups(), RandomStreams(0))
    trace = scheduler.run(60.0)
    assert abs(trace.horizon_s - 60.0) < 0.011
    return trace.horizon_s


def bench_service_creation_roundtrip() -> float:
    """Full create -> teardown through Agent/Master/Daemon/UML."""
    from repro.core import MachineConfig, ResourceRequirement, build_paper_testbed
    from repro.core.auth import Credentials
    from repro.image.profiles import make_s1_web_content

    testbed = build_paper_testbed(seed=0)
    repo = testbed.add_repository()
    repo.publish(make_s1_web_content())
    testbed.agent.register_asp("acme", "supersecret")
    creds = Credentials("acme", "supersecret")
    requirement = ResourceRequirement(n=2, machine=MachineConfig())
    testbed.run(
        testbed.agent.service_creation(creds, "web", repo, "web-content", requirement)
    )
    testbed.run(testbed.agent.service_teardown(creds, "web"))
    assert testbed.now > 0
    return testbed.now


def bench_admission_decision_throughput() -> float:
    """50k economic admission decisions across the outcome space.

    The admission gate sits on the ``SODA_service_creation`` hot path
    (and the scenario queue drain re-scores on every repricing), so its
    per-decision cost bounds how many tenants a market run can carry.
    """
    from repro.market.admission import EconomicAdmission
    from repro.sla.contract import SLAContract

    policy = EconomicAdmission()
    sla = SLAContract.gold()
    for i in range(50_000):
        policy.decide(
            bid_per_m_hour=0.5 + (i % 40) * 0.1,
            remaining_budget=float(i % 7),
            n_units=1 + i % 4,
            hold_s=60.0 + (i % 10) * 30.0,
            spot_rate=1.0 + (i % 8) * 0.25,
            utilization=(i % 100) / 100.0,
            sla=sla if i % 2 else None,
            capacity_available=bool(i % 3),
        )
    assert policy.decided == 50_000
    return float(policy.decided)


def bench_fleet_scale_throughput() -> Dict[str, float]:
    """1000 hosts, >=1M background requests, fluid vs discrete fidelity.

    The composite's headline fields: how many kernel events and
    wall-clock seconds each fidelity pays *per request*.  The discrete
    arm runs a short slice of the same workload (running it to 1M
    requests discretely is exactly the cost this PR removes) and the
    normalized ratios carry the comparison.
    """
    from repro.sim.fluid import FluidBackgroundLoad, FluidCluster, FluidServiceSpec
    from repro.sim.kernel import Simulator
    from repro.sim.rng import RandomStreams

    specs = [
        FluidServiceSpec(name="web", arrival_rps=20_000.0, mean_batch=100),
        FluidServiceSpec(
            name="api", arrival_rps=10_000.0, mean_batch=50, service_s=0.002,
            response_mb=0.005,
        ),
        FluidServiceSpec(
            name="batch", arrival_rps=5_000.0, mean_batch=200, service_s=0.008,
        ),
    ]

    def run(fidelity: str, duration_s: float):
        sim = Simulator()
        streams = RandomStreams(seed=0)
        clusters = [FluidCluster(sim, f"c{i}", n_hosts=50) for i in range(20)]
        load = FluidBackgroundLoad(sim, streams, clusters, specs, fidelity=fidelity)
        proc = sim.process(load.run(duration_s))
        start = time.perf_counter()
        report = sim.run_until_process(proc)
        wall = time.perf_counter() - start
        return report.total_requests, sim.events_scheduled, wall

    fluid_reqs, fluid_events, fluid_wall = run("fluid", 30.0)
    discrete_reqs, discrete_events, discrete_wall = run("discrete", 0.5)
    assert fluid_reqs >= 1_000_000, f"fleet arm too small: {fluid_reqs} requests"
    fluid_ev = fluid_events / fluid_reqs
    discrete_ev = discrete_events / discrete_reqs
    fluid_w = fluid_wall / fluid_reqs
    discrete_w = discrete_wall / discrete_reqs
    return {
        "fluid_requests": fluid_reqs,
        "fluid_kernel_events": fluid_events,
        "fluid_wall_s": round(fluid_wall, 4),
        "discrete_requests": discrete_reqs,
        "discrete_kernel_events": discrete_events,
        "discrete_wall_s": round(discrete_wall, 4),
        "event_reduction_x": round(discrete_ev / fluid_ev, 2),
        "wall_speedup_x": round(discrete_w / fluid_w, 2),
    }


bench_fleet_scale_throughput.composite = True


def bench_switch_dispatch_throughput() -> Dict[str, float]:
    """Bursty arrivals through one switch, batched vs unbatched dispatch.

    15 waves of 40 concurrent requests against a 3-node service; the
    batched arm coalesces each wave into shared dispatcher/classify/
    forward work.  Event counts are deterministic, wall clocks are the
    measured win.
    """
    from repro.core import MachineConfig, ResourceRequirement, build_paper_testbed
    from repro.core.auth import Credentials
    from repro.core.node import Request
    from repro.guestos.syscall import SyscallMix
    from repro.image.profiles import make_s1_web_content

    def run(batched: bool):
        testbed = build_paper_testbed(seed=0)
        repo = testbed.add_repository()
        repo.publish(make_s1_web_content())
        testbed.agent.register_asp("acme", "supersecret")
        creds = Credentials("acme", "supersecret")
        requirement = ResourceRequirement(n=3, machine=MachineConfig())
        testbed.run(
            testbed.agent.service_creation(creds, "web", repo, "web-content", requirement)
        )
        record = testbed.master.get_service("web")
        if batched:
            record.switch.enable_batching(window_s=0.002, max_batch=64)
        client = testbed.add_client("client-1")
        mix = SyscallMix(user_mcycles=1.2, n_syscalls=33)

        def waves(sim):
            for _ in range(15):
                procs = [
                    sim.process(
                        record.switch.serve(
                            Request(client=client, response_mb=0.1, mix=mix)
                        )
                    )
                    for _ in range(40)
                ]
                for p in procs:
                    yield p

        before = testbed.sim.events_scheduled
        start = time.perf_counter()
        testbed.run(waves(testbed.sim))
        wall = time.perf_counter() - start
        assert record.switch.dispatched == 600
        return testbed.sim.events_scheduled - before, wall, record.switch

    unbatched_events, unbatched_wall, _ = run(batched=False)
    batched_events, batched_wall, switch = run(batched=True)
    assert batched_events < unbatched_events
    return {
        "unbatched_events": unbatched_events,
        "batched_events": batched_events,
        "batches_dispatched": switch.batches_dispatched,
        "event_reduction_x": round(unbatched_events / batched_events, 2),
        "wall_speedup_x": round(unbatched_wall / batched_wall, 2),
    }


bench_switch_dispatch_throughput.composite = True


def bench_federated_parallel_throughput() -> Dict[str, float]:
    """The 4-cluster federated composite: sub-kernel workers vs serial.

    Runs the ``federation-scale`` topology (heavier background fleets)
    under worker counts 1/2/4/8 — 8 caps at the 4 shards — and reports
    measured wall clocks plus the structural metrics of the epoch
    barrier: messages per epoch, barrier-stall (load-imbalance)
    fraction, and the **dedicated-core projection**.  On a multi-core
    host the measured ``speedup_4w_x`` is the headline; this capture
    host exposes a single core (``cores`` field), where true
    process-parallel wall speedup is physically unavailable, so the
    projection is computed from real per-epoch worker CPU times
    (``time.process_time``): the critical path is the sum over epochs
    of the slowest worker's busy time — the wall the barrier structure
    would cost with each worker on its own core.  Digest equality
    across all arms is asserted, so every arm does identical
    simulation work.
    """
    import os

    from repro.experiments.federation_scale import build_topology
    from repro.obs.federation import FederationObservability
    from repro.sim.parallel import run_federation

    topology = build_topology(
        n_hosts=50, geo_rps=150.0, n_placements=3,
        background_rps=1200.0, n_background=8, background_mean_batch=10,
    )
    duration_s = 4.0
    runs = {}
    for n_workers in (1, 2, 4, 8):
        runs[n_workers] = run_federation(
            topology, duration_s=duration_s, seed=0, n_workers=n_workers
        )
    serial = runs[1]
    for n_workers, run in runs.items():
        assert run.digest_sha == serial.digest_sha, (
            f"digest mismatch at {n_workers} workers"
        )
    # One serial arm with the full federation observability stack on —
    # observe-never-perturb means the digest must not move, and the
    # wall-clock ratio is the stack's measured overhead.
    observed = run_federation(
        topology, duration_s=duration_s, seed=0, n_workers=1,
        obs=FederationObservability(),
    )
    assert observed.digest_sha == serial.digest_sha, "obs perturbed the digest"
    four = runs[4]
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    return {
        "requests": serial.total_requests,
        "epochs": serial.epochs,
        "messages": serial.messages,
        "msgs_per_epoch": round(serial.msgs_per_epoch, 2),
        "wall_serial_s": round(serial.wall_s, 4),
        "wall_2w_s": round(runs[2].wall_s, 4),
        "wall_4w_s": round(four.wall_s, 4),
        "wall_8w_s": round(runs[8].wall_s, 4),
        "speedup_2w_x": round(serial.wall_s / runs[2].wall_s, 2),
        "speedup_4w_x": round(serial.wall_s / four.wall_s, 2),
        "barrier_stall_fraction_4w": round(four.barrier_stall_fraction, 3),
        "critical_path_4w_s": round(four.critical_path_s, 4),
        "projected_speedup_4w_x": round(serial.wall_s / four.critical_path_s, 2),
        "wall_serial_obs_s": round(observed.wall_s, 4),
        "obs_overhead_x": round(observed.wall_s / serial.wall_s, 3),
        "obs_spans": len(observed.observability.spans),
        "digest_match": 1,
        "cores": cores,
    }


bench_federated_parallel_throughput.composite = True


#: bench name -> (callable, default rounds).
BENCHES: Dict[str, tuple] = {
    "kernel_event_throughput": (bench_kernel_event_throughput, 5),
    "lan_flow_churn": (bench_lan_flow_churn, 5),
    "scheduler_quantum_loop": (bench_scheduler_quantum_loop, 5),
    "service_creation_roundtrip": (bench_service_creation_roundtrip, 3),
    "admission_decision_throughput": (bench_admission_decision_throughput, 5),
    "fleet_scale_throughput": (bench_fleet_scale_throughput, 2),
    "switch_dispatch_throughput": (bench_switch_dispatch_throughput, 3),
    "federated_parallel_throughput": (bench_federated_parallel_throughput, 1),
}


# ---------------------------------------------------------------------------
# Harness.
# ---------------------------------------------------------------------------

def _git_commit() -> Optional[str]:
    """Short hash of HEAD (with ``+dirty`` when the tree has changes)."""
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
        if commit.returncode != 0:
            return None
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=10,
        )
        dirty = "+dirty" if status.returncode == 0 and status.stdout.strip() else ""
        return commit.stdout.strip() + dirty
    except (OSError, subprocess.TimeoutExpired):
        return None


def _time_one(fn: Callable[[], object], rounds: int) -> Dict[str, object]:
    value = fn()  # warm-up round: imports, allocator pools, code caches
    times: List[float] = []
    for _ in range(rounds):
        start = time.perf_counter()
        value = fn()
        times.append(time.perf_counter() - start)
    result: Dict[str, object] = {
        "min_s": round(min(times), 6),
        "median_s": round(statistics.median(times), 6),
        "rounds": rounds,
    }
    if getattr(fn, "composite", False):
        # Composite benches time their variants internally and return a
        # dict of extra numeric fields (e.g. discrete-vs-fluid speedup,
        # kernel event counts) from the *last* round, merged alongside
        # the outer wall-clock stats.
        if not isinstance(value, dict):
            raise TypeError(f"composite bench returned {type(value).__name__}, not dict")
        for key, extra in value.items():
            if key in result:
                raise ValueError(f"composite bench field {key!r} collides with harness")
            result[key] = extra
    return result


def run_benches(
    names: Optional[List[str]] = None, rounds: Optional[int] = None
) -> Dict[str, Dict[str, object]]:
    """Run the selected benches; returns {name: {min_s, median_s, rounds}}."""
    selected = names or list(BENCHES)
    results: Dict[str, Dict[str, object]] = {}
    for name in selected:
        if name not in BENCHES:
            raise KeyError(f"unknown bench {name!r}; known: {sorted(BENCHES)}")
        fn, default_rounds = BENCHES[name]
        results[name] = _time_one(fn, rounds or default_rounds)
    return results


def load_history(path: str) -> Dict[str, object]:
    try:
        with open(path) as handle:
            history = json.load(handle)
    except FileNotFoundError:
        return {"schema": SCHEMA_VERSION, "entries": []}
    if "entries" not in history:
        raise ValueError(f"{path} is not a bench history file")
    return history


def validate_history(history: Dict[str, object]) -> List[str]:
    """Schema-check a bench history; returns a list of problems (empty = ok).

    Used by the CI ``bench-smoke`` job so malformed entries fail PRs
    instead of landing silently.  Core fields are required; extra numeric
    fields from composite benches are allowed (and type-checked).
    """
    problems: List[str] = []
    if not isinstance(history, dict):
        return ["history is not a JSON object"]
    if history.get("schema") != SCHEMA_VERSION:
        problems.append(f"schema must be {SCHEMA_VERSION}, got {history.get('schema')!r}")
    entries = history.get("entries")
    if not isinstance(entries, list):
        return problems + ["'entries' must be a list"]
    seen_labels: set = set()
    for i, entry in enumerate(entries):
        where = f"entries[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} is not an object")
            continue
        label = entry.get("label")
        if not isinstance(label, str) or not label:
            problems.append(f"{where}.label must be a non-empty string")
        elif label in seen_labels:
            problems.append(f"{where}.label {label!r} duplicates an earlier entry")
        else:
            seen_labels.add(label)
        if not isinstance(entry.get("python"), str):
            problems.append(f"{where}.python must be a string")
        if "commit" in entry and not isinstance(entry["commit"], (str, type(None))):
            problems.append(f"{where}.commit must be a string or null")
        results = entry.get("results")
        if not isinstance(results, dict) or not results:
            problems.append(f"{where}.results must be a non-empty object")
            continue
        for name, result in results.items():
            at = f"{where}.results[{name!r}]"
            if not isinstance(result, dict):
                problems.append(f"{at} is not an object")
                continue
            for field in ("min_s", "median_s"):
                if not isinstance(result.get(field), (int, float)):
                    problems.append(f"{at}.{field} must be a number")
            if not isinstance(result.get("rounds"), int):
                problems.append(f"{at}.rounds must be an integer")
            for key, value in result.items():
                if key in ("min_s", "median_s", "rounds"):
                    continue
                if not isinstance(value, (int, float)):
                    problems.append(f"{at}.{key} (extra field) must be numeric")
    return problems


def _find_entry(history: Dict[str, object], label: Optional[str]) -> Dict[str, object]:
    entries = history["entries"]
    if not entries:
        raise ValueError("bench history is empty")
    if label is None:
        return entries[0]
    for entry in entries:
        if entry["label"] == label:
            return entry
    raise ValueError(f"no bench entry labelled {label!r}")


def compare(
    history: Dict[str, object], against: Optional[str] = None
) -> Dict[str, float]:
    """Speedup factors (baseline median / latest median) per shared bench."""
    baseline = _find_entry(history, against)
    latest = history["entries"][-1]
    speedups: Dict[str, float] = {}
    for name, result in latest["results"].items():
        base = baseline["results"].get(name)
        if base is None:
            continue
        speedups[name] = base["median_s"] / result["median_s"]
    return speedups


def gate(
    history: Dict[str, object],
    results: Dict[str, Dict[str, object]],
    max_drop: float,
) -> List[str]:
    """The CI regression gate: fresh results vs the last committed entry.

    For each bench in ``results``, find the *newest* committed entry
    that measured it and fail if the fresh ``median_s`` regressed by
    more than ``max_drop`` (e.g. ``0.30`` = throughput down >30%,
    i.e. ``median_s > baseline / (1 - max_drop)``).  Benches with no
    committed baseline pass (first capture).  Returns the list of
    failure messages (empty = gate passes); writes nothing.
    """
    if not 0 < max_drop < 1:
        raise ValueError(f"max_drop must be in (0, 1), got {max_drop}")
    failures: List[str] = []
    entries = list(history.get("entries", []))
    for name, result in results.items():
        baseline = None
        baseline_label = None
        for entry in reversed(entries):
            candidate = entry.get("results", {}).get(name)
            if candidate is not None:
                baseline = candidate
                baseline_label = entry.get("label")
                break
        if baseline is None:
            print(f"{name}: no committed baseline, gate passes trivially")
            continue
        allowed = baseline["median_s"] / (1.0 - max_drop)
        verdict = "ok" if result["median_s"] <= allowed else "REGRESSED"
        print(
            f"{name}: median {result['median_s']:.4f}s vs baseline "
            f"{baseline['median_s']:.4f}s ({baseline_label!r}), "
            f"allowed <= {allowed:.4f}s: {verdict}"
        )
        if result["median_s"] > allowed:
            failures.append(
                f"{name} regressed: median {result['median_s']:.4f}s vs "
                f"baseline {baseline['median_s']:.4f}s "
                f"(> {max_drop:.0%} throughput drop)"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Benchmark the simulation substrate and track a baseline.",
    )
    parser.add_argument("--out", default=BENCH_FILE, help="history file to append to")
    parser.add_argument("--label", default=None, help="entry label (default: timestamp)")
    parser.add_argument("--rounds", type=int, default=None, help="override rounds per bench")
    parser.add_argument(
        "--bench", action="append", default=None,
        help="run only this bench (repeatable); default: all",
    )
    parser.add_argument(
        "--dry-run", action="store_true", help="print results without touching the file"
    )
    parser.add_argument(
        "--compare", action="store_true",
        help="after running, print speedup of the newest entry vs the baseline",
    )
    parser.add_argument(
        "--against", default=None,
        help="baseline entry label for --compare/--check (default: first entry)",
    )
    parser.add_argument(
        "--check", type=float, default=None, metavar="MIN_SPEEDUP",
        help="exit 1 unless every compared bench reaches this speedup factor",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="schema-check the history file and exit (runs no benches)",
    )
    parser.add_argument(
        "--gate", type=float, default=None, metavar="MAX_DROP",
        help="regression gate: run the selected benches, compare each against "
        "the newest committed entry that measured it, and exit 1 on a "
        "throughput drop worse than MAX_DROP (e.g. 0.30); never writes",
    )
    args = parser.parse_args(argv)

    if args.validate:
        problems = validate_history(load_history(args.out))
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        entries = load_history(args.out)["entries"]
        print(f"{args.out} ok: {len(entries)} entries")
        return 0

    if args.gate is not None:
        results = run_benches(args.bench, args.rounds)
        failures = gate(load_history(args.out), results, args.gate)
        if failures:
            for failure in failures:
                print(f"GATE: {failure}", file=sys.stderr)
            return 1
        print(f"bench gate ok (max drop {args.gate:.0%})")
        return 0

    results = run_benches(args.bench, args.rounds)
    label = args.label or time.strftime("%Y-%m-%dT%H:%M:%S")
    entry = {
        "label": label,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "commit": _git_commit(),
        "results": results,
    }
    width = max(len(n) for n in results)
    for name, result in results.items():
        print(f"{name:<{width}}  min {result['min_s']:.4f}s  median {result['median_s']:.4f}s")

    history = load_history(args.out)
    duplicates = [e for e in history["entries"] if e.get("label") == label]
    if duplicates:
        print(
            f"WARNING: label {label!r} already captured "
            f"({len(duplicates)} existing entr{'y' if len(duplicates) == 1 else 'ies'}); "
            "replacing with this capture",
            file=sys.stderr,
        )
        history["entries"] = [e for e in history["entries"] if e.get("label") != label]
    history["entries"].append(entry)
    if not args.dry_run:
        with open(args.out, "w") as handle:
            json.dump(history, handle, indent=2)
            handle.write("\n")
        print(f"appended entry {label!r} to {args.out}")

    if args.compare or args.check is not None:
        speedups = compare(history, args.against)
        failures = []
        for name, factor in speedups.items():
            print(f"{name:<{width}}  {factor:.2f}x vs baseline")
            if args.check is not None and factor < args.check:
                failures.append(name)
        if failures:
            print(f"below {args.check}x speedup: {failures}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
