"""Host OS substrate.

Models one HUP host's operating system and hardware as seen by SODA:

* :mod:`repro.host.machine` — the physical host (CPU, RAM, disk, NIC),
  including the paper's two testbed hosts *seattle* and *tacoma* (§4).
* :mod:`repro.host.reservation` — the per-host resource reservation
  manager the SODA Daemon contacts "to make resource reservations for
  the virtual service node" (§3.3).
* :mod:`repro.host.memory` — RAM accounting and RAM-disk mounts
  ("in many cases it can be mounted in RAM disk for fast
  bootstrapping", §4.3).
* :mod:`repro.host.scheduler` — the vanilla Linux-like CPU scheduler
  and the paper's coarse-grain **proportional-share CPU scheduler**
  keyed on userids (§4.2, Figure 5).
* :mod:`repro.host.traffic` — the outbound token-bucket **traffic
  shaper** keyed on virtual-node IP addresses (§4.2).
* :mod:`repro.host.bridge` — the **bridging module** that forwards
  packets to virtual service nodes by IP (§3.3), plus the *proxying*
  alternative of footnote 3.
"""

from repro.host.bridge import BridgingModule, ProxyModule
from repro.host.machine import Host, make_seattle, make_tacoma, paper_testbed_hosts
from repro.host.memory import MemoryError_, MemoryManager
from repro.host.reservation import Reservation, ReservationError, ReservationManager
from repro.host.scheduler import (
    ProportionalShareScheduler,
    SchedulerRun,
    TaskGroup,
    VanillaLinuxScheduler,
)
from repro.host.traffic import TokenBucket, TrafficShaper

__all__ = [
    "BridgingModule",
    "Host",
    "MemoryError_",
    "MemoryManager",
    "ProportionalShareScheduler",
    "ProxyModule",
    "Reservation",
    "ReservationError",
    "ReservationManager",
    "SchedulerRun",
    "TaskGroup",
    "TokenBucket",
    "TrafficShaper",
    "VanillaLinuxScheduler",
    "make_seattle",
    "make_tacoma",
    "paper_testbed_hosts",
]
