"""Per-host resource reservation manager.

"Upon receiving the command to create a virtual service node, the SODA
Daemon will contact the underlying host OS and make resource
reservations for the virtual service node" (paper §3.3).  A reservation
covers the four resource types of a machine configuration ``M``
(Table 1): CPU, memory, disk, and network bandwidth.  The manager keeps
the invariant that the sum of live reservations never exceeds host
capacity in any dimension, and is the source of the "resource
availability" reports the Daemon sends to the SODA Master (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["ReservationError", "Reservation", "ResourceVector", "ReservationManager"]


class ReservationError(RuntimeError):
    """Raised when a reservation cannot be granted or is misused."""


@dataclass(frozen=True)
class ResourceVector:
    """Amounts of the four Table 1 resource types."""

    cpu_mhz: float
    mem_mb: float
    disk_mb: float
    bw_mbps: float

    def __post_init__(self) -> None:
        for field in ("cpu_mhz", "mem_mb", "disk_mb", "bw_mbps"):
            if getattr(self, field) < 0:
                raise ValueError(f"negative {field}: {getattr(self, field)}")

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.cpu_mhz + other.cpu_mhz,
            self.mem_mb + other.mem_mb,
            self.disk_mb + other.disk_mb,
            self.bw_mbps + other.bw_mbps,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.cpu_mhz - other.cpu_mhz,
            self.mem_mb - other.mem_mb,
            self.disk_mb - other.disk_mb,
            self.bw_mbps - other.bw_mbps,
        )

    def scaled(self, factor: float) -> "ResourceVector":
        if factor < 0:
            raise ValueError(f"negative scale factor: {factor}")
        return ResourceVector(
            self.cpu_mhz * factor,
            self.mem_mb * factor,
            self.disk_mb * factor,
            self.bw_mbps * factor,
        )

    def fits_within(self, other: "ResourceVector") -> bool:
        """True if every component of self is <= the other's."""
        return (
            self.cpu_mhz <= other.cpu_mhz + 1e-9
            and self.mem_mb <= other.mem_mb + 1e-9
            and self.disk_mb <= other.disk_mb + 1e-9
            and self.bw_mbps <= other.bw_mbps + 1e-9
        )

    @staticmethod
    def zero() -> "ResourceVector":
        return ResourceVector(0.0, 0.0, 0.0, 0.0)


class Reservation:
    """A live grant of a :class:`ResourceVector` on one host."""

    def __init__(self, manager: "ReservationManager", vector: ResourceVector, label: str):
        self.manager = manager
        self.vector = vector
        self.label = label
        self.released = False

    def release(self) -> None:
        if self.released:
            raise ReservationError(f"double release of reservation {self.label!r}")
        self.released = True
        self.manager._release(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "released" if self.released else "held"
        return f"Reservation({self.label!r}, {self.vector}, {state})"


class ReservationManager:
    """Admission-level accounting of one host's four resource types."""

    def __init__(
        self, host_name: str, cpu_mhz: float, mem_mb: float, disk_mb: float, bw_mbps: float
    ):
        self.host_name = host_name
        self.capacity = ResourceVector(cpu_mhz, mem_mb, disk_mb, bw_mbps)
        self._live: List[Reservation] = []

    @property
    def reserved(self) -> ResourceVector:
        total = ResourceVector.zero()
        for r in self._live:
            total = total + r.vector
        return total

    @property
    def available(self) -> ResourceVector:
        return self.capacity - self.reserved

    def can_fit(self, vector: ResourceVector) -> bool:
        return vector.fits_within(self.available)

    def reserve(self, vector: ResourceVector, label: str = "") -> Reservation:
        """Grant ``vector`` or raise :class:`ReservationError`."""
        if not self.can_fit(vector):
            raise ReservationError(
                f"host {self.host_name!r} cannot reserve {vector} "
                f"(available {self.available})"
            )
        reservation = Reservation(self, vector, label)
        self._live.append(reservation)
        return reservation

    def _release(self, reservation: Reservation) -> None:
        self._live.remove(reservation)

    @property
    def n_live(self) -> int:
        return len(self._live)

    def utilisation(self) -> dict:
        """Per-dimension fraction reserved, for Master placement policies."""
        reserved = self.reserved
        return {
            "cpu": reserved.cpu_mhz / self.capacity.cpu_mhz if self.capacity.cpu_mhz else 0.0,
            "mem": reserved.mem_mb / self.capacity.mem_mb if self.capacity.mem_mb else 0.0,
            "disk": reserved.disk_mb / self.capacity.disk_mb if self.capacity.disk_mb else 0.0,
            "bw": reserved.bw_mbps / self.capacity.bw_mbps if self.capacity.bw_mbps else 0.0,
        }
