"""Physical HUP host model.

A :class:`Host` bundles the hardware attributes SODA cares about — CPU
speed, RAM, disk throughput, NIC — together with the OS-level managers
built on them (memory manager, reservation manager).  The two
constructors :func:`make_seattle` and :func:`make_tacoma` reproduce the
paper's testbed (§4):

    "*seattle* is a Dell PowerEdge server with a 2.6GHz Intel Xeon
    processor and 2GB RAM, while *tacoma* is a Dell desktop PC with a
    1.8GHz Intel Pentium 4 processor and 768MB RAM. [...] All machines
    are connected by a 100Mbps LAN."
"""

from __future__ import annotations

from typing import List, Optional

from repro.host.memory import MemoryManager
from repro.host.reservation import ReservationManager
from repro.net.lan import LAN, NetworkInterface
from repro.sim.kernel import Simulator

__all__ = ["Host", "make_seattle", "make_tacoma", "paper_testbed_hosts"]

# RAM the host OS itself keeps (kernel, host daemons, page cache floor).
# Chosen so that on tacoma (768 MB) neither the 400 MB LFS rootfs nor the
# 253 MB RH-7.2 rootfs plus a 256 MB guest can be RAM-disk mounted, while
# on seattle (2 GB) everything fits — matching the Table 2 asymmetry.
HOST_OS_RESERVED_MB = 300.0

# Disk throughput: seattle is a server-class SCSI box, tacoma a desktop
# IDE machine (circa 2003 hardware).
SEATTLE_DISK_MBS = 50.0
TACOMA_DISK_MBS = 28.0

LAN_BANDWIDTH_MBPS = 100.0


class Host:
    """One physical HUP host.

    Parameters
    ----------
    cpu_mhz:
        Processor clock; all modelled work is expressed in megacycles,
        so ``time = work_mcycles / cpu_mhz / 1e6`` seconds... more
        precisely ``seconds = mcycles / cpu_mhz`` since one MHz executes
        one megacycle per second.
    disk_rate_mbs:
        Sequential disk throughput in MB/s (rootfs mounts from disk).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cpu_mhz: float,
        ram_mb: float,
        disk_mb: float,
        disk_rate_mbs: float,
        lan: Optional[LAN] = None,
        nic_mbps: float = LAN_BANDWIDTH_MBPS,
        os_reserved_mb: float = HOST_OS_RESERVED_MB,
    ):
        if cpu_mhz <= 0:
            raise ValueError(f"cpu_mhz must be positive, got {cpu_mhz}")
        if ram_mb <= os_reserved_mb:
            raise ValueError(
                f"host {name!r}: RAM {ram_mb} MB does not cover the "
                f"host-OS reservation of {os_reserved_mb} MB"
            )
        if disk_mb <= 0 or disk_rate_mbs <= 0:
            raise ValueError(f"host {name!r}: disk size and rate must be positive")
        self.sim = sim
        self.name = name
        self.cpu_mhz = cpu_mhz
        self.ram_mb = ram_mb
        self.disk_mb = disk_mb
        self.disk_rate_mbs = disk_rate_mbs
        self.memory = MemoryManager(total_mb=ram_mb, os_reserved_mb=os_reserved_mb)
        self.reservations = ReservationManager(
            host_name=name,
            cpu_mhz=cpu_mhz,
            mem_mb=ram_mb - os_reserved_mb,
            disk_mb=disk_mb,
            bw_mbps=nic_mbps,
        )
        self.nic: Optional[NetworkInterface] = None
        if lan is not None:
            self.attach(lan, nic_mbps)

    def attach(self, lan: LAN, nic_mbps: float = LAN_BANDWIDTH_MBPS) -> NetworkInterface:
        """Plug this host's NIC into ``lan``."""
        self.nic = lan.nic(self.name, nic_mbps)
        return self.nic

    def cpu_time(self, work_mcycles: float) -> float:
        """Seconds to execute ``work_mcycles`` at full CPU speed."""
        if work_mcycles < 0:
            raise ValueError(f"negative work: {work_mcycles}")
        return work_mcycles / self.cpu_mhz

    def disk_read_time(self, size_mb: float) -> float:
        """Seconds to stream ``size_mb`` from disk."""
        if size_mb < 0:
            raise ValueError(f"negative size: {size_mb}")
        return size_mb / self.disk_rate_mbs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Host({self.name!r}, {self.cpu_mhz:.0f} MHz, {self.ram_mb:.0f} MB RAM, "
            f"{self.disk_rate_mbs:.0f} MB/s disk)"
        )


def make_seattle(sim: Simulator, lan: Optional[LAN] = None) -> Host:
    """The paper's *seattle*: 2.6 GHz Xeon, 2 GB RAM, server-class disk."""
    return Host(
        sim,
        name="seattle",
        cpu_mhz=2600.0,
        ram_mb=2048.0,
        disk_mb=60_000.0,
        disk_rate_mbs=SEATTLE_DISK_MBS,
        lan=lan,
    )


def make_tacoma(sim: Simulator, lan: Optional[LAN] = None) -> Host:
    """The paper's *tacoma*: 1.8 GHz Pentium 4, 768 MB RAM, desktop disk."""
    return Host(
        sim,
        name="tacoma",
        cpu_mhz=1800.0,
        ram_mb=768.0,
        disk_mb=40_000.0,
        disk_rate_mbs=TACOMA_DISK_MBS,
        lan=lan,
    )


def paper_testbed_hosts(sim: Simulator, lan: LAN) -> List[Host]:
    """Both testbed hosts, attached to ``lan``."""
    return [make_seattle(sim, lan), make_tacoma(sim, lan)]
