"""Host RAM accounting and RAM-disk mounts.

The SODA Daemon decides per boot whether a tailored root filesystem
"can be mounted in RAM disk for fast bootstrapping" (paper §4.3).  The
:class:`MemoryManager` answers that question: a RAM-disk mount needs the
rootfs *and* the guest's memory cap to fit in currently-free host RAM
(UML memory limits are the one isolation the stock UML provides, §4.2).
"""

from __future__ import annotations

from typing import List

__all__ = ["MemoryError_", "MemoryAllocation", "MemoryManager"]


class MemoryError_(RuntimeError):
    """Host RAM exhausted (named with a trailing underscore to avoid
    shadowing the builtin ``MemoryError``)."""


class MemoryAllocation:
    """A chunk of host RAM held by a guest or a RAM-disk mount."""

    def __init__(self, manager: "MemoryManager", size_mb: float, purpose: str):
        self.manager = manager
        self.size_mb = size_mb
        self.purpose = purpose
        self.released = False

    def release(self) -> None:
        if self.released:
            raise MemoryError_(f"double release of {self.purpose!r} allocation")
        self.released = True
        self.manager._free(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "released" if self.released else "held"
        return f"MemoryAllocation({self.size_mb} MB, {self.purpose!r}, {state})"


class MemoryManager:
    """Tracks host RAM: total, host-OS reserve, and live allocations."""

    def __init__(self, total_mb: float, os_reserved_mb: float):
        if total_mb <= 0:
            raise ValueError(f"total RAM must be positive, got {total_mb}")
        if not 0 <= os_reserved_mb < total_mb:
            raise ValueError(
                f"OS reserve {os_reserved_mb} MB outside [0, {total_mb})"
            )
        self.total_mb = total_mb
        self.os_reserved_mb = os_reserved_mb
        self._allocations: List[MemoryAllocation] = []

    @property
    def allocated_mb(self) -> float:
        return sum(a.size_mb for a in self._allocations)

    @property
    def free_mb(self) -> float:
        return self.total_mb - self.os_reserved_mb - self.allocated_mb

    def fits(self, size_mb: float) -> bool:
        return size_mb <= self.free_mb

    def allocate(self, size_mb: float, purpose: str = "") -> MemoryAllocation:
        """Claim ``size_mb`` of RAM; raises :class:`MemoryError_` if short."""
        if size_mb < 0:
            raise ValueError(f"negative allocation: {size_mb}")
        if not self.fits(size_mb):
            raise MemoryError_(
                f"cannot allocate {size_mb} MB for {purpose!r}: "
                f"only {self.free_mb:.1f} MB free"
            )
        allocation = MemoryAllocation(self, size_mb, purpose)
        self._allocations.append(allocation)
        return allocation

    def _free(self, allocation: MemoryAllocation) -> None:
        self._allocations.remove(allocation)

    def can_ramdisk_mount(self, rootfs_mb: float, guest_mem_mb: float) -> bool:
        """True if a rootfs RAM-disk plus the guest's memory cap fit."""
        return self.fits(rootfs_mb + guest_mem_mb)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MemoryManager(free={self.free_mb:.0f}/{self.total_mb:.0f} MB, "
            f"os_reserved={self.os_reserved_mb:.0f} MB)"
        )
