"""Host CPU schedulers: vanilla Linux vs SODA's proportional-share.

Paper §4.2: "We have implemented a coarse-grain CPU proportional sharing
scheduler, which enforces the CPU share allocated to each virtual
service node. [...] Within one virtual service node, all processes bear
the same user (service) id.  The CPU scheduler in the host OS then
enforces proportional CPU sharing among all processes, based on their
userids."  Figure 5 contrasts the CPU shares of three overloaded
virtual service nodes (*web*, *comp*, *log*) under (a) unmodified Linux
and (b) the enhanced host OS.

Two schedulers are modelled at quantum granularity:

* :class:`VanillaLinuxScheduler` — a Linux-2.4-style epoch scheduler:
  every runnable task is picked by largest remaining counter; when all
  runnable counters hit zero the epoch ends and every task (including
  blocked ones, which is the classic I/O boost) recharges
  ``counter = counter//2 + base``.  Crucially it schedules *processes*,
  so a node running more processes harvests more CPU — the unfairness
  Figure 5(a) shows.
* :class:`ProportionalShareScheduler` — stride scheduling over *task
  groups* (one group per userid/virtual node): the group with the
  smallest pass value runs next and advances by ``stride = K/tickets``;
  round-robin within the group.  A group that wakes from full idling is
  re-based to the current virtual time so it cannot monopolise the CPU
  to "catch up".

The schedulers run a self-contained quantum loop (they do not need the
event kernel): Figure 5 is a closed experiment over a fixed horizon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.rng import RandomStreams

__all__ = [
    "WorkloadSpec",
    "TaskGroup",
    "SchedulerTrace",
    "SchedulerRun",
    "VanillaLinuxScheduler",
    "ProportionalShareScheduler",
]

QUANTUM_S = 0.010  # 10 ms scheduler tick, as in Linux 2.4 on x86
BASE_COUNTER = 6  # default epoch allowance, quanta (~60 ms)
STRIDE_CONSTANT = 1 << 20


@dataclass(frozen=True)
class WorkloadSpec:
    """How one process behaves.

    ``run_quanta`` consecutive quanta of CPU, then a block of
    ``block_s`` (0 means never blocks — a pure CPU hog).  ``jitter``
    is the lognormal sigma applied to each block duration.
    """

    run_quanta: int
    block_s: float
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.run_quanta < 1:
            raise ValueError(f"run_quanta must be >= 1, got {self.run_quanta}")
        if self.block_s < 0:
            raise ValueError(f"block_s must be >= 0, got {self.block_s}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    @staticmethod
    def cpu_hog() -> "WorkloadSpec":
        """comp: 'infinite loop of dummy arithmetic operations' (§5)."""
        return WorkloadSpec(run_quanta=1_000_000_000, block_s=0.0)

    @staticmethod
    def disk_logger(block_s: float = 0.015, jitter: float = 0.3) -> "WorkloadSpec":
        """log: 'performs logging via continuous disk writes' (§5)."""
        return WorkloadSpec(run_quanta=1, block_s=block_s, jitter=jitter)

    @staticmethod
    def web_server(run_quanta: int = 2, block_s: float = 0.030, jitter: float = 0.5) -> "WorkloadSpec":
        """web: request bursts separated by network waits."""
        return WorkloadSpec(run_quanta=run_quanta, block_s=block_s, jitter=jitter)


@dataclass
class TaskGroup:
    """All processes of one virtual service node (one userid)."""

    name: str
    workloads: Sequence[WorkloadSpec]
    tickets: float = 1.0

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError(f"group {self.name!r} has no processes")
        if self.tickets <= 0:
            raise ValueError(f"tickets must be positive, got {self.tickets}")


class _Task:
    """Runtime state of one process."""

    __slots__ = (
        "index",
        "group_index",
        "spec",
        "counter",
        "burst_left",
        "wake_time",
        "rng_name",
    )

    def __init__(self, group_index: int, spec: WorkloadSpec, task_id: int):
        self.index = task_id  # position in the scheduler's task arrays
        self.group_index = group_index
        self.spec = spec
        self.counter = BASE_COUNTER
        self.burst_left = spec.run_quanta
        self.wake_time = 0.0  # runnable when wake_time <= now
        self.rng_name = f"sched-task-{task_id}"


@dataclass
class SchedulerTrace:
    """Result of a scheduler run.

    ``shares(bucket_s)`` returns, per group, the CPU fraction obtained
    in each bucket of the horizon — the series Figure 5 plots.
    """

    group_names: Tuple[str, ...]
    horizon_s: float
    quantum_s: float
    # cpu_time_series[g] = cumulative CPU seconds for group g sampled at
    # each quantum boundary.
    times: np.ndarray
    cumulative: np.ndarray  # shape (n_groups, n_samples)

    def total_share(self, group: str) -> float:
        g = self.group_names.index(group)
        return float(self.cumulative[g, -1] / self.horizon_s)

    def shares(self, bucket_s: float) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
        """(bucket centres, {group: share in each bucket})."""
        if bucket_s <= 0:
            raise ValueError(f"bucket width must be positive, got {bucket_s}")
        edges = np.arange(0.0, self.horizon_s + 1e-9, bucket_s)
        if edges[-1] < self.horizon_s - 1e-9:
            edges = np.append(edges, self.horizon_s)
        centres = (edges[:-1] + edges[1:]) / 2.0
        result: Dict[str, np.ndarray] = {}
        for g, name in enumerate(self.group_names):
            at_edges = np.interp(edges, self.times, self.cumulative[g])
            result[name] = np.diff(at_edges) / np.diff(edges)
        return centres, result


class _SchedulerBase:
    """Shared quantum loop; subclasses supply the pick policy."""

    name = "base"

    def __init__(self, groups: Sequence[TaskGroup], streams: Optional[RandomStreams] = None):
        if not groups:
            raise ValueError("at least one task group required")
        names = [g.name for g in groups]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate group names: {names}")
        self.groups = list(groups)
        self.streams = streams or RandomStreams(seed=0)
        self.tasks: List[_Task] = []
        task_id = 0
        for gi, group in enumerate(self.groups):
            for spec in group.workloads:
                self.tasks.append(_Task(gi, spec, task_id))
                task_id += 1

    # -- policy hooks ------------------------------------------------------
    def _pick(self, runnable: List[_Task], now: float) -> Optional[_Task]:
        raise NotImplementedError

    def _charged(self, task: _Task, now: float) -> None:
        """Called after ``task`` consumed one quantum."""

    def _woke(self, task: _Task, now: float) -> None:
        """Called when ``task`` transitions blocked -> runnable."""

    # -- the quantum loop ----------------------------------------------------
    def run(self, horizon_s: float) -> SchedulerTrace:
        # The loop batches bookkeeping instead of redoing it every 10 ms
        # tick: the wake scan only runs when the earliest pending wake
        # time is actually due, the runnable list is only rebuilt when
        # the blocked set changed, fully idle stretches are filled in a
        # tight inner loop, and the trace matrices are reconstructed
        # from the per-quantum charge log after the loop.  Blocked-task
        # state and the charge/time logs live in preallocated arrays
        # keyed by task index / quantum number, so the loop chases no
        # per-task Python objects for wake bookkeeping.  The pick /
        # charge / wake sequence (and therefore the trace, including its
        # float accumulation) is identical to the naive per-tick loop.
        if horizon_s <= 0:
            raise ValueError(f"horizon must be positive, got {horizon_s}")
        n_groups = len(self.groups)
        n_tasks = len(self.tasks)
        n_quanta = int(math.ceil(horizon_s / QUANTUM_S))
        # Blocked bookkeeping, keyed by task index: a task is blocked
        # iff blocked_mask[i]; its wake time sits in wake_buf[i].
        wake_buf = np.full(n_tasks, math.inf)
        blocked_mask = np.zeros(n_tasks, dtype=bool)
        next_wake = math.inf
        runnable: List[_Task] = list(self.tasks)
        runnable_dirty = False
        # charges[q] is the group index that consumed quantum q (-1: idle).
        charges = np.empty(n_quanta, dtype=np.int64)
        times = np.empty(n_quanta + 1)
        times[0] = 0.0

        now = 0.0
        q = 0
        while q < n_quanta:
            if next_wake <= now + 1e-12:
                # Wake every due task, in task order (as the per-tick
                # scan did: nonzero yields ascending indices).
                due = blocked_mask & (wake_buf <= now + 1e-12)
                for i in np.nonzero(due)[0]:
                    task = self.tasks[i]
                    blocked_mask[i] = False
                    wake_buf[i] = math.inf
                    task.burst_left = task.spec.run_quanta
                    self._woke(task, now)
                still = wake_buf[blocked_mask]
                next_wake = float(still.min()) if still.size else math.inf
                runnable_dirty = True
            if runnable_dirty:
                if blocked_mask.any():
                    runnable = [self.tasks[i] for i in np.nonzero(~blocked_mask)[0]]
                else:
                    runnable = list(self.tasks)
                runnable_dirty = False
            if not runnable:
                # Idle stretch: nothing can run until the next wake.
                # Advance quantum by quantum (keeping the repeated
                # `now += QUANTUM_S` accumulation exact) but skip the
                # pick/charge machinery entirely.
                now += QUANTUM_S
                times[q + 1] = now
                charges[q] = -1
                q += 1
                while q < n_quanta and next_wake > now + 1e-12:
                    now += QUANTUM_S
                    times[q + 1] = now
                    charges[q] = -1
                    q += 1
                continue
            chosen = self._pick(runnable, now)
            now += QUANTUM_S
            if chosen is not None:
                charges[q] = chosen.group_index
                chosen.burst_left -= 1
                self._charged(chosen, now)
                if chosen.burst_left <= 0 and chosen.spec.block_s > 0:
                    jitter = self.streams.lognormal_factor(
                        chosen.rng_name, chosen.spec.jitter
                    )
                    chosen.wake_time = now + chosen.spec.block_s * jitter
                    blocked_mask[chosen.index] = True
                    wake_buf[chosen.index] = chosen.wake_time
                    if chosen.wake_time < next_wake:
                        next_wake = chosen.wake_time
                    runnable_dirty = True
            else:
                charges[q] = -1
            times[q + 1] = now
            q += 1

        # Observability: the quantum loop has no simulator handle, so it
        # reports batch totals through the ambiently active hub after
        # the loop (never from inside it — nothing perturbed).
        from repro.obs import ambient_registry

        registry = ambient_registry()
        if registry is not None:
            quanta = registry.counter(
                "soda_sched_quanta_total",
                "Scheduler quanta simulated, by scheduler and disposition.",
                ("scheduler", "state"),
            )
            idle = int((charges == -1).sum()) if n_quanta else 0
            quanta.inc(n_quanta - idle, scheduler=self.name, state="charged")
            quanta.inc(idle, scheduler=self.name, state="idle")
            registry.counter(
                "soda_sched_runs_total",
                "Quantum-loop batches executed, by scheduler.",
                ("scheduler",),
            ).inc(scheduler=self.name)

        cumulative = np.zeros((n_groups, n_quanta + 1))
        if n_quanta:
            for g in range(n_groups):
                # np.cumsum accumulates left to right, so adding
                # QUANTUM_S at charged quanta and 0.0 elsewhere yields
                # bit-for-bit the running totals the per-tick loop kept.
                cumulative[g, 1:] = np.cumsum(
                    np.where(charges == g, QUANTUM_S, 0.0)
                )

        return SchedulerTrace(
            group_names=tuple(g.name for g in self.groups),
            horizon_s=now,
            quantum_s=QUANTUM_S,
            times=times,
            cumulative=cumulative,
        )


class VanillaLinuxScheduler(_SchedulerBase):
    """Linux-2.4-style epoch scheduler over individual processes."""

    name = "vanilla-linux"

    def _pick(self, runnable: List[_Task], now: float) -> Optional[_Task]:
        with_counter = [t for t in runnable if t.counter > 0]
        if not with_counter:
            # Epoch end: recharge everyone (blocked tasks keep half their
            # leftover counter — the I/O boost).
            for task in self.tasks:
                task.counter = task.counter // 2 + BASE_COUNTER
            with_counter = runnable
        # Largest counter wins ("goodness"); ties by task order.
        return max(with_counter, key=lambda t: t.counter)

    def _charged(self, task: _Task, now: float) -> None:
        task.counter = max(0, task.counter - 1)


class ProportionalShareScheduler(_SchedulerBase):
    """Stride scheduling over task groups (one group per userid)."""

    name = "proportional-share"

    def __init__(self, groups: Sequence[TaskGroup], streams: Optional[RandomStreams] = None):
        super().__init__(groups, streams)
        self._stride = [STRIDE_CONSTANT / g.tickets for g in self.groups]
        self._pass = [0.0 for _ in self.groups]
        self._rr_index = [0 for _ in self.groups]
        self._group_idle = [False for _ in self.groups]
        # Reused per-group buckets: _pick runs once per quantum, so it
        # avoids allocating a fresh dict-of-lists every call.
        self._buckets: List[List[_Task]] = [[] for _ in self.groups]

    def _pick(self, runnable: List[_Task], now: float) -> Optional[_Task]:
        if not runnable:
            return None
        buckets = self._buckets
        present: List[int] = []  # group indices in first-seen (task) order
        for task in runnable:
            g = task.group_index
            bucket = buckets[g]
            if not bucket:
                present.append(g)
            bucket.append(task)
        passes = self._pass
        group_idle = self._group_idle
        # Re-base groups waking from idleness to the current virtual time
        # (taken from the groups that stayed active) so they neither
        # monopolise the CPU to catch up nor owe time they never used.
        virtual_time: Optional[float] = None
        for g in present:
            if not group_idle[g]:
                p = passes[g]
                if virtual_time is None or p < virtual_time:
                    virtual_time = p
        if virtual_time is None:
            virtual_time = max(passes[g] for g in present)
        for g in present:
            if group_idle[g]:
                # One stride of credit: a group that blocked after
                # under-using its share wakes with priority, which lets
                # I/O-bound nodes (like *log*) actually collect their
                # entitlement; the bound prevents catch-up monopolies.
                rebased = virtual_time - self._stride[g]
                if rebased > passes[g]:
                    passes[g] = rebased
                group_idle[g] = False
        for g in range(len(self.groups)):
            if not buckets[g]:
                group_idle[g] = True
        # Smallest (pass, group index) wins.
        best = present[0]
        best_pass = passes[best]
        for g in present:
            p = passes[g]
            if p < best_pass or (p == best_pass and g < best):
                best = g
                best_pass = p
        tasks = buckets[best]
        index = self._rr_index[best] % len(tasks)
        self._rr_index[best] += 1
        passes[best] += self._stride[best]
        chosen = tasks[index]
        for g in present:
            buckets[g].clear()
        return chosen


# Convenience alias used by experiment code.
SchedulerRun = _SchedulerBase


def figure5_groups() -> List[TaskGroup]:
    """The three virtual service nodes of the Figure 5 experiment.

    "we create two additional virtual service nodes *comp* and *log* in
    *tacoma*, besides the one for web content service (*web*). [...]
    Each of the three virtual service nodes is allocated an *equal*
    share of the CPU.  However, their loads are *higher* than their
    respective shares."  The differing process counts per node are what
    vanilla Linux rewards and the proportional-share scheduler ignores.
    """
    return [
        TaskGroup("web", [WorkloadSpec.web_server(), WorkloadSpec.web_server()], tickets=1.0),
        TaskGroup("comp", [WorkloadSpec.cpu_hog()] * 3, tickets=1.0),
        TaskGroup("log", [WorkloadSpec.disk_logger()], tickets=1.0),
    ]
