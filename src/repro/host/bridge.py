"""Host networking modules: bridging and proxying.

Paper §3.3: an IP address is assigned to each virtual service node "by a
*bridging module* running in the host OS, which acts as a transparent
bridge connecting all virtual service nodes in the HUP host".  Footnote
3 adds the alternative: "if the scarcity of IP addresses becomes a
problem, we will adopt the technique of *proxying* instead of bridging,
so that a virtual service node can still communicate with a reserved IP
address."

Both techniques are implemented:

* :class:`BridgingModule` — one routable IP per node; forwarding is a
  layer-2 table lookup with negligible per-request cost.
* :class:`ProxyModule` — nodes share the host's IP; each node gets a
  host port, and a user-space proxy relays every request, charging host
  CPU work and extra latency per request (this is why the reproduction
  band notes the "switch proxy less performant").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = ["Endpoint", "BridgingModule", "ProxyModule"]

# Proxy relay cost per request, host CPU megacycles: the proxy must
# accept, read, rewrite and re-send each request and response in user
# space (two extra socket round trips through the host kernel).
PROXY_CPU_MCYCLES_PER_REQUEST = 2.0
# Per-MB relay (copy through the proxy process) cost in megacycles.
PROXY_CPU_MCYCLES_PER_MB = 6.0


@dataclass(frozen=True)
class Endpoint:
    """Where a virtual service node can be reached."""

    ip: str
    port: int

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"


class BridgingModule:
    """Transparent bridge: node IP -> node, O(1) forwarding, no relay cost."""

    def __init__(self, host_name: str = ""):
        self.host_name = host_name
        self._table: Dict[str, Any] = {}

    def register(self, ip: str, node: Any) -> Endpoint:
        """Install the 'UML-IP' mapping for a newly primed node (§4.3)."""
        if ip in self._table:
            raise ValueError(f"IP {ip} already bridged on host {self.host_name!r}")
        self._table[ip] = node
        return Endpoint(ip=ip, port=0)

    def unregister(self, ip: str) -> None:
        if ip not in self._table:
            raise KeyError(f"IP {ip} not bridged on host {self.host_name!r}")
        del self._table[ip]

    def resolve(self, ip: str) -> Any:
        """The node behind ``ip``; KeyError if unknown (packet dropped)."""
        return self._table[ip]

    def relay_cost(self, payload_mb: float, cpu_mhz: float) -> float:
        """Seconds of host work to forward one request — bridging is in
        the kernel fast path, so effectively free."""
        return 0.0

    @property
    def n_nodes(self) -> int:
        return len(self._table)


class ProxyModule:
    """User-space proxy: (host IP, port) -> node, with per-request cost."""

    def __init__(self, host_ip: str, host_name: str = "", base_port: int = 20000):
        self.host_ip = host_ip
        self.host_name = host_name
        self._base_port = base_port
        self._next_port = base_port
        self._table: Dict[int, Any] = {}
        self.requests_relayed = 0
        self.mb_relayed = 0.0

    def register(self, node: Any, port: Optional[int] = None) -> Endpoint:
        """Map a host port to ``node``; auto-assigns ports by default."""
        if port is None:
            port = self._next_port
            self._next_port += 1
        if port in self._table:
            raise ValueError(f"port {port} already mapped on host {self.host_name!r}")
        self._table[port] = node
        return Endpoint(ip=self.host_ip, port=port)

    def unregister(self, port: int) -> None:
        if port not in self._table:
            raise KeyError(f"port {port} not mapped on host {self.host_name!r}")
        del self._table[port]

    def resolve(self, port: int) -> Any:
        return self._table[port]

    def relay_cost(self, payload_mb: float, cpu_mhz: float) -> float:
        """Seconds of host CPU consumed relaying one request+response.

        Unlike bridging, every byte crosses the proxy process twice
        (read + write), so the cost scales with payload size.
        """
        if payload_mb < 0:
            raise ValueError(f"negative payload: {payload_mb}")
        if cpu_mhz <= 0:
            raise ValueError(f"cpu_mhz must be positive, got {cpu_mhz}")
        self.requests_relayed += 1
        self.mb_relayed += payload_mb
        work = PROXY_CPU_MCYCLES_PER_REQUEST + PROXY_CPU_MCYCLES_PER_MB * payload_mb
        return work / cpu_mhz

    @property
    def n_nodes(self) -> int:
        return len(self._table)

    def endpoints(self) -> Tuple[Endpoint, ...]:
        return tuple(Endpoint(self.host_ip, port) for port in sorted(self._table))
