"""Workload substrate: clients, request generators, and attacks.

* :mod:`repro.workload.apps` — per-application request profiles (the
  web content service's dataset-dependent syscall mix, honeypot probe
  requests, and the comp/log background jobs of Figure 5).
* :mod:`repro.workload.siege` — the HTTP request generator standing in
  for the paper's *siege* tool (§5): open-loop Poisson and closed-loop
  worker modes, with response-time monitors.
* :mod:`repro.workload.attack` — the ghttpd buffer-overflow attack
  campaign against the honeypot (§2.1, §5 'Attack isolation').
* :mod:`repro.workload.clients` — client machine populations on the
  LAN.
"""

from repro.workload.apps import (
    honeypot_probe_request,
    web_request,
    web_request_mix,
)
from repro.workload.attack import AttackCampaign, AttackOutcome
from repro.workload.clients import ClientPool
from repro.workload.siege import Siege, SiegeReport

__all__ = [
    "AttackCampaign",
    "AttackOutcome",
    "ClientPool",
    "Siege",
    "SiegeReport",
    "honeypot_probe_request",
    "web_request",
    "web_request_mix",
]
