"""Application request profiles.

The web content service (S_I) "provides a static dataset to clients"
(§5); serving a dataset of D MB costs user-mode work (parsing plus
copy/checksum of the payload) and a syscall count that grows with the
number of 32 KB ``write()`` chunks.  This mix is what produces the
Figure 6 observation: the UML application-level slow-down is a modest,
roughly size-independent constant (~1.4x), far below the ~23x
per-syscall ratio of Table 4, because the user-mode portion runs
unmodified.
"""

from __future__ import annotations

from repro.core.node import Request
from repro.guestos.syscall import SyscallMix
from repro.net.lan import NetworkInterface

__all__ = [
    "WEB_BASE_SYSCALLS",
    "WEB_SYSCALLS_PER_MB",
    "WEB_BASE_USER_MCYCLES",
    "WEB_USER_MCYCLES_PER_MB",
    "web_request_mix",
    "web_request",
    "honeypot_probe_request",
]

# Accept/parse/open/stat/close etc. per request.
WEB_BASE_SYSCALLS = 30.0
# One write() per 32 KB chunk of response body.
WEB_SYSCALLS_PER_MB = 32.0
# Request parsing, header generation.
WEB_BASE_USER_MCYCLES = 1.0
# Copy/checksum work per MB of payload.
WEB_USER_MCYCLES_PER_MB = 2.0


def web_request_mix(dataset_mb: float) -> SyscallMix:
    """The per-request execution profile for a D-MB static dataset."""
    if dataset_mb < 0:
        raise ValueError(f"negative dataset size: {dataset_mb}")
    return SyscallMix(
        user_mcycles=WEB_BASE_USER_MCYCLES + WEB_USER_MCYCLES_PER_MB * dataset_mb,
        n_syscalls=WEB_BASE_SYSCALLS + WEB_SYSCALLS_PER_MB * dataset_mb,
    )


def web_request(client: NetworkInterface, dataset_mb: float, label: str = "GET /") -> Request:
    """One GET for the static dataset."""
    return Request(
        client=client,
        response_mb=dataset_mb,
        mix=web_request_mix(dataset_mb),
        label=label,
    )


def honeypot_probe_request(
    client: NetworkInterface, exploit: bool = False
) -> Request:
    """A request to the honeypot's ghttpd 'victim' server.

    With ``exploit=True`` this is the malicious HTTP request of §2.1:
    "a malicious packet is sent as an HTTP request, causing buffer
    overflow to bind a shell on a certain port."
    """
    return Request(
        client=client,
        response_mb=0.002,  # a small page / error response
        mix=SyscallMix(user_mcycles=0.2, n_syscalls=15),
        is_exploit=exploit,
        label="exploit" if exploit else "probe",
    )
