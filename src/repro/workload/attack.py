"""The ghttpd buffer-overflow attack campaign.

Paper §2.1: "one known attack to ghttpd is: a malicious packet is sent
as an HTTP request, causing buffer overflow to bind a shell on a
certain port.  Then the attacker can remotely log in using the port,
and run a remote shell!  With SODA, since the root that runs ghttpd is
the root of the *guest OS*, not the host OS, the attack will *not*
affect the host OS as well as other services."

§5's attack-isolation experiment: "the honeypot service is constantly
attacked and crashed.  However, the web content service is *not*
affected."  The campaign here reproduces that: each wave sends the
exploit, gains a guest-root shell, wreaks havoc (crashing the guest),
and verifies the blast radius stops at the guest boundary.  The crashed
honeypot VM is rebooted between waves (the honeypot's purpose is to
keep being attacked).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional

from repro.core.errors import SODAError
from repro.core.node import ExploitSucceeded, ServiceUnavailableError, VirtualServiceNode
from repro.core.switch import ServiceSwitch
from repro.net.lan import NetworkInterface
from repro.sim.kernel import Event, Simulator
from repro.workload.apps import honeypot_probe_request

__all__ = ["AttackOutcome", "AttackCampaign"]

# Attacker dwell time between gaining the shell and the guest kernel
# panicking under the attacker's rampage, seconds.
SHELL_SESSION_S = 0.5


@dataclass
class AttackOutcome:
    """What one campaign achieved — and what it provably did not."""

    waves: int = 0
    shells_bound: int = 0
    guest_crashes: int = 0
    host_compromises: int = 0  # stays 0: that is the isolation claim
    sibling_compromises: int = 0  # stays 0 likewise
    reboots: int = 0

    @property
    def contained(self) -> bool:
        """True iff all damage stayed inside the honeypot guest."""
        return self.host_compromises == 0 and self.sibling_compromises == 0


class AttackCampaign:
    """Repeatedly exploit and crash a vulnerable node."""

    def __init__(
        self,
        sim: Simulator,
        switch: ServiceSwitch,
        attacker: NetworkInterface,
        siblings: Optional[List[VirtualServiceNode]] = None,
    ):
        self.sim = sim
        self.switch = switch
        self.attacker = attacker
        self.siblings = siblings or []

    def _reboot(self, node: VirtualServiceNode) -> Generator[Event, Any, None]:
        """The honeypot operator restores the victim after each crash."""
        from repro.core.recovery import reboot_node

        yield from reboot_node(self.sim, node)
        if not node.entrypoint:
            # Nodes built outside the daemon path carry no entrypoint;
            # the honeypot's victim server must come back regardless.
            node.vm.processes.spawn(command="ghttpd-1.4", uid=0, user="root")

    def run(self, waves: int) -> Generator[Event, Any, AttackOutcome]:
        """Run ``waves`` exploit-crash-reboot cycles."""
        if waves < 1:
            raise ValueError(f"waves must be >= 1, got {waves}")
        outcome = AttackOutcome()
        for _ in range(waves):
            outcome.waves += 1
            request = honeypot_probe_request(self.attacker, exploit=True)
            try:
                yield self.sim.process(self.switch.serve(request), name="exploit")
            except ExploitSucceeded as success:
                node = success.node
                outcome.shells_bound += 1
                # The attacker holds a guest-root shell for a while...
                yield self.sim.timeout(SHELL_SESSION_S)
                # ...tries to break out (provably cannot)...
                if node.vm.attacker_can_reach_host():
                    outcome.host_compromises += 1  # pragma: no cover
                for sibling in self.siblings:
                    if sibling.vm.compromised:
                        outcome.sibling_compromises += 1  # pragma: no cover
                # ...and crashes the guest.
                node.vm.crash(cause="attacker rampage")
                outcome.guest_crashes += 1
                yield from self._reboot(node)
                outcome.reboots += 1
            except ServiceUnavailableError:
                # Victim still rebooting; try again shortly.
                yield self.sim.timeout(0.1)
            except SODAError:
                pass
        return outcome
