"""Arrival-trace replay.

Siege drives synthetic open/closed loops; real hosting platforms are
evaluated against recorded request traces.  :class:`TraceReplay` fires
requests at exact recorded instants, and the builders create synthetic
traces — homogeneous Poisson, and a diurnal (sinusoidally-modulated)
process via Lewis-Shedler thinning — so experiments can exercise the
time-varying load a long-lived application service (§1) actually sees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Tuple

from repro.core.errors import SODAError
from repro.core.switch import ServiceSwitch
from repro.sim.kernel import Event, Simulator
from repro.sim.rng import RandomStreams
from repro.workload.apps import web_request
from repro.workload.clients import ClientPool
from repro.workload.siege import SiegeReport

__all__ = [
    "ArrivalTrace",
    "TraceReplay",
    "poisson_trace",
    "diurnal_trace",
    "thinned_trace",
]


@dataclass(frozen=True)
class ArrivalTrace:
    """Recorded arrivals: (time offset, dataset MB) pairs, time-sorted."""

    arrivals: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        last = -1.0
        for offset, size in self.arrivals:
            # isfinite also rejects NaN, which the < comparisons below
            # would silently wave through (NaN compares False to all).
            if not (math.isfinite(offset) and math.isfinite(size)):
                raise ValueError(f"non-finite arrival entry: ({offset}, {size})")
            if offset < 0 or size < 0:
                raise ValueError(f"negative arrival entry: ({offset}, {size})")
            if offset < last:
                raise ValueError("trace is not time-sorted")
            last = offset

    def __len__(self) -> int:
        return len(self.arrivals)

    @property
    def duration(self) -> float:
        return self.arrivals[-1][0] if self.arrivals else 0.0

    def rate_in(self, start: float, end: float) -> float:
        """Mean arrival rate inside [start, end)."""
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        count = sum(1 for t, _ in self.arrivals if start <= t < end)
        return count / (end - start)


def poisson_trace(
    streams: RandomStreams, rate_rps: float, duration_s: float, dataset_mb: float = 0.25
) -> ArrivalTrace:
    """A homogeneous Poisson trace."""
    if rate_rps <= 0 or duration_s <= 0:
        raise ValueError("rate and duration must be positive")
    arrivals: List[Tuple[float, float]] = []
    t = 0.0
    while True:
        t += streams.exponential("trace-poisson", 1.0 / rate_rps)
        if t >= duration_s:
            break
        arrivals.append((t, dataset_mb))
    return ArrivalTrace(tuple(arrivals))


def thinned_trace(
    streams: RandomStreams,
    rate_fn: Callable[[float], float],
    max_rate: float,
    duration_s: float,
    size_fn: Callable[[float], float],
    gap_stream: str = "trace-thin-gap",
    thin_stream: str = "trace-thin",
) -> ArrivalTrace:
    """A non-homogeneous Poisson trace via Lewis-Shedler thinning.

    Candidate arrivals are drawn at the envelope rate ``max_rate`` from
    ``gap_stream``; each candidate at instant ``t`` survives with
    probability ``rate_fn(t) / max_rate`` (one uniform from
    ``thin_stream`` per candidate, drawn unconditionally so the draw
    sequence is independent of the rate shape), and surviving arrivals
    get a dataset size from ``size_fn(t)``.  Everything is a pure
    function of ``(streams, arguments)`` — the scenario layer's
    purity/digest contract rests on this.
    """
    if max_rate <= 0 or duration_s <= 0:
        raise ValueError("max rate and duration must be positive")
    arrivals: List[Tuple[float, float]] = []
    t = 0.0
    while True:
        t += streams.exponential(gap_stream, 1.0 / max_rate)
        if t >= duration_s:
            break
        rate_t = rate_fn(t)
        if rate_t < 0 or rate_t > max_rate * (1.0 + 1e-12):
            raise ValueError(
                f"rate_fn({t}) = {rate_t} escapes the envelope [0, {max_rate}]"
            )
        if streams.uniform(thin_stream, 0.0, 1.0) <= rate_t / max_rate:
            arrivals.append((t, size_fn(t)))
    return ArrivalTrace(tuple(arrivals))


def diurnal_trace(
    streams: RandomStreams,
    base_rps: float,
    peak_factor: float,
    period_s: float,
    duration_s: float,
    dataset_mb: float = 0.25,
) -> ArrivalTrace:
    """A sinusoidally-modulated Poisson trace (Lewis-Shedler thinning).

    Instantaneous rate: ``base * (1 + (peak_factor-1)/2 * (1 + sin))``,
    i.e. oscillating between ``base`` and ``base * peak_factor``.  With
    ``peak_factor == 1`` the modulation amplitude is zero and the
    process *is* homogeneous Poisson, so the call delegates to
    :func:`poisson_trace` — same draws, same arrivals, arrival for
    arrival (pinned by a regression test).
    """
    if base_rps <= 0 or duration_s <= 0 or period_s <= 0:
        raise ValueError("rates, period and duration must be positive")
    if peak_factor < 1:
        raise ValueError(f"peak factor must be >= 1, got {peak_factor}")
    if peak_factor == 1:
        return poisson_trace(streams, base_rps, duration_s, dataset_mb)
    swing = (peak_factor - 1.0) / 2.0

    def rate(t: float) -> float:
        return base_rps * (1.0 + swing * (1.0 + math.sin(2 * math.pi * t / period_s)))

    return thinned_trace(
        streams,
        rate_fn=rate,
        max_rate=base_rps * peak_factor,
        duration_s=duration_s,
        size_fn=lambda _t: dataset_mb,
        gap_stream="trace-diurnal",
        thin_stream="trace-thin",
    )


class TraceReplay:
    """Fires a trace's requests against a service switch."""

    def __init__(
        self,
        sim: Simulator,
        switch: ServiceSwitch,
        clients: ClientPool,
        trace: ArrivalTrace,
    ):
        self.sim = sim
        self.switch = switch
        self.clients = clients
        self.trace = trace

    def run(self) -> Generator[Event, Any, SiegeReport]:
        """Replay the whole trace; returns a :class:`SiegeReport`."""
        report = SiegeReport(dataset_mb=-1.0, started_at=self.sim.now)
        origin = self.sim.now
        in_flight = []

        def one(sim: Simulator, size_mb: float) -> Generator[Event, Any, None]:
            client = self.clients.next_client()
            started = sim.now
            try:
                response = yield sim.process(
                    self.switch.serve(web_request(client, size_mb))
                )
            except SODAError:
                report.failures += 1
                return
            elapsed = sim.now - started
            report.overall.record(sim.now, elapsed)
            report.node_monitor(response.node_name).record(sim.now, elapsed)

        for offset, size_mb in self.trace.arrivals:
            gap = origin + offset - self.sim.now
            if gap > 0:
                yield self.sim.timeout(gap)
            in_flight.append(self.sim.process(one(self.sim, size_mb)))
        for proc in in_flight:
            yield proc
        report.finished_at = self.sim.now
        return report
