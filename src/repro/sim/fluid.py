"""Hybrid-fidelity substrate: fluid background load at fleet scale.

The discrete serving path (client -> switch -> node -> client) costs a
dozen kernel events *per request*, which caps runs at small-cluster
scale.  This module adds the platform's second fidelity level: traced
"focus" services keep full discrete per-request simulation, while
*background* services are aggregated into **fluid arrival batches** —
one kernel arrival event per batch of requests, not one per request —
with batch-level switch scheduling, LAN occupancy, and SLA/billing
accounting that matches the per-request path in expectation.

The pieces
----------
* :class:`FluidServiceSpec` — the workload shape of one background
  service: aggregate arrival rate, mean batch size, per-request service
  demand and payload sizes, optional SLO target and billing rate.
  Batch interarrival gaps and batch sizes are drawn from named RNG
  streams (``fluid:<service>:<cluster>:gap`` / ``...:size``), so fluid
  runs join the repository-wide determinism contract.
* :class:`FluidCluster` — an aggregate model of ``n_hosts`` background
  hosts behind one cluster switch.  Per-host state lives in
  preallocated numpy buffers keyed by host index (busy-until horizon,
  served count, busy seconds) — no per-host Python objects, which is
  what lets a single run carry 1000 hosts.  Each cluster owns its own
  LAN segment; batches occupy it with *one* aggregate flow per
  direction through the real max-min allocator.
* :class:`FluidBackgroundLoad` — drives a set of specs over a set of
  clusters in either fidelity: ``fluid`` (batched, the default) or
  ``discrete`` (one event chain per request, used by the determinism
  guard and the fleet-scale benchmark's comparison arm).  Both draw
  interarrival gaps from the *same* named stream.
* :class:`FluidReport` — per-service accounting (requests, batches,
  latency, SLA violations, CPU-seconds, bytes, billed CPU-hours) with
  an exact-float :meth:`~FluidReport.digest` for the determinism guard.

Why focus digests are bit-identical (the hybrid-fidelity contract)
------------------------------------------------------------------
Background clusters share the *kernel* with the focus cluster but no
mutable simulation state: each cluster has its own LAN segment (its
batches never enter the focus LAN's max-min pass), its own numpy host
ledgers, and its own named RNG streams (per-name seeds are hash-derived
from the master seed, so background draws cannot perturb focus draws).
Interleaved background events advance the shared heap's sequence
counter, but sequence numbers only break ties *between* events at one
instant — they never move an event's firing time, and the relative
order of any two focus events is preserved.  A focus service's request
digest is therefore a pure function of the focus subsystem, identical
whether the background fleet runs fluid, discrete, or not at all.  The
flip side — the documented divergence — is that fluid aggregation is
exact for focus services only because background load is modelled on
disjoint bottleneck resources; background services themselves match the
discrete path in expectation (means over many batches), not per event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

import numpy as np

from repro.net.lan import LAN
from repro.obs.metrics import registry_of
from repro.sim.kernel import Event, Simulator
from repro.sim.rng import RandomStreams

__all__ = [
    "CLASSIFY_MCYCLES",
    "FluidServiceSpec",
    "FluidCluster",
    "FluidReport",
    "FluidBackgroundLoad",
]

# CPU megacycles to classify and dispatch one request at a cluster's
# switch.  Mirrors ``repro.core.switch.SWITCH_CPU_MCYCLES`` (pinned by a
# test) — a fluid batch of n requests pays n of these in one slice.
CLASSIFY_MCYCLES = 0.6

# Fallback client population NIC rate: generous so the clients are never
# the modelled bottleneck (the cluster fabric and hosts are).
_CLIENT_POOL_MBPS = 40_000.0


@dataclass(frozen=True)
class FluidServiceSpec:
    """The workload shape of one background service.

    ``arrival_rps`` is the *aggregate* request rate; in fluid mode it is
    realised as batches of mean ``mean_batch`` requests arriving every
    ``mean_batch / arrival_rps`` seconds in expectation, so both
    fidelities issue the same request volume in expectation.
    """

    name: str
    arrival_rps: float
    mean_batch: int = 100
    service_s: float = 0.004  # per-request CPU demand at one worker
    request_mb: float = 0.002
    response_mb: float = 0.02
    slo_latency_s: Optional[float] = None
    rate_per_cpu_hour: float = 1.0  # billing tariff (utility accounting)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("spec needs a service name")
        if self.arrival_rps <= 0:
            raise ValueError(f"arrival_rps must be positive, got {self.arrival_rps}")
        if self.mean_batch < 1:
            raise ValueError(f"mean_batch must be >= 1, got {self.mean_batch}")
        if self.service_s <= 0:
            raise ValueError(f"service_s must be positive, got {self.service_s}")
        if self.request_mb <= 0 or self.response_mb <= 0:
            raise ValueError("payload sizes must be positive")


class FluidCluster:
    """Aggregate model of ``n_hosts`` background hosts behind one switch.

    Per-host state is three preallocated numpy buffers keyed by host
    index — the vectorized twin of a rack of :class:`Host` objects.  A
    batch of ``n`` requests is spread across hosts round-robin (the
    fleet analogue of the switch's weighted rotation): host ``h`` gets
    ``n_h`` requests and serves them at ``workers_per_host`` parallel
    workers, extending its busy horizon by ``n_h * service_s / workers``.
    The batch completes when the slowest involved host drains.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        n_hosts: int,
        workers_per_host: int = 2,
        host_cpu_mhz: float = 1000.0,
        host_nic_mbps: float = 100.0,
        fabric_mbps: Optional[float] = None,
        lan_latency_s: float = 0.0002,
    ):
        if n_hosts < 1:
            raise ValueError(f"n_hosts must be >= 1, got {n_hosts}")
        if workers_per_host < 1:
            raise ValueError(f"workers_per_host must be >= 1, got {workers_per_host}")
        if host_cpu_mhz <= 0:
            raise ValueError(f"host_cpu_mhz must be positive, got {host_cpu_mhz}")
        self.sim = sim
        self.name = name
        self.n_hosts = n_hosts
        self.workers_per_host = workers_per_host
        self.host_cpu_mhz = host_cpu_mhz
        # The cluster owns its LAN segment: background batches occupy a
        # real max-min allocated fabric, but never the focus cluster's.
        if fabric_mbps is None:
            # A ToR-style fabric provisioned at half the sum of host NICs.
            fabric_mbps = max(host_nic_mbps, n_hosts * host_nic_mbps / 2.0)
        self.lan = LAN(sim, bandwidth_mbps=fabric_mbps, latency_s=lan_latency_s)
        # One aggregate NIC for the rack uplink and one for the client
        # population — flow endpoints for the per-batch transfers.
        self.nic = self.lan.nic(f"{name}-uplink", n_hosts * host_nic_mbps)
        self.clients = self.lan.nic(f"{name}-clients", _CLIENT_POOL_MBPS)
        # Vectorized per-host ledgers, keyed by host index.
        self.busy_until = np.zeros(n_hosts)
        self.served = np.zeros(n_hosts, dtype=np.int64)
        self.busy_s = np.zeros(n_hosts)
        self._cursor = 0  # round-robin rotation start

    def dispatch_batch(
        self, now: float, n: int, service_s: float, window_s: float = 0.0
    ):
        """Account ``n`` requests that arrived spread over ``window_s``.

        The batch event fires once, at the *end* of its aggregation
        window: it stands for requests that arrived evenly over the
        preceding ``window_s`` (the drawn interarrival gap), the last of
        them just now.  Modelling the spread is what keeps fluid
        host-queueing honest — dumping the whole batch at one instant
        would charge every request the queueing delay of its
        batch-mates, a delay the discrete system never sees at
        sub-saturation arrival rates.  Anchoring the window in the
        *past* matters too: all modelled arrivals precede ``now``, so a
        host's busy horizon never encodes future arrivals as present
        backlog for the next batch to queue behind.

        Per host with ``k`` requests, spacing ``d = window / k`` and
        per-request slice ``u = service_s / workers``, the FIFO recursion
        ``finish_j = max(arrive_j, finish_{j-1}) + u`` has a closed form:

        * saturated (``u >= d``): the host never idles, so request ``j``
          waits the initial backlog plus ``j`` net accumulations —
          mean sojourn ``b0 + u + (k-1)(u-d)/2``.
        * unsaturated (``u < d``): the backlog ``b0`` drains by ``d-u``
          per arrival, so only the first ``ceil(b0/(d-u))`` requests
          still queue; the rest pay exactly one slice.

        Returns ``(completion, mean_sojourn)``: when the slowest involved
        host drains and the batch-mean per-request sojourn.  With
        ``n == 1`` both reduce exactly to the discrete request's values
        (queue-behind-busy-host plus one slice), so the two fidelities
        account service time through this one code path.

        One vectorized pass over the host buffers replaces ``n`` discrete
        dispatch decisions.  Deterministic: the rotation cursor and pure
        array arithmetic make the spread a function of call order only.
        """
        if n < 1:
            raise ValueError(f"batch size must be >= 1, got {n}")
        if window_s < 0:
            raise ValueError(f"window must be non-negative, got {window_s}")
        h = self.n_hosts
        unit = service_s / self.workers_per_host
        base, extra = divmod(n, h)
        counts = np.full(h, base, dtype=np.int64)
        if extra:
            take = (np.arange(h) - self._cursor) % h < extra
            counts[take] += 1
            self._cursor = (self._cursor + extra) % h
        involved = counts > 0
        k = counts[involved].astype(np.float64)
        t0 = now - window_s  # first modelled arrival of the window
        # Cross-batch backlog: only work still owed *beyond this event*
        # queues ahead of the window's arrivals.  An unsaturated host's
        # busy_until is a last-finish timestamp, not standing backlog —
        # measuring from ``t0`` would charge a full window of phantom
        # queueing whenever another service's batch landed mid-window.
        b0 = np.maximum(self.busy_until[involved] - now, 0.0)
        d = window_s / k
        slack = d - unit
        sat = slack <= 0.0
        safe_slack = np.where(sat, 1.0, slack)
        # Saturated: sojourn_j = b0 + (j+1)u - jd, summed over j < k.
        sum_sat = k * (b0 + unit) - slack * (k * (k - 1.0) / 2.0)
        finish_sat = b0 + k * unit
        # Unsaturated: the first m arrivals still see backlog
        # b0 - j*(d-u) > 0; everyone pays the base slice.
        m = np.minimum(k, np.ceil(b0 / safe_slack))
        sum_unsat = k * unit + m * b0 - slack * (m * (m - 1.0) / 2.0)
        finish_unsat = (k - 1.0) * d + unit + np.maximum(
            0.0, b0 - (k - 1.0) * slack
        )
        mean_sojourn = float(np.where(sat, sum_sat, sum_unsat).sum()) / n
        finish = t0 + np.where(sat, finish_sat, finish_unsat)
        self.busy_until[involved] = finish
        self.served += counts
        # CPU-seconds booked (one worker for service_s per request);
        # utilization() divides by full worker capacity.
        self.busy_s[involved] += k * service_s
        return float(finish.max()), mean_sojourn

    def utilization(self, start: float, end: float) -> float:
        """Mean worker-CPU utilization of the cluster over [start, end]."""
        horizon = end - start
        if horizon <= 0:
            return 0.0
        capacity = self.n_hosts * self.workers_per_host * horizon
        return float(self.busy_s.sum()) / capacity

    @property
    def total_served(self) -> int:
        return int(self.served.sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FluidCluster({self.name!r}, {self.n_hosts} hosts)"


@dataclass
class _ServiceAccount:
    """Per-service accumulators (exact floats, deterministic order)."""

    requests: int = 0
    batches: int = 0
    latency_sum: float = 0.0
    sla_violations: int = 0
    cpu_s: float = 0.0
    mb_in: float = 0.0
    mb_out: float = 0.0
    billed: float = 0.0


@dataclass
class FluidReport:
    """Aggregated accounting of one background-load run.

    The same accumulators are filled by both fidelities, so a fluid run
    and a discrete run of the same spec are directly comparable: request
    and byte totals match in expectation, CPU-seconds and billing match
    by construction per served request, and latency/SLA figures agree in
    the mean (fluid charges each request its batch-mean sojourn).
    """

    mode: str = "fluid"
    services: Dict[str, _ServiceAccount] = field(default_factory=dict)
    started_at: float = 0.0
    finished_at: float = 0.0

    def account(self, service: str) -> _ServiceAccount:
        if service not in self.services:
            self.services[service] = _ServiceAccount()
        return self.services[service]

    def record_batch(
        self,
        spec: FluidServiceSpec,
        n: int,
        mean_latency_s: float,
        service_s: float,
    ) -> None:
        """Fold one completed batch (n=1 in discrete mode) into the books.

        SLA: every request in the batch is charged the batch's mean
        sojourn, so a batch whose mean breaches the SLO counts all its
        requests as violations — the expectation-level twin of per-request
        SLO monitoring.  Billing: CPU-seconds convert to CPU-hours at the
        spec's tariff, exactly as the discrete path bills served work.
        """
        account = self.account(spec.name)
        account.requests += n
        account.batches += 1
        account.latency_sum += n * mean_latency_s
        if spec.slo_latency_s is not None and mean_latency_s > spec.slo_latency_s:
            account.sla_violations += n
        cpu = n * service_s
        account.cpu_s += cpu
        account.mb_in += n * spec.request_mb
        account.mb_out += n * spec.response_mb
        account.billed += spec.rate_per_cpu_hour * cpu / 3600.0

    @property
    def total_requests(self) -> int:
        return sum(a.requests for a in self.services.values())

    def mean_latency_s(self, service: str) -> float:
        account = self.services[service]
        if account.requests == 0:
            return 0.0
        return account.latency_sum / account.requests

    def digest(self) -> Dict[str, Any]:
        """Everything observable, exact floats — the determinism pin."""
        return {
            "mode": self.mode,
            "window": (self.started_at, self.finished_at),
            "services": {
                name: (
                    a.requests, a.batches, a.latency_sum, a.sla_violations,
                    a.cpu_s, a.mb_in, a.mb_out, a.billed,
                )
                for name, a in sorted(self.services.items())
            },
        }


class FluidBackgroundLoad:
    """Drives background services over fluid clusters at either fidelity.

    ``fidelity="fluid"`` (default): one arrival event per *batch*; the
    batch pays one aggregate ingress flow, one batch classify slice, one
    vectorized host dispatch, and one aggregate response flow.
    ``fidelity="discrete"``: the same workload as one event chain per
    *request* — the comparison arm.  Both modes draw interarrival gaps
    from the stream ``fluid:<service>:gap``.
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        clusters: List[FluidCluster],
        specs: List[FluidServiceSpec],
        fidelity: str = "fluid",
    ):
        if not clusters:
            raise ValueError("need at least one cluster")
        if not specs:
            raise ValueError("need at least one service spec")
        if fidelity not in ("fluid", "discrete"):
            raise ValueError(f"unknown fidelity {fidelity!r}")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate service names: {names}")
        self.sim = sim
        self.streams = streams
        self.clusters = clusters
        self.specs = specs
        self.fidelity = fidelity
        self.report = FluidReport(mode=fidelity)
        self._inflight = 0
        self._drained: Optional[Event] = None
        # Metrics instrumentation, cached per attached registry (the
        # registry may be attached to the sim after this load exists).
        self._obs_registry = None
        self._obs_metrics = None

    @property
    def n_hosts(self) -> int:
        return sum(c.n_hosts for c in self.clusters)

    # -- lifecycle ---------------------------------------------------------
    def run(self, duration_s: float) -> Generator[Event, Any, FluidReport]:
        """Drive every spec for ``duration_s``; returns the report.

        A simulated-process generator: ``testbed.run(load.run(60.0))`` or
        ``sim.process(load.run(60.0))`` for hybrid runs alongside focus
        traffic.
        """
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        self.report.started_at = self.sim.now
        arrivals = [
            self.sim.process(
                self._drive(spec, cluster, duration_s),
                name=f"fluid:{spec.name}:{cluster.name}",
            )
            for spec in self.specs
            for cluster in self.clusters
        ]
        for proc in arrivals:
            yield proc
        # Arrivals done; wait for in-flight batches/requests to drain.
        if self._inflight:
            self._drained = Event(self.sim)
            yield self._drained
            self._drained = None
        self.report.finished_at = self.sim.now
        return self.report

    def start(self, duration_s: float):
        """Spawn :meth:`run` as a background process (hybrid runs)."""
        return self.sim.process(self.run(duration_s), name="fluid-background")

    # -- the two fidelities -------------------------------------------------
    def _drive(
        self, spec: FluidServiceSpec, cluster: FluidCluster, duration_s: float
    ) -> Generator[Event, Any, None]:
        """Arrival loop for one (service, cluster) pair.

        The spec's aggregate rate splits evenly across clusters — the
        fluid twin of per-request round-robin: a thinned Poisson stream
        per cluster, so each cluster sees the same long-run utilization
        at either fidelity.  One event per batch (fluid) or per request
        (discrete); both draw gaps from the stream
        ``fluid:<service>:<cluster>:gap``.
        """
        sim = self.sim
        deadline = sim.now + duration_s
        gap_stream = f"fluid:{spec.name}:{cluster.name}:gap"
        size_stream = f"fluid:{spec.name}:{cluster.name}:size"
        fluid = self.fidelity == "fluid"
        share = spec.arrival_rps / len(self.clusters)
        mean_gap = spec.mean_batch / share if fluid else 1.0 / share
        while True:
            gap = self.streams.exponential(gap_stream, mean_gap)
            if sim.now + gap > deadline:
                return
            yield sim.timeout(gap)
            if fluid:
                n = 1 + self.streams.poisson(size_stream, spec.mean_batch - 1)
            else:
                n = 1
            self._inflight += 1
            # Fluid batches aggregate the preceding gap's arrivals; a
            # discrete "batch" is one request arriving exactly now.
            window = gap if fluid else 0.0
            sim.process(
                self._batch(spec, cluster, n, window), name=f"batch:{spec.name}"
            )

    def _batch(
        self,
        spec: FluidServiceSpec,
        cluster: FluidCluster,
        n: int,
        window_s: float,
    ) -> Generator[Event, Any, None]:
        """One batch through the cluster: ingress, classify, serve, respond.

        With ``n == 1`` this *is* the discrete per-request chain — the two
        fidelities share one serving path, so their accounting matches in
        expectation by construction.

        Latency is recorded *analytically*, not as the batch's wall
        sojourn: the batch occupies the fabric and the hosts for its real
        aggregate duration, but each request is charged its expected
        share — an amortized slice of each aggregate transfer (a request
        only waits for its own bytes; propagation is paid once per
        request), one classify slice (discrete requests classify
        independently, not serialized behind their batch-mates), and the
        mean host sojourn from :meth:`FluidCluster.dispatch_batch`.  With
        ``n == 1`` every share reduces to the whole, so a discrete-mode
        record equals the request's true wall sojourn exactly.
        """
        sim = self.sim
        prop = cluster.lan.latency_s
        # 1. Aggregate ingress: clients -> cluster switch, one flow.
        inbound = cluster.lan.transfer(
            cluster.clients, cluster.nic, n * spec.request_mb,
            label=f"fluid:{spec.name}:in",
        )
        yield inbound.done
        # 2. Switch scheduling: the batch coalesces n classify slices of
        # switch-CPU *accounting* into one kernel event, but waits only
        # one slice — per-request classify latency matches discrete.
        classify = CLASSIFY_MCYCLES / cluster.host_cpu_mhz
        yield sim.timeout(classify)
        # 3. Vectorized host dispatch; sleep until the batch drains.
        completion, mean_sojourn = cluster.dispatch_batch(
            sim.now, n, spec.service_s, window_s
        )
        if completion > sim.now:
            yield sim.timeout(completion - sim.now)
        # 4. Aggregate response: cluster -> clients, one flow.
        outbound = cluster.lan.transfer(
            cluster.nic, cluster.clients, n * spec.response_mb,
            label=f"fluid:{spec.name}:out",
        )
        yield outbound.done
        mean_latency = (
            (inbound.elapsed - prop) / n + prop
            + classify
            + mean_sojourn
            + (outbound.elapsed - prop) / n + prop
        )
        self.report.record_batch(spec, n, mean_latency, spec.service_s)
        self._record_metrics(spec, cluster, n, mean_sojourn)
        self._inflight -= 1
        if self._inflight == 0 and self._drained is not None:
            self._drained.succeed()

    def _record_metrics(
        self,
        spec: FluidServiceSpec,
        cluster: FluidCluster,
        n: int,
        mean_sojourn: float,
    ) -> None:
        """Metrics parity with the discrete path (observe, never perturb).

        Request volume reuses the discrete switch counter name — the
        semantics match (requests completing a serving path, by outcome)
        — while batch count and mean host sojourn are fluid-specific.
        """
        registry = registry_of(self.sim)
        if registry is None:
            return
        if self._obs_registry is not registry:
            self._obs_registry = registry
            self._obs_metrics = (
                registry.counter(
                    "soda_switch_requests_total",
                    "Requests seen by a service switch, by outcome.",
                    ("service", "outcome"),
                ),
                registry.counter(
                    "soda_fluid_batches_total",
                    "Fluid arrival batches completed, per service and cluster.",
                    ("service", "cluster"),
                ),
                registry.gauge(
                    "soda_fluid_mean_sojourn_seconds",
                    "Mean host sojourn of the latest fluid batch.",
                    ("service", "cluster"),
                ),
            )
        requests, batches, sojourn = self._obs_metrics
        requests.inc(n, service=spec.name, outcome="ok")
        batches.inc(service=spec.name, cluster=cluster.name)
        sojourn.set(mean_sojourn, service=spec.name, cluster=cluster.name)
