"""Capacity-limited simulated resources.

Three primitives cover every contention pattern in the reproduction:

* :class:`Resource` — a counted semaphore with a FIFO wait queue (e.g. a
  host NIC admitting a bounded number of concurrent flows).
* :class:`Container` — a continuous level with bounded capacity (e.g.
  disk space on a HUP host).
* :class:`Store` — a FIFO queue of discrete items with blocking get
  (e.g. the SODA Daemon's command inbox).

All waiters are served strictly FIFO, which keeps runs deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List

from repro.sim.kernel import Event, SimulationError, Simulator

__all__ = ["Resource", "Container", "Store"]


class _Request(Event):
    """Event handed to a waiter; fires when the resource is acquired."""

    __slots__ = ("resource",)

    def __init__(self, sim: Simulator, resource: "Resource"):
        super().__init__(sim)
        self.resource = resource

    # Context-manager sugar so processes can write
    # ``with resource.request() as req: yield req``.
    def __enter__(self) -> "_Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)


class Resource:
    """Counted semaphore with FIFO queuing.

    >>> sim = Simulator()
    >>> cpu = Resource(sim, capacity=1)
    >>> order = []
    >>> def user(sim, name):
    ...     req = cpu.request()
    ...     yield req
    ...     order.append((sim.now, name))
    ...     yield sim.timeout(5)
    ...     cpu.release(req)
    >>> _ = sim.process(user(sim, "a")); _ = sim.process(user(sim, "b"))
    >>> sim.run()
    >>> order
    [(0.0, 'a'), (5.0, 'b')]
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.users: List[_Request] = []
        self.queue: Deque[_Request] = deque()

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self.users)

    def request(self) -> _Request:
        """Ask for one unit; the returned event fires on acquisition."""
        req = _Request(self.sim, self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed(req)
        else:
            self.queue.append(req)
        return req

    def release(self, request: _Request) -> None:
        """Return one unit previously acquired via ``request``.

        Releasing a queued (never-granted) request cancels it.
        """
        if request in self.users:
            self.users.remove(request)
            self._grant_queued()
        else:
            try:
                self.queue.remove(request)
            except ValueError:
                raise SimulationError("release of a request not held or queued")

    def resize(self, capacity: int) -> None:
        """Change capacity in place.

        Growth grants queued requests immediately; shrinking below the
        current holder count takes effect as holders release (no
        preemption) — the semantics service resizing needs.
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._grant_queued()

    def _grant_queued(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed(nxt)


class Container:
    """A continuous quantity with a bounded capacity.

    ``put``/``get`` return events that fire once the operation can
    complete without violating ``0 <= level <= capacity``.  Waiters are
    FIFO per direction.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.sim = sim
        self.capacity = capacity
        self._level = init
        self._getters: Deque = deque()  # (event, amount)
        self._putters: Deque = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError(f"negative put amount: {amount}")
        event = Event(self.sim)
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError(f"negative get amount: {amount}")
        event = Event(self.sim)
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        """Grant queued operations in FIFO order while possible."""
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    event.succeed(amount)
                    progressed = True
            if self._getters:
                event, amount = self._getters[0]
                if self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    event.succeed(amount)
                    progressed = True


class Store:
    """FIFO queue of discrete items with blocking ``get``.

    ``capacity`` bounds the number of buffered items; ``put`` blocks
    (its event stays pending) while full.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        event = Event(self.sim)
        self._putters.append((event, item))
        self._settle()
        return event

    def get(self) -> Event:
        event = Event(self.sim)
        self._getters.append(event)
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                event, item = self._putters.popleft()
                self.items.append(item)
                event.succeed(item)
                progressed = True
            while self._getters and self.items:
                event = self._getters.popleft()
                event.succeed(self.items.popleft())
                progressed = True
