"""Core discrete-event simulation kernel.

A :class:`Simulator` owns a simulated clock and a binary heap of pending
events.  Simulated activities are written as Python generators wrapped in
:class:`Process`; a process advances by yielding :class:`Event` objects
(most commonly :class:`Timeout`) and is resumed when the yielded event
fires.  Events fire in ``(time, priority, sequence)`` order, so the
simulation is deterministic: ties at the same timestamp are broken by
scheduling order.

The API is a compact subset of SimPy's:

>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker(sim, "a", 2.0))
>>> _ = sim.process(worker(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]

Hot-path notes
--------------
The kernel is the innermost loop of every experiment, so it avoids
allocations where the event machinery is pure plumbing:

* All event classes use ``__slots__``.
* Process bootstraps, interrupt delivery, and resumption on an
  already-processed event do not allocate throwaway :class:`Event`
  objects.  They push a *direct-resume* heap entry instead —
  ``(time, priority, seq, None, process, ok, value, exception)`` — which
  the run loop dispatches straight into :meth:`Process._resume_direct`.
  Heap entries of both shapes share the ``(time, priority, seq)`` prefix
  and ``seq`` is unique, so tuple comparison never reaches the payload
  and the documented firing order is preserved bit-for-bit.
* :class:`Timeout` schedules itself inline instead of going through the
  generic ``Event`` constructor plus :meth:`Simulator._schedule`.
"""

from __future__ import annotations

from heapq import heappop as _heappop, heappush as _heappush
from time import perf_counter as _perf_counter
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Process",
    "Simulator",
]

# Event priorities: URGENT fires before NORMAL at the same timestamp.
# Used internally so that e.g. resource releases propagate before new
# timeouts scheduled at the same instant.
URGENT = 0
NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for kernel misuse (running a dead simulator, double-firing
    an event, yielding a foreign object from a process, ...)."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    The interrupting party supplies ``cause``; the interrupted process can
    catch the exception and inspect it (used e.g. to model a virtual
    service node being crashed by an attack while serving a request).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt(cause={self.cause!r})"


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, is *triggered* when given a value (or an
    exception), and is *processed* once the kernel has run its callbacks.
    Processes waiting on the event are resumed with the event's value, or
    have the event's exception thrown into them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_ok", "__weakref__")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._ok: Optional[bool] = None

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run and the value is observable."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._ok is None:
            raise SimulationError("event value read before it was triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, URGENT)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._exception = exception
        self.sim._schedule(self, URGENT)
        return self

    def _resolve(self) -> None:
        """Run callbacks. Called exactly once by the kernel.

        NOTE: the hot loops in :meth:`Simulator.run` and
        :meth:`Simulator.run_until_process` inline this body instead of
        calling it (only :meth:`Simulator.step` dispatches here), so
        subclasses must not override it — an override would only take
        effect under ``step()``.
        """
        callbacks, self.callbacks = self.callbacks, None
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "pending"
        if self.processed:
            state = "processed"
        elif self.triggered:
            state = "triggered"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` units of simulated time from now."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        # Inlined Event.__init__ plus scheduling: a Timeout is born
        # triggered, so it goes straight onto the heap.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._exception = None
        self._ok = True
        self.delay = delay
        sim._seq += 1
        _heappush(sim._heap, (sim._now + delay, NORMAL, sim._seq, self))


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events: Tuple[Event, ...] = tuple(events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        # Every constituent counts as pending until _check consumes it —
        # including events that were already processed before the
        # condition was built (they are consumed synchronously here).
        self._pending = len(self.events)
        for event in self.events:
            if event.processed:
                self._check(event)
            elif event.callbacks is not None:
                event.callbacks.append(self._check)
        if not self.events and self._ok is None:
            self.succeed(self._collect())

    def _collect(self) -> dict:
        return {e: e._value for e in self.events if e.processed and e.ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once *all* constituent events have fired.

    Fails immediately (with the first failure's exception) if any
    constituent fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        if not event.ok:
            assert event._exception is not None
            self.fail(event._exception)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as *any* constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        if not event.ok:
            assert event._exception is not None
            self.fail(event._exception)
            return
        self.succeed(self._collect())


class _ProcessDone(Event):
    """Terminal event of a Process; fires with the generator's return value."""

    __slots__ = ()


class Process(Event):
    """A simulated activity driven by a Python generator.

    The generator yields :class:`Event` objects; the process sleeps until
    the yielded event fires, then resumes with the event's value (or the
    event's exception raised at the yield point).  A Process is itself an
    Event that fires when the generator finishes, so processes can wait
    on each other:

    >>> sim = Simulator()
    >>> def child(sim):
    ...     yield sim.timeout(3)
    ...     return "done"
    >>> def parent(sim):
    ...     result = yield sim.process(child(sim))
    ...     assert result == "done"
    >>> _ = sim.process(parent(sim))
    >>> sim.run()
    """

    __slots__ = ("_generator", "name", "_target", "_resume_cb")

    def __init__(self, sim: "Simulator", generator: Generator[Event, Any, Any], name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process requires a generator, got {type(generator).__name__}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # One bound method reused for every callback registration; bound
        # methods compare equal, so interrupt() can still .remove() it.
        self._resume_cb = self._resume
        # Bootstrap: resume immediately (at current sim time) via a
        # direct-resume heap entry (no throwaway Event).
        sim._schedule_resume(self, True, None, None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a finished process is an error; interrupting a
        process blocked on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._target = None
        self.sim._schedule_resume(self, False, None, Interrupt(cause))

    # NOTE: _resume and _resume_direct share one body, duplicated on
    # purpose — this is the innermost step of every simulation and a
    # delegation call per event costs ~5%.  Keep the two in sync.
    def _resume(self, trigger: Event) -> None:
        """Advance the generator with ``trigger``'s outcome (callback form)."""
        if self._ok is not None:
            # Process was already finished (e.g. interrupted and completed
            # before a stale event fired); drop the wakeup.
            return
        self._target = None
        sim = self.sim
        sim._active_process = self
        exception = trigger._exception
        try:
            if exception is not None:
                next_event = self._generator.throw(exception)
            else:
                next_event = self._generator.send(trigger._value)
        except StopIteration as stop:
            sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._active_process = None
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            if not sim._catch_process_failures:
                raise
            return
        sim._active_process = None
        try:
            callbacks = next_event.callbacks
        except AttributeError:
            self._yield_error(next_event)
            return  # unreachable: _yield_error raises
        if callbacks is None:
            # Already processed: resume at the same timestamp via a
            # direct-resume entry (no throwaway Event allocation).
            self._target = next_event
            sim._schedule_resume(
                self, next_event._ok, next_event._value, next_event._exception
            )
        else:
            self._target = next_event
            callbacks.append(self._resume_cb)

    def _resume_direct(
        self, ok: Optional[bool], value: Any, exception: Optional[BaseException]
    ) -> None:
        """Advance the generator by one step with the given outcome."""
        if self._ok is not None:
            # Stale wakeup (see _resume): drop it.
            return
        self._target = None
        sim = self.sim
        sim._active_process = self
        try:
            if exception is not None:
                next_event = self._generator.throw(exception)
            else:
                next_event = self._generator.send(value)
        except StopIteration as stop:
            sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._active_process = None
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            if not sim._catch_process_failures:
                raise
            return
        sim._active_process = None
        try:
            callbacks = next_event.callbacks
        except AttributeError:
            self._yield_error(next_event)
            return  # unreachable: _yield_error raises
        if callbacks is None:
            self._target = next_event
            sim._schedule_resume(
                self, next_event._ok, next_event._value, next_event._exception
            )
        else:
            self._target = next_event
            callbacks.append(self._resume_cb)

    def _yield_error(self, yielded: Any) -> None:
        """Fail the process over a non-event yield (cold path)."""
        error = SimulationError(f"process {self.name!r} yielded non-event {yielded!r}")
        self._generator.close()
        self.fail(error)
        raise error

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state}>"


class Simulator:
    """Owns the simulated clock and the pending-event heap.

    Heap entries come in two shapes sharing the ``(time, priority, seq)``
    prefix (``seq`` is unique, so comparisons never reach the payload):

    * ``(time, priority, seq, event)`` — a triggered :class:`Event`
      whose callbacks run at ``time``.
    * ``(time, priority, seq, None, process, ok, value, exception)`` — a
      direct resume of ``process`` with the given outcome.

    Parameters
    ----------
    catch_process_failures:
        When True (default), an exception escaping a process generator
        fails the Process event (observable by waiters) rather than
        aborting the whole run.  Set False in tests to surface bugs.
    """

    def __init__(self, catch_process_failures: bool = True):
        self._now: float = 0.0
        self._heap: List[tuple] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._catch_process_failures = catch_process_failures
        # Opt-in kernel profiler (duck-typed; see repro.obs.profiler).
        # When None — the default — run()/run_until_process() use the
        # allocation-free fast loops below, unchanged.
        self._profiler: Optional[Any] = None

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_scheduled(self) -> int:
        """Total heap entries ever scheduled (events, resumes, callbacks).

        This is the kernel-cost yardstick the hybrid-fidelity benches
        report: it counts every entry pushed onto the event heap over the
        simulator's lifetime, at zero extra cost (it *is* the sequence
        counter that orders same-instant ties).
        """
        return self._seq

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    # -- profiling ----------------------------------------------------------
    @property
    def profiler(self) -> Optional[Any]:
        """The installed kernel profiler, if any."""
        return self._profiler

    def set_profiler(self, profiler: Optional[Any]) -> None:
        """Install (or remove, with ``None``) a kernel profiler.

        The profiler is duck-typed — it needs ``record(site, wall_s)``
        and ``note_heap_depth(depth)`` — so the kernel stays free of
        observability imports.  With a profiler installed, ``run()`` and
        ``run_until_process()`` dispatch through a profiled loop that
        times every callback site; the profiler only *measures* (wall
        clock, heap depth), so simulation results are bit-identical
        either way.  ``step()`` is never profiled.
        """
        self._profiler = profiler

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event (trigger it with succeed/fail)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` simulated time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a new simulated process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._seq += 1
        _heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def _schedule_resume(
        self,
        process: Process,
        ok: Optional[bool],
        value: Any,
        exception: Optional[BaseException],
    ) -> None:
        """Schedule a direct resume of ``process`` at the current instant."""
        self._seq += 1
        _heappush(
            self._heap, (self._now, URGENT, self._seq, None, process, ok, value, exception)
        )

    def call_soon(self, callback: Callable[[], None]) -> None:
        """Run ``callback()`` at the current instant with URGENT priority.

        The callback fires in ``(time, priority, sequence)`` order like
        any event, after everything urgent already scheduled.  Used by
        components (e.g. the LAN's batched rate recomputation) to
        coalesce several same-instant mutations into one pass.
        """
        self._seq += 1
        _heappush(
            self._heap,
            (self._now, URGENT, self._seq, None, _CallbackShim(callback), True, None, None),
        )

    def schedule_at(
        self, time: float, callback: Callable[[], None], priority: int = NORMAL
    ) -> None:
        """Run ``callback()`` at absolute simulated time ``time``.

        The pause/resume hook for sub-kernel drivers: ``run(until=H)``
        parks the simulator exactly at horizon ``H`` (events beyond it
        stay on the heap), and ``schedule_at`` injects externally-sourced
        work — cross-shard message deliveries, epoch-barrier callbacks —
        at its exact timestamp before the next ``run(until=...)`` leg.
        Injection order at equal ``(time, priority)`` is preserved by the
        sequence counter, so callers control same-instant tie-breaking by
        the order of their ``schedule_at`` calls.
        """
        if time < self._now:
            raise ValueError(
                f"schedule_at({time}) is in the past (now={self._now})"
            )
        self._seq += 1
        _heappush(
            self._heap,
            (time, priority, self._seq, None, _CallbackShim(callback), True, None, None),
        )

    def peek(self) -> float:
        """Time of the next pending event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty event heap")
        entry = _heappop(self._heap)
        if entry[0] < self._now:
            raise SimulationError("event scheduled in the past (kernel bug)")
        self._now = entry[0]
        target = entry[3]
        if target is None:
            entry[4]._resume_direct(entry[5], entry[6], entry[7])
        else:
            target._resolve()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains, or the clock reaches ``until``.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if the last event fires earlier.
        """
        # The heap-pop loop is inlined (rather than calling step()) — it
        # is the hottest couple of lines in the entire repository.
        # Events cannot be scheduled in the past (delay >= 0 always), so
        # the monotonicity assertion in step() is skipped here.
        if self._profiler is not None:
            return self._run_profiled(until)
        heap = self._heap
        pop = _heappop
        if until is not None:
            if until < self._now:
                raise ValueError(f"until={until} is in the past (now={self._now})")
            while heap and heap[0][0] <= until:
                entry = pop(heap)
                self._now = entry[0]
                target = entry[3]
                if target is None:
                    entry[4]._resume_direct(entry[5], entry[6], entry[7])
                else:
                    callbacks = target.callbacks
                    target.callbacks = None
                    for callback in callbacks:
                        callback(target)
            self._now = until
        else:
            while heap:
                entry = pop(heap)
                self._now = entry[0]
                target = entry[3]
                if target is None:
                    entry[4]._resume_direct(entry[5], entry[6], entry[7])
                else:
                    callbacks = target.callbacks
                    target.callbacks = None
                    for callback in callbacks:
                        callback(target)

    def run_until_process(self, process: Process, limit: float = float("inf")) -> Any:
        """Run until ``process`` completes; return its value.

        Raises the process's exception if it failed, or
        :class:`SimulationError` if the heap drains (deadlock) or the
        clock passes ``limit`` before completion.
        """
        if self._profiler is not None:
            return self._run_until_process_profiled(process, limit)
        heap = self._heap
        pop = _heappop
        while process._ok is None:
            if not heap:
                raise SimulationError(
                    f"deadlock: heap drained before process {process.name!r} finished"
                )
            if heap[0][0] > limit:
                raise SimulationError(
                    f"time limit {limit} exceeded waiting for process {process.name!r}"
                )
            entry = pop(heap)
            self._now = entry[0]
            target = entry[3]
            if target is None:
                entry[4]._resume_direct(entry[5], entry[6], entry[7])
            else:
                callbacks = target.callbacks
                target.callbacks = None
                for callback in callbacks:
                    callback(target)
        return process.value

    # -- profiled dispatch (opt-in; see set_profiler) -----------------------
    def _dispatch_profiled(self, entry: tuple, profiler: Any) -> None:
        """Dispatch one heap entry, timing it against its callback site."""
        target = entry[3]
        if target is None:
            owner = entry[4]
            began = _perf_counter()
            owner._resume_direct(entry[5], entry[6], entry[7])
            elapsed = _perf_counter() - began
            name = getattr(owner, "name", None)
            if name is not None:
                site = "resume:" + name
            else:
                callback = getattr(owner, "_callback", None)
                site = (
                    "call_soon:" + getattr(callback, "__qualname__", "callback")
                    if callback is not None
                    else "resume:" + type(owner).__name__
                )
        else:
            callbacks = target.callbacks
            target.callbacks = None
            kind = type(target).__name__
            if callbacks:
                first = callbacks[0]
                first_owner = getattr(first, "__self__", None)
                if isinstance(first_owner, Process):
                    site = kind + "->" + first_owner.name
                else:
                    site = kind + "->" + getattr(
                        first, "__qualname__", type(first).__name__
                    )
            else:
                site = kind
            began = _perf_counter()
            for callback in callbacks:
                callback(target)
            elapsed = _perf_counter() - began
        profiler.record(site, elapsed)

    def _run_profiled(self, until: Optional[float]) -> None:
        """run() with the installed profiler timing every dispatch."""
        profiler = self._profiler
        heap = self._heap
        pop = _heappop
        if until is not None:
            if until < self._now:
                raise ValueError(f"until={until} is in the past (now={self._now})")
            while heap and heap[0][0] <= until:
                profiler.note_heap_depth(len(heap))
                entry = pop(heap)
                self._now = entry[0]
                self._dispatch_profiled(entry, profiler)
            self._now = until
        else:
            while heap:
                profiler.note_heap_depth(len(heap))
                entry = pop(heap)
                self._now = entry[0]
                self._dispatch_profiled(entry, profiler)

    def _run_until_process_profiled(self, process: Process, limit: float) -> Any:
        """run_until_process() with profiled dispatch."""
        profiler = self._profiler
        heap = self._heap
        pop = _heappop
        while process._ok is None:
            if not heap:
                raise SimulationError(
                    f"deadlock: heap drained before process {process.name!r} finished"
                )
            if heap[0][0] > limit:
                raise SimulationError(
                    f"time limit {limit} exceeded waiting for process {process.name!r}"
                )
            profiler.note_heap_depth(len(heap))
            entry = pop(heap)
            self._now = entry[0]
            self._dispatch_profiled(entry, profiler)
        return process.value


class _CallbackShim:
    """Adapts a zero-argument callback to the direct-resume entry shape."""

    __slots__ = ("_callback",)

    def __init__(self, callback: Callable[[], None]):
        self._callback = callback

    def _resume_direct(self, ok: Any, value: Any, exception: Any) -> None:
        self._callback()
