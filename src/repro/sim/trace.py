"""Structured simulation tracing.

Attach a :class:`Tracer` to a :class:`~repro.sim.kernel.Simulator`
(``sim.tracer = Tracer(sim)``) and instrumented components — the SODA
Daemon's priming pipeline, the Master's admission/resizing/teardown —
emit timestamped, categorised events.  With no tracer attached, the
:func:`trace` helper is a no-op, so instrumentation costs nothing in
experiments.

A bounded tracer (``capacity=N``) is a ring buffer: it retains the
**newest** ``N`` events and counts evictions in ``dropped``.  (Earlier
versions kept the oldest events and discarded new arrivals — the
opposite of what you want when diagnosing the end of a long run.)

>>> from repro.sim import Simulator
>>> sim = Simulator()
>>> tracer = Tracer(sim)
>>> sim.tracer = tracer
>>> trace(sim, "demo", "hello", value=1)
>>> tracer.events()[0].message
'hello'
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.sim.kernel import Simulator

__all__ = ["TraceEvent", "Tracer", "trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One emitted event."""

    time: float
    category: str
    message: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"[{self.time:12.6f}] {self.category:<12} {self.message}" + (
            f"  ({extra})" if extra else ""
        )


class Tracer:
    """Collects trace events for one simulation.

    With ``capacity=N`` the tracer is a bounded ring buffer holding the
    newest ``N`` events; each eviction of an older event increments
    ``dropped``.  Unbounded (the default) it keeps everything.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self._dropped_metric = None
        self._dropped_registry = None

    def emit(self, category: str, message: str, **fields: Any) -> None:
        if self.capacity is not None and len(self._events) >= self.capacity:
            self.dropped += 1  # the deque evicts the oldest event below
            # Surface ring evictions in the metrics exposition so bounded
            # tracing is visible, not silent.  Cached per registry (the
            # sim's registry can be attached or swapped after the tracer).
            registry = getattr(self.sim, "metrics", None)
            if registry is not None:
                if self._dropped_registry is not registry:
                    self._dropped_registry = registry
                    self._dropped_metric = registry.counter(
                        "soda_trace_events_dropped_total",
                        "Trace events evicted from bounded ring buffers.",
                    )
                self._dropped_metric.inc()
        self._events.append(
            TraceEvent(time=self.sim.now, category=category, message=message, fields=fields)
        )

    def events(self, category: Optional[str] = None) -> List[TraceEvent]:
        if category is None:
            return list(self._events)
        return [e for e in self._events if e.category == category]

    def categories(self) -> List[str]:
        return sorted({e.category for e in self._events})

    def __len__(self) -> int:
        return len(self._events)

    def render(self, category: Optional[str] = None) -> str:
        return "\n".join(e.render() for e in self.events(category))

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0


def trace(sim: Simulator, category: str, message: str, **fields: Any) -> None:
    """Emit onto ``sim.tracer`` if one is attached; otherwise a no-op."""
    tracer = getattr(sim, "tracer", None)
    if tracer is not None:
        tracer.emit(category, message, **fields)
