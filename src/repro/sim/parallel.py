"""Parallel federated simulation: per-cluster sub-kernels, WAN lookahead.

A federated hosting utility is many autonomous clusters coupled only by
WAN links (the utility/grid decomposition of PAPERS.md), and that makes
it exactly the workload conservative parallel discrete-event simulation
was built for: a cluster's internal events can never be influenced by a
remote cluster faster than the WAN latency between them, so each WAN
link's ``latency_s`` is a guaranteed **lookahead** bound.

This module shards a federated run across sub-kernels:

* :class:`ClusterShard` — one cluster as a self-contained simulation:
  its own :class:`~repro.sim.kernel.Simulator`, its own spawned RNG
  namespace, its own LAN segment and numpy host ledgers (a
  :class:`~repro.sim.fluid.FluidCluster` fleet), plus geo-routed demand
  and its slice of the two-level broker protocol.  A shard interacts
  with the rest of the federation **only** through picklable
  :class:`ShardMessage` values — never live object references.
* The **epoch coordinator** (:func:`run_federation`) advances global
  time in epochs of ``min(latency_s)`` over all inter-cluster links.
  Within an epoch ``[T, T + L)`` every shard simulates independently
  (``Simulator.run(until=horizon)`` parks each kernel exactly at the
  barrier; ``Simulator.schedule_at`` re-injects work for the next leg).
  At the barrier, the messages every shard emitted are gathered, sorted
  by ``(deliver_at, src, seq)`` — the stable sequence key — and handed
  to their destination shards before any shard starts the next epoch.
* **Why this is safe**: a message sent at ``t in [T, T+L)`` over a link
  with latency ``lat >= L`` is delivered at ``t + lat >= T + L`` — at
  or after the next barrier.  No shard can ever receive a message from
  the epoch it is currently simulating, so no rollback is needed.
* **Why worker counts cannot change results**: each shard is a pure
  function of its spec and its (sorted) inbound message stream, both of
  which are identical whatever the process layout; and the barrier sort
  key is global and total, so same-instant deliveries are scheduled in
  the same kernel order everywhere.  ``run_federation`` therefore
  produces **bit-identical digests** for 1 (in-process serial), 2, 4,
  ... worker processes — the determinism guard pins this.

The cross-cluster message kinds exercised by the shard model:

* ``dispatch`` / ``reply`` — geo-routed request batches served by a
  remote replica, round-trip accounted at the origin,
* ``place`` / ``placed`` — broker placement calls: a shard asks the
  global :class:`~repro.core.federation.GeoBroker` (hosted on its home
  shard) to place a new service; the decision is broadcast,
* ``xfer`` — the service image pushed over the WAN to the chosen host
  (a latency-plus-bandwidth :class:`~repro.net.wan.WanTransferDescriptor`
  delay); dispatches that beat the image wait in a pending queue.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.core.federation import GeoBroker
from repro.net.wan import WanTransferDescriptor
from repro.obs.federation import (
    FederatedMetrics,
    FederationObsResult,
    FederationObservability,
    FederationProfiler,
    TraceContext,
    merge_shard_spans,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import KernelProfiler
from repro.obs.tracing import RequestTracer
from repro.sim.fluid import (
    CLASSIFY_MCYCLES,
    FluidBackgroundLoad,
    FluidCluster,
    FluidServiceSpec,
)
from repro.sim.kernel import Event, Simulator
from repro.sim.rng import RandomStreams

__all__ = [
    "ShardMessage",
    "GeoServiceSpec",
    "ClusterSpec",
    "WanEdgeSpec",
    "FederationTopology",
    "ClusterShard",
    "FederationRun",
    "run_federation",
]


# ---------------------------------------------------------------------------
# Pure-data topology (everything picklable: specs cross process boundaries).
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardMessage:
    """One cross-shard message, exchanged at epoch barriers.

    ``seq`` is the sender's monotonic counter; ``(deliver_at, src, seq)``
    is therefore globally unique and totally ordered — the stable
    sequence key every barrier sorts by, so delivery order (and hence
    each receiving kernel's tie-breaking) is identical for any worker
    layout.
    """

    deliver_at: float
    src: str
    dst: str
    seq: int
    kind: str
    payload: Tuple
    send_time: float
    #: Cross-shard trace propagation: the originating request's
    #: :class:`~repro.obs.federation.TraceContext` (or ``None`` with
    #: tracing off).  Pure observability — never read by handlers for
    #: simulation decisions and never part of a digest.
    trace: Optional[TraceContext] = None

    @property
    def sort_key(self) -> Tuple[float, str, int]:
        return (self.deliver_at, self.src, self.seq)


@dataclass(frozen=True)
class GeoServiceSpec:
    """A federation-wide service replica set entry."""

    name: str
    home: str  # hosting cluster
    service_s: float = 0.004
    request_mb: float = 0.002
    response_mb: float = 0.02

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("geo service needs a name")
        if self.service_s <= 0:
            raise ValueError(f"service_s must be positive, got {self.service_s}")
        if self.request_mb < 0 or self.response_mb < 0:
            raise ValueError("payload sizes must be non-negative")


@dataclass(frozen=True)
class ClusterSpec:
    """One autonomous cluster of the federation (picklable)."""

    name: str
    n_hosts: int = 50
    workers_per_host: int = 2
    host_cpu_mhz: float = 1000.0
    background: Tuple[FluidServiceSpec, ...] = ()
    geo_rps: float = 0.0  # aggregate geo-routed request rate issued here
    geo_mean_batch: int = 20
    n_placements: int = 0  # broker placement calls issued during the run

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("cluster needs a name")
        if self.n_hosts < 1:
            raise ValueError(f"n_hosts must be >= 1, got {self.n_hosts}")
        if self.geo_rps < 0:
            raise ValueError(f"geo_rps must be non-negative, got {self.geo_rps}")
        if self.geo_mean_batch < 1:
            raise ValueError(f"geo_mean_batch must be >= 1, got {self.geo_mean_batch}")
        if self.n_placements < 0:
            raise ValueError(f"n_placements must be >= 0, got {self.n_placements}")


@dataclass(frozen=True)
class WanEdgeSpec:
    """A WAN link between two clusters; ``latency_s`` is its lookahead."""

    a: str
    b: str
    latency_s: float
    bandwidth_mbps: float = 622.0

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError("a WAN edge joins two distinct clusters")
        if self.latency_s <= 0:
            raise ValueError(
                "conservative synchronization needs a positive latency "
                f"(lookahead), got {self.latency_s}"
            )
        if self.bandwidth_mbps <= 0:
            raise ValueError(
                f"bandwidth must be positive, got {self.bandwidth_mbps}"
            )

    def descriptor(self, size_mb: float, label: str = "") -> WanTransferDescriptor:
        return WanTransferDescriptor(
            src=self.a, dst=self.b, size_mb=size_mb,
            bandwidth_mbps=self.bandwidth_mbps, lookahead_s=self.latency_s,
            label=label,
        )


@dataclass(frozen=True)
class FederationTopology:
    """The federated deployment: clusters, WAN mesh, global services."""

    clusters: Tuple[ClusterSpec, ...]
    edges: Tuple[WanEdgeSpec, ...]
    geo_services: Tuple[GeoServiceSpec, ...] = ()
    broker: str = ""  # broker's home cluster (default: first cluster)
    image_mb: float = 64.0  # service image pushed per placement
    placed_service_s: float = 0.004
    placed_request_mb: float = 0.002
    placed_response_mb: float = 0.02

    def __post_init__(self) -> None:
        names = [c.name for c in self.clusters]
        if len(names) < 2:
            raise ValueError("a federation needs at least two clusters")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate cluster names: {names}")
        if self.image_mb <= 0:
            raise ValueError(f"image_mb must be positive, got {self.image_mb}")
        broker = self.broker or names[0]
        if broker not in names:
            raise ValueError(f"broker cluster {broker!r} not in {sorted(names)}")
        object.__setattr__(self, "broker", broker)
        known = set(names)
        pairs = set()
        for edge in self.edges:
            if edge.a not in known or edge.b not in known:
                raise ValueError(f"edge {edge.a}-{edge.b} references unknown cluster")
            pairs.add(frozenset((edge.a, edge.b)))
        missing = [
            (a, b)
            for i, a in enumerate(names)
            for b in names[i + 1:]
            if frozenset((a, b)) not in pairs
        ]
        if missing:
            raise ValueError(
                f"the WAN mesh must cover every cluster pair; missing {missing}"
            )
        for service in self.geo_services:
            if service.home not in known:
                raise ValueError(
                    f"service {service.name!r} homed on unknown cluster "
                    f"{service.home!r}"
                )

    @property
    def lookahead_s(self) -> float:
        """The epoch length: min latency over all inter-cluster links."""
        return min(edge.latency_s for edge in self.edges)

    def edge(self, a: str, b: str) -> WanEdgeSpec:
        for candidate in self.edges:
            if {candidate.a, candidate.b} == {a, b}:
                return candidate
        raise KeyError(f"no WAN edge between {a!r} and {b!r}")

    def latency_map(self) -> Dict[tuple, float]:
        return {(e.a, e.b): e.latency_s for e in self.edges}

    def spec(self, name: str) -> ClusterSpec:
        for cluster in self.clusters:
            if cluster.name == name:
                return cluster
        raise KeyError(f"no cluster named {name!r}")


# ---------------------------------------------------------------------------
# The sub-kernel: one cluster as a self-contained simulation.
# ---------------------------------------------------------------------------

class _DirectoryEntry:
    """A shard's view of one federation service."""

    __slots__ = ("host", "service_s", "request_mb", "response_mb", "ready")

    def __init__(
        self, host: str, service_s: float, request_mb: float,
        response_mb: float, ready: bool,
    ):
        self.host = host
        self.service_s = service_s
        self.request_mb = request_mb
        self.response_mb = response_mb
        self.ready = ready


class ClusterShard:
    """One cluster's sub-kernel: LAN, hosts, fleet, and message handlers.

    Everything inside a shard is a pure function of ``(spec, topology,
    seed, inbound messages)``: the kernel is private, the RNG namespace
    is spawned from the master seed by cluster name (stable whatever the
    process layout), and the fluid cluster's LAN/host ledgers are
    touched by no one else.  Outbound effects queue in :attr:`outbox`
    as :class:`ShardMessage` values for the coordinator to route.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        topology: FederationTopology,
        seed: int,
        obs: Optional[FederationObservability] = None,
    ):
        self.spec = spec
        self.topology = topology
        self.name = spec.name
        self.sim = Simulator()
        self.streams = RandomStreams(seed).spawn(f"shard:{spec.name}")
        self.cluster = FluidCluster(
            self.sim, spec.name, spec.n_hosts,
            workers_per_host=spec.workers_per_host,
            host_cpu_mhz=spec.host_cpu_mhz,
        )
        self.fleet: Optional[FluidBackgroundLoad] = None
        if spec.background:
            self.fleet = FluidBackgroundLoad(
                self.sim, self.streams, [self.cluster], list(spec.background)
            )
        # The federation service directory (insertion-ordered: initial
        # services in topology order, then placements in delivery order
        # — deterministic, so RNG picks over it are too).
        self.directory: Dict[str, _DirectoryEntry] = {}
        for service in topology.geo_services:
            self.directory[service.name] = _DirectoryEntry(
                service.home, service.service_s, service.request_mb,
                service.response_mb, True,
            )
        # Dispatches for services not yet known/ready here (image in
        # flight): drained in arrival order when the image lands.
        self._pending: Dict[str, List[tuple]] = {}
        self._peers = tuple(
            c.name for c in topology.clusters if c.name != spec.name
        )
        self.broker: Optional[GeoBroker] = None
        if topology.broker == spec.name:
            self.broker = GeoBroker(
                home=spec.name,
                latency_s=topology.latency_map(),
                capacity={c.name: c.n_hosts for c in topology.clusters},
            )
            for service in topology.geo_services:
                self.broker.seed(service.name, service.home)
        self.outbox: List[ShardMessage] = []
        self._msg_seq = 0
        self._handlers = {
            "dispatch": self._on_dispatch,
            "reply": self._on_reply,
            "place": self._on_place,
            "placed": self._on_placed,
            "xfer": self._on_xfer,
        }
        # Accounting (exact floats; folded into the digest).
        self.issued_local = 0
        self.issued_remote = 0
        self.served_remote = 0
        self.replied = 0
        self.latency_local_sum = 0.0
        self.latency_remote_sum = 0.0
        self.msgs_sent = 0
        self.msgs_received = 0
        self._classify_s = CLASSIFY_MCYCLES / spec.host_cpu_mhz
        # Per-shard observability (observe, never perturb: nothing below
        # schedules events, draws RNG, or feeds the digest).
        self.obs = obs if obs is not None and obs.enabled else None
        self.tracer: Optional[RequestTracer] = None
        self.registry: Optional[MetricsRegistry] = None
        self.profiler: Optional[KernelProfiler] = None
        self._msgs_metric = None
        self._geo_metric = None
        #: Open root spans by trace id, finished when the round trip
        #: (reply / placed broadcast) lands back here.
        self._open_roots: Dict[Any, Any] = {}
        if self.obs is not None:
            if self.obs.tracing:
                # Namespaced IDs: stable across process layouts, so the
                # reassembled federation traces are bit-identical for
                # any worker count.
                self.tracer = RequestTracer(
                    capacity=self.obs.span_capacity, namespace=self.name
                )
                self.tracer.begin_epoch()
                self.sim.obs_tracer = self.tracer
            if self.obs.metrics:
                self.registry = MetricsRegistry()
                self.sim.metrics = self.registry
                self._msgs_metric = self.registry.counter(
                    "soda_shard_messages_total",
                    "Cross-shard messages at this shard, by direction and kind.",
                    ("direction", "kind"),
                )
                self._geo_metric = self.registry.counter(
                    "soda_geo_requests_total",
                    "Geo-routed requests by scope "
                    "(local/remote issued, served, replied).",
                    ("scope",),
                )
                if self.broker is not None:
                    self.broker.instrument(self.registry)
            if self.obs.profile:
                self.profiler = KernelProfiler().install(self.sim)

    # -- lifecycle ---------------------------------------------------------
    def start(self, duration_s: float) -> None:
        """Spawn the shard's driving processes (call once, at t=0)."""
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        if self.fleet is not None:
            self.fleet.start(duration_s)
        if self.spec.geo_rps > 0:
            self.sim.process(
                self._geo_client(duration_s), name=f"geo:{self.name}"
            )
        if self.spec.n_placements > 0:
            self.sim.process(
                self._placement_client(duration_s), name=f"place:{self.name}"
            )

    def advance(self, horizon: float) -> None:
        """Simulate up to (and including) ``horizon``, then park there."""
        self.sim.run(until=horizon)

    def deliver(self, messages: Sequence[ShardMessage]) -> None:
        """Schedule inbound messages (pre-sorted by the coordinator)."""
        for message in messages:
            if message.deliver_at < self.sim.now:
                raise RuntimeError(
                    f"causality violation: {message.kind!r} for {self.name} "
                    f"at {message.deliver_at} delivered at {self.sim.now} "
                    "(lookahead bug)"
                )
            handler = self._handlers[message.kind]
            self.sim.schedule_at(
                message.deliver_at,
                lambda handler=handler, message=message: handler(message),
            )
            self.msgs_received += 1
            if self._msgs_metric is not None:
                self._msgs_metric.inc(direction="received", kind=message.kind)

    def drain_outbox(self) -> List[ShardMessage]:
        drained, self.outbox = self.outbox, []
        return drained

    def quiet(self) -> bool:
        """True when the shard has no pending events or outbound messages."""
        return not self.outbox and self.sim.peek() == float("inf")

    # -- message plane ------------------------------------------------------
    def send(
        self,
        kind: str,
        dst: str,
        payload: Tuple,
        size_mb: float = 0.0,
        ctx: Optional[TraceContext] = None,
    ) -> None:
        """Queue a cross-cluster message; delivery = latency + bytes/rate.

        ``ctx`` propagates the originating trace: it rides the message,
        and the hop itself becomes a finished ``wan_transfer`` span
        ``[now, deliver_at]`` — exactly latency + transfer time, so the
        reassembled trace's wan segments tile the end-to-end latency.
        """
        edge = self.topology.edge(self.name, dst)
        descriptor = edge.descriptor(size_mb, label=kind)
        self._msg_seq += 1
        deliver_at = descriptor.delivery_time(self.sim.now)
        if ctx is not None and self.tracer is not None:
            segments = descriptor.segments(self.sim.now)
            self.tracer.start_span(
                "wan_transfer",
                f"wan:{self.name}->{dst}",
                self.sim.now,
                parent=ctx,
                kind=kind,
                latency_s=segments["latency_s"],
                transfer_s=segments["transfer_s"],
                size_mb=size_mb,
            ).finish(deliver_at)
        self.outbox.append(
            ShardMessage(
                deliver_at=deliver_at,
                src=self.name,
                dst=dst,
                seq=self._msg_seq,
                kind=kind,
                payload=payload,
                send_time=self.sim.now,
                trace=ctx,
            )
        )
        self.msgs_sent += 1
        if self._msgs_metric is not None:
            self._msgs_metric.inc(direction="sent", kind=kind)

    # -- workload: geo-routed demand ---------------------------------------
    def _geo_client(self, duration_s: float) -> Generator[Event, Any, None]:
        """Issue geo-routed request batches against the service directory."""
        sim = self.sim
        deadline = sim.now + duration_s
        gap_stream = f"geo:{self.name}:gap"
        size_stream = f"geo:{self.name}:size"
        pick_stream = f"geo:{self.name}:pick"
        mean_gap = self.spec.geo_mean_batch / self.spec.geo_rps
        while True:
            gap = self.streams.exponential(gap_stream, mean_gap)
            if sim.now + gap > deadline:
                return
            yield sim.timeout(gap)
            n = 1 + self.streams.poisson(size_stream, self.spec.geo_mean_batch - 1)
            names = list(self.directory)
            service = names[self.streams.choice(pick_stream, len(names))]
            entry = self.directory[service]
            if entry.host == self.name:
                self._serve_local(entry, n, gap)
            else:
                self.issued_remote += n
                if self._geo_metric is not None:
                    self._geo_metric.inc(n, scope="remote")
                ctx = None
                if self.tracer is not None:
                    root = self.tracer.start_span(
                        "geo_request", f"geo:{self.name}", sim.now,
                        service=service, n=n, target=entry.host,
                    )
                    self._open_roots[root.context.trace_id] = root
                    ctx = self._context_for(root)
                self.send(
                    "dispatch", entry.host, (service, n, sim.now),
                    size_mb=n * entry.request_mb, ctx=ctx,
                )

    def _context_for(self, root) -> TraceContext:
        """The picklable handle for a locally-rooted trace."""
        return TraceContext(root.context.trace_id, root.context.span_id, self.name)

    def _serve_local(self, entry: _DirectoryEntry, n: int, window_s: float) -> None:
        _, mean_sojourn = self.cluster.dispatch_batch(
            self.sim.now, n, entry.service_s, window_s
        )
        self.issued_local += n
        self.latency_local_sum += n * (self._classify_s + mean_sojourn)
        if self._geo_metric is not None:
            self._geo_metric.inc(n, scope="local")

    # -- workload: broker placement calls ------------------------------------
    def _placement_client(self, duration_s: float) -> Generator[Event, Any, None]:
        """Ask the global broker to place new services during the run."""
        sim = self.sim
        deadline = sim.now + duration_s
        mean_gap = duration_s / (self.spec.n_placements + 1)
        for i in range(self.spec.n_placements):
            gap = self.streams.exponential(f"place:{self.name}:gap", mean_gap)
            if sim.now + gap > deadline:
                return
            yield sim.timeout(gap)
            service = f"svc-{self.name}-{i}"
            ctx = None
            if self.tracer is not None:
                root = self.tracer.start_span(
                    "placement", f"place:{self.name}", sim.now, service=service
                )
                self._open_roots[root.context.trace_id] = root
                ctx = self._context_for(root)
            if self.broker is not None:
                # The broker lives here: a local call, not a WAN message.
                self._handle_place(service, self.name, ctx)
                if ctx is not None:
                    self._open_roots.pop(ctx.trace_id).finish(sim.now)
            else:
                self.send(
                    "place", self.topology.broker, (service, self.name), ctx=ctx
                )

    # -- message handlers (run inside the kernel at deliver_at) -------------
    def _on_dispatch(self, message: ShardMessage) -> None:
        service, n, origin_time = message.payload
        entry = self.directory.get(service)
        if entry is None or not entry.ready:
            # Placement broadcast or image still in flight: queue; the
            # drain replays arrival order when the service comes up.
            self._pending.setdefault(service, []).append(
                (message.src, n, origin_time, message.trace, self.sim.now)
            )
            return
        self._serve_remote(
            message.src, service, entry, n, origin_time, message.trace
        )

    def _serve_remote(
        self, origin: str, service: str, entry: _DirectoryEntry,
        n: int, origin_time: float, ctx: Optional[TraceContext] = None,
    ) -> None:
        completion, _ = self.cluster.dispatch_batch(
            self.sim.now, n, entry.service_s, 0.0
        )
        self.served_remote += n
        if self._geo_metric is not None:
            self._geo_metric.inc(n, scope="served")
        if ctx is not None and self.tracer is not None:
            self.tracer.start_span(
                "remote_service", f"serve:{self.name}", self.sim.now,
                parent=ctx, service=service, n=n,
            ).finish(completion)
        self.sim.schedule_at(
            completion,
            lambda: self.send(
                "reply", origin, (service, n, origin_time),
                size_mb=n * entry.response_mb, ctx=ctx,
            ),
        )

    def _on_reply(self, message: ShardMessage) -> None:
        _service, n, origin_time = message.payload
        self.replied += n
        self.latency_remote_sum += n * (self.sim.now - origin_time)
        if self._geo_metric is not None:
            self._geo_metric.inc(n, scope="replied")
        if message.trace is not None and self.tracer is not None:
            root = self._open_roots.pop(message.trace.trace_id, None)
            if root is not None:
                root.finish(self.sim.now)

    def _on_place(self, message: ShardMessage) -> None:
        service, origin = message.payload
        self._handle_place(service, origin, message.trace)

    def _handle_place(
        self, service: str, origin: str, ctx: Optional[TraceContext] = None
    ) -> None:
        """Broker-side placement: decide, broadcast, push the image."""
        assert self.broker is not None, "place call reached a non-broker shard"
        host = self.broker.place(service, origin)
        if ctx is not None and self.tracer is not None:
            self.tracer.start_span(
                "place_decide", f"broker:{self.name}", self.sim.now,
                parent=ctx, service=service, host=host,
            ).finish(self.sim.now)
        for peer in self._peers:
            self.send("placed", peer, (service, host), ctx=ctx)
        # The broker cluster hosts the image repository: remote hosts
        # serve only once the image crosses the WAN ("xfer"), but the
        # broker itself may route there immediately — early dispatches
        # wait in the host's pending queue behind the image.
        self._install(service, host, ready=True)
        if host != self.name:
            self.send(
                "xfer", host, (service,),
                size_mb=self.topology.image_mb, ctx=ctx,
            )

    def _on_placed(self, message: ShardMessage) -> None:
        service, host = message.payload
        # The hosting shard serves only after the image lands ("xfer" —
        # strictly later than this broadcast on the same edge); everyone
        # else may route to the service immediately.
        self._install(service, host, ready=host != self.name)
        # The decision broadcast landing back at the requesting shard
        # closes its placement root span.
        if (
            message.trace is not None
            and self.tracer is not None
            and message.trace.origin == self.name
        ):
            root = self._open_roots.pop(message.trace.trace_id, None)
            if root is not None:
                root.finish(self.sim.now)

    def _install(self, service: str, host: str, ready: bool) -> None:
        topology = self.topology
        self.directory[service] = _DirectoryEntry(
            host, topology.placed_service_s, topology.placed_request_mb,
            topology.placed_response_mb, ready,
        )
        if ready:
            self._drain_pending(service)

    def _on_xfer(self, message: ShardMessage) -> None:
        (service,) = message.payload
        entry = self.directory[service]
        entry.ready = True
        self._drain_pending(service)

    def _drain_pending(self, service: str) -> None:
        entry = self.directory[service]
        for origin, n, origin_time, ctx, arrived in self._pending.pop(service, ()):
            # The image-wait segment, so traces through a pending queue
            # still tile end to end: [dispatch arrival, image ready].
            if ctx is not None and self.tracer is not None:
                self.tracer.start_span(
                    "pending_wait", f"serve:{self.name}", arrived,
                    parent=ctx, service=service, n=n,
                ).finish(self.sim.now)
            self._serve_remote(origin, service, entry, n, origin_time, ctx)

    # -- results -------------------------------------------------------------
    def digest(self) -> Dict[str, Any]:
        """Everything observable, exact floats — the determinism pin."""
        return {
            "events": self.sim.events_scheduled,
            "fluid": self.fleet.report.digest() if self.fleet is not None else None,
            "geo": (
                self.issued_local, self.issued_remote, self.served_remote,
                self.replied, self.latency_local_sum, self.latency_remote_sum,
            ),
            "directory": tuple(
                (name, entry.host, entry.ready)
                for name, entry in sorted(self.directory.items())
            ),
            "placements": (
                tuple(sorted(self.broker.placements.items()))
                if self.broker is not None
                else None
            ),
            "msgs": (self.msgs_sent, self.msgs_received),
            "pending": sum(len(queue) for queue in self._pending.values()),
            "cluster": (
                self.cluster.total_served, float(self.cluster.busy_s.sum()),
            ),
        }

    def obs_payload(self) -> Dict[str, Any]:
        """Everything this shard observed, as picklable data.

        Crosses the worker→coordinator pipe once at the end of a run;
        the coordinator reassembles all shards' payloads into one
        :class:`~repro.obs.federation.FederationObsResult`.
        """
        payload: Dict[str, Any] = {
            "spans": [],
            "spans_dropped": 0,
            "metrics": None,
            "profile": None,
        }
        if self.tracer is not None:
            payload["spans"] = [span.to_dict() for span in self.tracer.spans()]
            payload["spans_dropped"] = self.tracer.dropped
        if self.registry is not None:
            payload["metrics"] = self.registry.dump()
        if self.profiler is not None:
            payload["profile"] = self.profiler.snapshot()
        return payload


# ---------------------------------------------------------------------------
# The epoch coordinator: serial in-process or sharded across workers.
# ---------------------------------------------------------------------------

@dataclass
class FederationRun:
    """Result of one federated run (any worker count)."""

    digests: Dict[str, Dict[str, Any]]
    n_workers: int
    wall_s: float
    epochs: int
    messages: int
    lookahead_s: float
    worker_busy_s: List[float] = field(default_factory=list)
    #: Sum over epochs of the slowest worker's CPU time: the wall time
    #: the barrier structure would cost on dedicated cores.
    critical_path_s: float = 0.0
    #: Fraction of worker-slots spent waiting at barriers for the
    #: slowest worker (load imbalance; 0.0 for the in-process serial run).
    barrier_stall_fraction: float = 0.0
    #: Reassembled federation-wide observability (``None`` unless an
    #: observability spec was passed).  Deliberately outside
    #: :attr:`digest_sha`: digests stay bit-identical obs on vs off.
    observability: Optional[FederationObsResult] = None

    @property
    def msgs_per_epoch(self) -> float:
        return self.messages / self.epochs if self.epochs else 0.0

    @property
    def digest_sha(self) -> str:
        """A stable hash over the exact per-cluster digests."""
        canonical = repr(
            [(name, self.digests[name]) for name in sorted(self.digests)]
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    @property
    def total_requests(self) -> int:
        total = 0
        for digest in self.digests.values():
            fluid = digest["fluid"]
            if fluid is not None:
                total += sum(s[0] for s in fluid["services"].values())
            geo = digest["geo"]
            total += geo[0] + geo[1]  # local + remote issued
        return total


def _route(messages: List[ShardMessage]) -> Dict[str, List[ShardMessage]]:
    """Sort globally by the stable sequence key, then split by destination."""
    routed: Dict[str, List[ShardMessage]] = {}
    for message in sorted(messages, key=lambda m: m.sort_key):
        routed.setdefault(message.dst, []).append(message)
    return routed


def _epoch_guard(duration_s: float, epoch_s: float) -> int:
    return 4 * (int(duration_s / epoch_s) + 64)


def run_federation(
    topology: FederationTopology,
    duration_s: float,
    seed: int = 0,
    n_workers: int = 1,
    obs: Optional[FederationObservability] = None,
) -> FederationRun:
    """Run the federated topology to quiescence; any worker count.

    ``n_workers == 1`` runs every shard in-process (the single-process
    reference execution).  ``n_workers > 1`` assigns shards round-robin
    to persistent worker processes and exchanges messages through the
    coordinator at every epoch barrier.  Digests are bit-identical
    across worker counts by construction (see the module docstring).

    Passing an ``obs`` spec turns on federation-wide observability:
    every shard runs its own tracer/registry/profiler, contexts ride the
    message plane, and the coordinator reassembles the result
    (:attr:`FederationRun.observability`).  Digests are bit-identical
    with ``obs`` on or off — observability observes, never perturbs.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if obs is not None and not obs.enabled:
        obs = None
    n_workers = min(n_workers, len(topology.clusters))
    if n_workers == 1:
        return _run_serial(topology, duration_s, seed, obs)
    return _run_parallel(topology, duration_s, seed, n_workers, obs)


def _assemble_obs(
    obs: FederationObservability,
    profiler: Optional[FederationProfiler],
    fed_metrics: Optional[FederatedMetrics],
    payloads: Dict[str, Dict[str, Any]],
    epochs: int,
    messages: int,
) -> FederationObsResult:
    """Reassemble per-shard observability payloads coordinator-side."""
    spans: List[Dict[str, Any]] = []
    if obs.tracing:
        spans = merge_shard_spans(
            {name: payload["spans"] for name, payload in payloads.items()}
        )
    if fed_metrics is not None:
        for name in sorted(payloads):
            if payloads[name]["metrics"] is not None:
                fed_metrics.update(name, payloads[name]["metrics"])
        fed_metrics.note_epoch(epochs, messages)
        if profiler is not None:
            fed_metrics.note_barrier_wait(
                {
                    str(worker): wait
                    for worker, wait in enumerate(profiler.barrier_wait_by_worker())
                }
            )
    return FederationObsResult(
        spans=spans,
        spans_dropped=sum(p["spans_dropped"] for p in payloads.values()),
        metrics=fed_metrics,
        profiler=profiler,
        kernel_profiles={
            name: payload["profile"]
            for name, payload in sorted(payloads.items())
            if payload["profile"] is not None
        },
    )


def _run_serial(
    topology: FederationTopology,
    duration_s: float,
    seed: int,
    obs: Optional[FederationObservability] = None,
) -> FederationRun:
    started = time.perf_counter()
    shards = {
        spec.name: ClusterShard(spec, topology, seed, obs=obs)
        for spec in topology.clusters
    }
    order = sorted(shards)
    for name in order:
        shards[name].start(duration_s)
    epoch_s = topology.lookahead_s
    guard = _epoch_guard(duration_s, epoch_s)
    # All shards share the one in-process "worker": the federation
    # profiler still attributes per-shard CPU, it just sees no stall.
    profiler = (
        FederationProfiler(epoch_s, {name: 0 for name in order})
        if obs is not None
        else None
    )
    fed_metrics = FederatedMetrics() if obs is not None and obs.metrics else None
    horizon = 0.0
    epochs = 0
    messages = 0
    inflight: List[ShardMessage] = []
    while True:
        horizon += epoch_s
        routed = _route(inflight)
        for name in order:
            shards[name].deliver(routed.get(name, ()))
        if profiler is not None:
            epoch_busy: Dict[str, float] = {}
            for name in order:
                began = time.process_time()
                shards[name].advance(horizon)
                epoch_busy[name] = time.process_time() - began
            profiler.record_epoch(epoch_busy)
        else:
            for name in order:
                shards[name].advance(horizon)
        inflight = []
        for name in order:
            inflight.extend(shards[name].drain_outbox())
        messages += len(inflight)
        epochs += 1
        if fed_metrics is not None:
            # The per-barrier snapshot ship (newest wins; cumulative).
            for name in order:
                fed_metrics.update(name, shards[name].registry.dump())
        if (
            horizon >= duration_s
            and not inflight
            and all(shards[name].quiet() for name in order)
        ):
            break
        if epochs > guard:
            raise RuntimeError(
                f"federation failed to quiesce within {guard} epochs "
                f"(horizon {horizon:.3f}s); check for self-sustaining "
                "message loops"
            )
    wall = time.perf_counter() - started
    observability = None
    if obs is not None:
        observability = _assemble_obs(
            obs, profiler, fed_metrics,
            {name: shards[name].obs_payload() for name in order},
            epochs, messages,
        )
    return FederationRun(
        digests={name: shards[name].digest() for name in order},
        n_workers=1,
        wall_s=wall,
        epochs=epochs,
        messages=messages,
        lookahead_s=epoch_s,
        worker_busy_s=[wall],
        critical_path_s=wall,
        barrier_stall_fraction=0.0,
        observability=observability,
    )


def _worker_main(conn, specs, topology, seed, duration_s, obs=None) -> None:
    """A persistent sub-kernel worker: owns its shards across epochs."""
    shards = {
        spec.name: ClusterShard(spec, topology, seed, obs=obs) for spec in specs
    }
    order = sorted(shards)
    for name in order:
        shards[name].start(duration_s)
    observing = obs is not None
    try:
        while True:
            command = conn.recv()
            verb = command[0]
            if verb == "advance":
                _, horizon, inbound = command
                began = time.process_time()
                outbox: List[ShardMessage] = []
                for name in order:
                    shards[name].deliver(inbound.get(name, ()))
                extra = None
                if observing:
                    # Per-shard CPU split for the federation profiler,
                    # plus the per-barrier registry snapshot ship.
                    epoch_busy: Dict[str, float] = {}
                    for name in order:
                        t0 = time.process_time()
                        shards[name].advance(horizon)
                        epoch_busy[name] = time.process_time() - t0
                    extra = {
                        "busy": epoch_busy,
                        "metrics": (
                            {
                                name: shards[name].registry.dump()
                                for name in order
                            }
                            if obs.metrics
                            else None
                        ),
                    }
                else:
                    for name in order:
                        shards[name].advance(horizon)
                for name in order:
                    outbox.extend(shards[name].drain_outbox())
                busy = time.process_time() - began
                quiet = all(shards[name].quiet() for name in order)
                conn.send((outbox, busy, quiet, extra))
            elif verb == "digest":
                conn.send({name: shards[name].digest() for name in order})
            elif verb == "obs":
                conn.send({name: shards[name].obs_payload() for name in order})
            elif verb == "stop":
                break
    finally:
        conn.close()


def _run_parallel(
    topology: FederationTopology,
    duration_s: float,
    seed: int,
    n_workers: int,
    obs: Optional[FederationObservability] = None,
) -> FederationRun:
    import multiprocessing as mp

    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else "spawn")
    started = time.perf_counter()
    names = sorted(spec.name for spec in topology.clusters)
    assignment: List[List[ClusterSpec]] = [[] for _ in range(n_workers)]
    for index, name in enumerate(names):
        assignment[index % n_workers].append(topology.spec(name))
    owners = {
        spec.name: worker
        for worker, specs in enumerate(assignment)
        for spec in specs
    }
    pipes = []
    workers = []
    try:
        for specs in assignment:
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, specs, topology, seed, duration_s, obs),
                daemon=True,
            )
            process.start()
            child_conn.close()
            pipes.append(parent_conn)
            workers.append(process)

        epoch_s = topology.lookahead_s
        guard = _epoch_guard(duration_s, epoch_s)
        profiler = (
            FederationProfiler(epoch_s, owners) if obs is not None else None
        )
        fed_metrics = (
            FederatedMetrics() if obs is not None and obs.metrics else None
        )
        horizon = 0.0
        epochs = 0
        messages = 0
        inflight: List[ShardMessage] = []
        busy_totals = [0.0] * n_workers
        critical_path = 0.0
        stall = 0.0
        while True:
            horizon += epoch_s
            routed = _route(inflight)
            for worker, specs in enumerate(assignment):
                inbound = {
                    spec.name: routed.get(spec.name, []) for spec in specs
                }
                pipes[worker].send(("advance", horizon, inbound))
            inflight = []
            busies = []
            all_quiet = True
            epoch_busy: Dict[str, float] = {}
            for worker in range(n_workers):
                outbox, busy, quiet, extra = pipes[worker].recv()
                inflight.extend(outbox)
                busies.append(busy)
                busy_totals[worker] += busy
                all_quiet = all_quiet and quiet
                if extra is not None:
                    epoch_busy.update(extra["busy"])
                    if fed_metrics is not None and extra["metrics"] is not None:
                        for name, dump in extra["metrics"].items():
                            fed_metrics.update(name, dump)
            slowest = max(busies)
            critical_path += slowest
            stall += sum(slowest - busy for busy in busies)
            messages += len(inflight)
            epochs += 1
            if profiler is not None:
                profiler.record_epoch(epoch_busy)
            if horizon >= duration_s and not inflight and all_quiet:
                break
            if epochs > guard:
                raise RuntimeError(
                    f"federation failed to quiesce within {guard} epochs "
                    f"(horizon {horizon:.3f}s); check for self-sustaining "
                    "message loops"
                )

        digests: Dict[str, Dict[str, Any]] = {}
        for worker in range(n_workers):
            pipes[worker].send(("digest",))
        for worker in range(n_workers):
            digests.update(pipes[worker].recv())
        obs_payloads: Dict[str, Dict[str, Any]] = {}
        if obs is not None:
            for worker in range(n_workers):
                pipes[worker].send(("obs",))
            for worker in range(n_workers):
                obs_payloads.update(pipes[worker].recv())
        for worker in range(n_workers):
            pipes[worker].send(("stop",))
    finally:
        for pipe in pipes:
            pipe.close()
        for process in workers:
            process.join(timeout=30)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5)
    wall = time.perf_counter() - started
    denominator = n_workers * critical_path
    observability = None
    if obs is not None:
        observability = _assemble_obs(
            obs, profiler, fed_metrics, obs_payloads, epochs, messages
        )
    return FederationRun(
        digests={name: digests[name] for name in sorted(digests)},
        n_workers=n_workers,
        wall_s=wall,
        epochs=epochs,
        messages=messages,
        lookahead_s=topology.lookahead_s,
        worker_busy_s=busy_totals,
        critical_path_s=critical_path,
        barrier_stall_fraction=stall / denominator if denominator else 0.0,
        observability=observability,
    )
