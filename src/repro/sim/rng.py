"""Seeded, named random streams.

Every stochastic component in the reproduction draws from its own named
stream so that (a) runs are reproducible end-to-end from a single master
seed and (b) adding randomness to one component does not perturb the
draws seen by another (the classic common-random-numbers discipline for
comparing simulated configurations).
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent, reproducible RNG streams.

    >>> streams = RandomStreams(seed=42)
    >>> a = streams.stream("arrivals")
    >>> b = streams.stream("attack")
    >>> a is streams.stream("arrivals")   # streams are cached by name
    True

    The per-name seed is derived by hashing ``(master_seed, name)``, so
    streams are stable across process restarts and independent of the
    order in which they are first requested.
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for ``name``."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(self._derive(name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory with a seed derived from ``name``.

        Used to give each experiment replication its own namespace.
        """
        return RandomStreams(self._derive(name))

    # Convenience draws -----------------------------------------------------
    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given mean (not rate)."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return float(self.stream(name).exponential(mean))

    def uniform(self, name: str, low: float, high: float) -> float:
        if high < low:
            raise ValueError(f"empty interval [{low}, {high}]")
        return float(self.stream(name).uniform(low, high))

    def normal(self, name: str, mean: float, std: float) -> float:
        if std < 0:
            raise ValueError(f"std must be non-negative, got {std}")
        return float(self.stream(name).normal(mean, std))

    def lognormal_factor(self, name: str, sigma: float) -> float:
        """A multiplicative noise factor with median 1.0.

        Used to jitter modelled costs (boot steps, per-request service
        times) without shifting their central tendency.
        """
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        if sigma == 0:
            return 1.0
        return float(self.stream(name).lognormal(mean=0.0, sigma=sigma))

    def poisson(self, name: str, mean: float) -> int:
        """One Poisson draw with the given mean (>= 0)."""
        if mean < 0:
            raise ValueError(f"mean must be non-negative, got {mean}")
        if mean == 0:
            return 0
        return int(self.stream(name).poisson(mean))

    def choice(self, name: str, n: int) -> int:
        """Uniform integer in [0, n)."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        return int(self.stream(name).integers(0, n))
