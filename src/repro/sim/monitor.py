"""Measurement monitors.

:class:`Monitor` records discrete observations (e.g. per-request response
times); :class:`TimeWeightedMonitor` records a piecewise-constant signal
(e.g. a node's instantaneous CPU share) and integrates it over time.
Both expose summary statistics used by the experiment harness to
regenerate the paper's tables and figures.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Monitor", "TimeWeightedMonitor"]


class Monitor:
    """Records ``(time, value)`` observations and summarises them."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"monitor {self.name!r}: observation at {time} before last {self.times[-1]}"
            )
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def count(self) -> int:
        return len(self.values)

    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"monitor {self.name!r} has no observations")
        return float(np.mean(self.values))

    def std(self) -> float:
        if not self.values:
            raise ValueError(f"monitor {self.name!r} has no observations")
        return float(np.std(self.values))

    def total(self) -> float:
        return float(np.sum(self.values)) if self.values else 0.0

    def min(self) -> float:
        if not self.values:
            raise ValueError(f"monitor {self.name!r} has no observations")
        return float(np.min(self.values))

    def max(self) -> float:
        if not self.values:
            raise ValueError(f"monitor {self.name!r} has no observations")
        return float(np.max(self.values))

    def percentile(self, q: float) -> float:
        if not self.values:
            raise ValueError(f"monitor {self.name!r} has no observations")
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self.values, q))

    def window(self, start: float, end: float) -> "Monitor":
        """Sub-monitor of observations with ``start <= t < end``."""
        if end < start:
            raise ValueError(f"empty window [{start}, {end})")
        sub = Monitor(f"{self.name}[{start},{end})")
        for t, v in zip(self.times, self.values):
            if start <= t < end:
                sub.record(t, v)
        return sub

    def series(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times, dtype=float), np.asarray(self.values, dtype=float)


class TimeWeightedMonitor:
    """A piecewise-constant signal integrated over simulated time.

    ``set(t, v)`` records that the signal takes value ``v`` from time
    ``t`` until the next ``set``.  ``time_average`` integrates the signal
    over ``[start, end]``; ``bucket_averages`` produces the fixed-width
    time series the Figure 5 reproduction plots.
    """

    def __init__(self, name: str = "", initial: float = 0.0, start_time: float = 0.0):
        self.name = name
        self._times: List[float] = [start_time]
        self._values: List[float] = [initial]

    def set(self, time: float, value: float) -> None:
        if time < self._times[-1]:
            raise ValueError(
                f"monitor {self.name!r}: set at {time} before last {self._times[-1]}"
            )
        if time == self._times[-1]:
            # Same-instant update overwrites (zero-width segment).
            self._values[-1] = value
            return
        self._times.append(time)
        self._values.append(value)

    @property
    def current(self) -> float:
        return self._values[-1]

    def time_average(self, start: float, end: float) -> float:
        """Average value of the signal over ``[start, end]``."""
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end}]")
        total = 0.0
        times = self._times + [math.inf]
        for i, value in enumerate(self._values):
            seg_start = max(times[i], start)
            seg_end = min(times[i + 1], end)
            if seg_end > seg_start:
                total += value * (seg_end - seg_start)
        return total / (end - start)

    def bucket_averages(
        self, start: float, end: float, width: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-bucket time averages; returns (bucket centres, averages)."""
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width}")
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end}]")
        edges = np.arange(start, end + width * 1e-9, width)
        if edges[-1] < end:
            edges = np.append(edges, end)
        centres = (edges[:-1] + edges[1:]) / 2.0
        averages = np.array(
            [self.time_average(lo, hi) for lo, hi in zip(edges[:-1], edges[1:])]
        )
        return centres, averages

    def segments(self) -> Sequence[Tuple[float, float]]:
        """The raw (time, value) breakpoints."""
        return list(zip(self._times, self._values))
