"""Discrete-event simulation kernel.

This package provides the deterministic discrete-event substrate on which
the whole SODA reproduction runs: an event heap with a simulated clock
(:mod:`repro.sim.kernel`), generator-based simulated processes with
interrupt support, capacity-limited resources and stores
(:mod:`repro.sim.resources`), seeded named random streams
(:mod:`repro.sim.rng`) and measurement monitors
(:mod:`repro.sim.monitor`).

The design intentionally mirrors the small core of SimPy so the rest of
the codebase reads like standard simulation code, but it is implemented
from scratch (no external simulation dependency) and is fully
deterministic: two runs with the same seed produce identical event
orderings and identical measurements.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.monitor import Monitor, TimeWeightedMonitor
from repro.sim.resources import Container, Resource, Store
from repro.sim.rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Event",
    "Interrupt",
    "Monitor",
    "Process",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "TimeWeightedMonitor",
    "Timeout",
]
