"""Fairness accounting: per-tenant isolation metrics.

A market can maximise revenue while starving whole classes of tenants;
the :class:`FairnessAccountant` makes that visible.  It tracks, per
tenant, the machine-hours requested / admitted / actually served
(goodput) and the money spent, and reduces them to three headline
metrics:

* **Jain's fairness index** over per-tenant goodput — 1.0 when every
  tenant got the same, 1/n when one tenant got everything;
* **spend-vs-allocation skew** — the largest gap between any tenant's
  share of total spend and its share of total goodput (0 when every
  currency unit bought the same amount of capacity for everyone);
* **starvation counters** — tenants that asked and never got anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["jains_index", "TenantUsage", "FairnessAccountant"]


def jains_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 for a perfectly even allocation, ``1/n`` for a fully captured
    one.  Empty or all-zero inputs mean "nothing was allocated", which
    is vacuously fair: 1.0.
    """
    xs = [float(v) for v in values]
    if any(x < 0 for x in xs):
        raise ValueError("fairness is defined over non-negative allocations")
    total = sum(xs)
    if not xs or total == 0.0:
        return 1.0
    return total * total / (len(xs) * sum(x * x for x in xs))


@dataclass
class TenantUsage:
    """Everything the accountant knows about one tenant."""

    requested_m_hours: float = 0.0
    admitted_m_hours: float = 0.0
    served_m_hours: float = 0.0
    spend: float = 0.0
    requests: int = 0
    admissions: int = 0
    rejections: int = 0
    preemptions: int = 0

    @property
    def starved(self) -> bool:
        return self.requests > 0 and self.served_m_hours == 0.0


@dataclass
class FairnessAccountant:
    """Accumulates per-tenant usage and reduces it to isolation metrics."""

    usage: Dict[str, TenantUsage] = field(default_factory=dict)

    def _of(self, tenant: str) -> TenantUsage:
        if tenant not in self.usage:
            self.usage[tenant] = TenantUsage()
        return self.usage[tenant]

    # -- recording -------------------------------------------------------
    def record_request(self, tenant: str, m_hours: float) -> None:
        entry = self._of(tenant)
        entry.requests += 1
        entry.requested_m_hours += m_hours

    def record_admission(self, tenant: str, m_hours: float) -> None:
        entry = self._of(tenant)
        entry.admissions += 1
        entry.admitted_m_hours += m_hours

    def record_rejection(self, tenant: str) -> None:
        self._of(tenant).rejections += 1

    def record_served(self, tenant: str, m_hours: float) -> None:
        """Goodput: machine-hours the tenant actually held."""
        self._of(tenant).served_m_hours += m_hours

    def record_spend(self, tenant: str, amount: float) -> None:
        self._of(tenant).spend += amount

    def record_preemption(self, tenant: str) -> None:
        self._of(tenant).preemptions += 1

    # -- the metrics -----------------------------------------------------
    def jain_goodput(self) -> float:
        """Jain's index over per-tenant served machine-hours.

        Only tenants that asked for capacity count: a registered but
        idle tenant neither improves nor hurts fairness.
        """
        return jains_index([
            u.served_m_hours for u in self.usage.values() if u.requests > 0
        ])

    def spend_allocation_skew(self) -> float:
        """``max_i |spend_share_i - goodput_share_i|`` over tenants.

        0 means spending bought everyone capacity at one price; large
        values mean some tenants paid disproportionately for what they
        received.
        """
        total_spend = sum(u.spend for u in self.usage.values())
        total_served = sum(u.served_m_hours for u in self.usage.values())
        if total_spend == 0.0 or total_served == 0.0:
            return 0.0
        return max(
            abs(u.spend / total_spend - u.served_m_hours / total_served)
            for u in self.usage.values()
        )

    def starved(self) -> List[str]:
        """Tenants that requested capacity and never held any."""
        return sorted(
            name for name, u in self.usage.items() if u.starved
        )

    def snapshot(self) -> Dict[str, float]:
        return {
            "jain_goodput": self.jain_goodput(),
            "spend_allocation_skew": self.spend_allocation_skew(),
            "starved_tenants": float(len(self.starved())),
        }
