"""Market-based multi-tenant economics (extension).

The SODA Agent already owns billing (paper §2.2); this package makes
the platform a *market*: tenants with budgets and bids
(:mod:`repro.market.tenant`), utilization-driven spot pricing of HUP
capacity (:mod:`repro.market.pricing`), bid-aware admission scored as
expected revenue minus expected SLA penalty exposure
(:mod:`repro.market.admission`), fairness and isolation accounting
(:mod:`repro.market.fairness`), and a seeded contention scenario
harness that ablates market against FCFS admission
(:mod:`repro.market.scenario`, surfaced as ``ablation-market``).
"""

from repro.market.admission import (
    AdmissionDecision,
    EconomicAdmission,
    FCFSAdmission,
    MarketAdmissionHook,
)
from repro.market.fairness import FairnessAccountant, jains_index
from repro.market.placement import cheapest_spot_price
from repro.market.pricing import PricingParams, SpotPricer, reprice
from repro.market.scenario import (
    MarketReport,
    ScenarioParams,
    fast_params,
    run_market_scenario,
)
from repro.market.tenant import BudgetExceededError, Tenant, TenantRegistry

__all__ = [
    "AdmissionDecision",
    "BudgetExceededError",
    "EconomicAdmission",
    "FCFSAdmission",
    "FairnessAccountant",
    "MarketAdmissionHook",
    "MarketReport",
    "PricingParams",
    "ScenarioParams",
    "SpotPricer",
    "Tenant",
    "TenantRegistry",
    "cheapest_spot_price",
    "fast_params",
    "jains_index",
    "reprice",
    "run_market_scenario",
]
