"""Tenants: budgeted, bidding principals layered over ASP accounts.

The utility-computing literature frames a hosting platform as a market:
ASPs do not merely *request* capacity, they *bid* for it out of a
finite budget.  A :class:`Tenant` wraps one ASP account with the three
market attributes — a budget (total spend ceiling), a bid (the most it
will pay per machine-instance-hour), and a priority class (reusing the
SLA tiers, which decide penalty schedules and shed order) — plus spend
tracking with a two-phase commit/settle discipline so the invariant
``spent + committed <= budget`` holds at every instant.

The two-phase discipline is what makes the budget bound *provable*
rather than best-effort: admission commits the worst case (bid ×
requested machine-hours) up front, and settlement charges the actual
(spot-priced, possibly preempted-early) cost, which can only be lower.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.auth import ASPRegistry
from repro.core.errors import SODAError
from repro.sla.contract import ServiceClass

__all__ = ["BudgetExceededError", "Tenant", "TenantRegistry"]


class BudgetExceededError(SODAError):
    """A charge or commitment would push a tenant past its budget."""


@dataclass
class Tenant:
    """One budgeted principal on the platform (1:1 with an ASP account)."""

    name: str
    budget: float
    bid_per_m_hour: float
    priority: ServiceClass = ServiceClass.SILVER
    spent: float = 0.0
    committed: float = 0.0
    admitted: int = 0
    rejected: int = 0
    queued: int = 0
    preempted: int = 0
    credits: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ValueError(f"budget cannot be negative: {self.budget}")
        if self.bid_per_m_hour < 0:
            raise ValueError(f"bid cannot be negative: {self.bid_per_m_hour}")
        if not isinstance(self.priority, ServiceClass):
            raise ValueError(f"not a service class: {self.priority!r}")

    @property
    def remaining_budget(self) -> float:
        """Budget not yet spent nor committed to in-flight holdings."""
        return self.budget - self.spent - self.committed


class TenantRegistry:
    """The market-side account book: tenants, budgets, spend.

    Layered over an :class:`~repro.core.auth.ASPRegistry` when one is
    given: registering a tenant also registers the matching ASP account
    so the tenant can call the SODA API with ordinary credentials.
    """

    def __init__(self, asp_registry: Optional[ASPRegistry] = None):
        self.asp_registry = asp_registry
        self._tenants: Dict[str, Tenant] = {}

    def register(
        self,
        name: str,
        budget: float,
        bid_per_m_hour: float,
        priority: ServiceClass = ServiceClass.SILVER,
        secret: Optional[str] = None,
        contact: str = "",
    ) -> Tenant:
        if name in self._tenants:
            raise ValueError(f"tenant {name!r} already registered")
        tenant = Tenant(
            name=name, budget=budget, bid_per_m_hour=bid_per_m_hour,
            priority=priority,
        )
        if self.asp_registry is not None:
            self.asp_registry.register(name, secret or f"{name}-secret", contact)
        self._tenants[name] = tenant
        return tenant

    def get(self, name: str) -> Tenant:
        try:
            return self._tenants[name]
        except KeyError:
            raise KeyError(f"tenant {name!r} not registered") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def __iter__(self):
        return iter(self._tenants.values())

    def __len__(self) -> int:
        return len(self._tenants)

    @property
    def names(self) -> List[str]:
        return list(self._tenants)

    # -- two-phase spend -------------------------------------------------
    def commit(self, name: str, amount: float) -> None:
        """Reserve ``amount`` of budget for an in-flight holding.

        Raises :class:`BudgetExceededError` (and reserves nothing) when
        the tenant's remaining budget cannot cover it.
        """
        if amount < 0:
            raise ValueError(f"cannot commit a negative amount: {amount}")
        tenant = self.get(name)
        if amount > tenant.remaining_budget + 1e-9:
            raise BudgetExceededError(
                f"tenant {name!r} cannot commit {amount:.4f}: "
                f"remaining budget {tenant.remaining_budget:.4f}"
            )
        tenant.committed += amount

    def settle(self, name: str, committed: float, actual: float) -> None:
        """Convert a commitment into actual spend.

        ``actual`` must not exceed ``committed`` (the commitment was the
        worst case); the unspent difference returns to the budget.
        """
        tenant = self.get(name)
        if actual < 0:
            raise ValueError(f"cannot settle a negative charge: {actual}")
        if actual > committed + 1e-9:
            raise BudgetExceededError(
                f"tenant {name!r} settlement {actual:.4f} exceeds its "
                f"commitment {committed:.4f}"
            )
        if committed > tenant.committed + 1e-9:
            raise ValueError(
                f"tenant {name!r} has only {tenant.committed:.4f} committed, "
                f"cannot release {committed:.4f}"
            )
        tenant.committed -= committed
        tenant.spent += actual

    def release(self, name: str, committed: float) -> None:
        """Return an unused commitment in full (rejected after commit)."""
        self.settle(name, committed, 0.0)

    def credit(self, name: str, amount: float) -> None:
        """Record SLA credits earned (informational; invoices net them)."""
        if amount < 0:
            raise ValueError(f"credit cannot be negative: {amount}")
        self.get(name).credits += amount

    # -- queries ---------------------------------------------------------
    def total_spent(self) -> float:
        return sum(t.spent for t in self._tenants.values())

    def over_budget(self) -> List[str]:
        """Names of tenants whose spend exceeds budget (always empty if
        every charge went through commit/settle)."""
        return [
            t.name for t in self._tenants.values()
            if t.spent > t.budget + 1e-9
        ]
