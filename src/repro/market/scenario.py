"""Market contention scenario: hundreds of tenants bid for one pool.

This is the harness behind ``ablation-market``, the market property
tests, and the determinism guard.  It runs a seeded, sim-clock-driven
economy over a shared capacity pool:

* a tenant population (budgets, bids, SLA classes) drawn from named
  streams disjoint from the load streams;
* bursty demand — a modulated Poisson arrival process that flips
  between calm and burst episodes, so contention comes in waves;
* an admission policy (:class:`~repro.market.admission.EconomicAdmission`
  spot-priced, or :class:`~repro.market.admission.FCFSAdmission` flat)
  deciding admit / queue / reject per request;
* a waiting queue drained in the policy's order (highest bid first for
  the market, FIFO for the baseline) whenever capacity frees or the
  price moves, with per-request patience;
* outbid preemption (market only): when the spot price climbs above a
  holding's bid, the holding is evicted at that instant — the spot
  contract every cloud provider sells;
* real billing through a :class:`~repro.core.billing.BillingLedger`
  (spot segments split at each repricing) and real SLA settlement
  through :func:`repro.sla.penalties.credit_for_violations`.

Every run satisfies, by construction, the invariants the acceptance
tests pin: per-tenant ``spent + committed <= budget`` at all times
(two-phase commit at the bid-rate worst case), platform ``revenue ==
gross - credits``, and conservation ``admitted + rejected + queued ==
requested``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.core.billing import BillingLedger
from repro.market.admission import (
    ADMITTED,
    QUEUED,
    EconomicAdmission,
    FCFSAdmission,
)
from repro.market.fairness import FairnessAccountant
from repro.market.pricing import PricingParams, SpotPricer
from repro.market.tenant import Tenant, TenantRegistry
from repro.sim.kernel import Event, Simulator
from repro.sim.rng import RandomStreams
from repro.sla.contract import ServiceClass, SLAContract
from repro.sla.penalties import credit_for_violations

__all__ = ["ScenarioParams", "MarketReport", "run_market_scenario"]

#: Named streams for the market scenario (disjoint from workload streams).
TENANT_STREAM = "market-tenants"
ARRIVAL_STREAM = "market-arrivals"
DEMAND_STREAM = "market-demand"
BURST_STREAM = "market-bursts"

_CLASS_PRESETS = {
    ServiceClass.GOLD: SLAContract.gold,
    ServiceClass.SILVER: SLAContract.silver,
    ServiceClass.BRONZE: SLAContract.bronze,
}

#: (class, probability weight, (bid low, bid high), (budget low, budget high))
_TENANT_MIX: Tuple[tuple, ...] = (
    (ServiceClass.GOLD, 0.2, (1.5, 4.0), (0.6, 2.0)),
    (ServiceClass.SILVER, 0.3, (0.8, 2.0), (0.3, 1.2)),
    (ServiceClass.BRONZE, 0.5, (0.3, 1.0), (0.1, 0.6)),
)


@dataclass(frozen=True)
class ScenarioParams:
    """Knobs of one market run (defaults give sustained contention)."""

    n_tenants: int = 200
    capacity_units: int = 240
    duration_s: float = 600.0
    mean_hold_s: float = 60.0
    max_units: int = 4
    #: Offered load as a multiple of capacity (>1 forces contention).
    load_factor: float = 1.5
    burst_factor: float = 3.0
    mean_calm_s: float = 60.0
    mean_burst_s: float = 20.0
    patience_s: float = 30.0
    pricing: PricingParams = PricingParams()
    flat_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.n_tenants < 1:
            raise ValueError(f"need at least one tenant: {self.n_tenants}")
        if self.capacity_units < 1:
            raise ValueError(f"need capacity: {self.capacity_units}")
        if self.duration_s <= 0 or self.mean_hold_s <= 0:
            raise ValueError("duration and hold time must be positive")
        if not 1 <= self.max_units:
            raise ValueError(f"max_units must be >= 1: {self.max_units}")
        if self.load_factor <= 0 or self.burst_factor < 1:
            raise ValueError("load_factor must be > 0 and burst_factor >= 1")

    @property
    def arrival_rate_rps(self) -> float:
        """Calm-state arrival rate hitting ``load_factor`` offered load."""
        mean_units = (1 + self.max_units) / 2.0
        return (
            self.load_factor * self.capacity_units
            / (mean_units * self.mean_hold_s)
        )


@dataclass
class _Holding:
    """One admitted request occupying units of the pool."""

    name: str
    tenant: str
    units: int
    bid: float
    started_at: float
    hold_s: float
    committed: float
    settled: bool = False


@dataclass
class MarketReport:
    """Everything observable about one market scenario run."""

    policy: str
    seed: int
    params: ScenarioParams
    tenants: TenantRegistry = field(default_factory=TenantRegistry)
    accountant: FairnessAccountant = field(default_factory=FairnessAccountant)
    ledger: BillingLedger = field(default_factory=BillingLedger)
    #: (time, utilization, rate) per pricing/sampling tick.
    price_history: List[Tuple[float, float, float]] = field(default_factory=list)
    requested: int = 0
    admitted: int = 0
    rejected: int = 0
    expired: int = 0     # subset of rejected: queue patience ran out
    preempted: int = 0   # subset of admitted: evicted when outbid
    queued_peak: int = 0
    queued_end: int = 0
    finished_at: float = 0.0

    # -- economics -------------------------------------------------------
    def invoice(self, tenant: str) -> float:
        return self.ledger.invoice(tenant, self.finished_at)

    def gross_revenue(self) -> float:
        return sum(
            self.ledger.gross(t.name, self.finished_at) for t in self.tenants
        )

    def total_credits(self) -> float:
        return sum(t.credits for t in self.tenants)

    def revenue(self) -> float:
        """Platform take: per-tenant invoices (gross net of credits)."""
        return sum(self.invoice(t.name) for t in self.tenants)

    def rejection_rate(self) -> float:
        return self.rejected / self.requested if self.requested else 0.0

    # -- invariants ------------------------------------------------------
    def conservation_holds(self) -> bool:
        return self.requested == self.admitted + self.rejected + self.queued_end

    def over_budget_tenants(self) -> List[str]:
        return [
            t.name for t in self.tenants
            if self.invoice(t.name) > t.budget + 1e-9
        ]

    def digest(self) -> dict:
        """Exact-float digest for the determinism guard."""
        return {
            "policy": self.policy,
            "seed": self.seed,
            "counts": (
                self.requested, self.admitted, self.rejected,
                self.expired, self.preempted, self.queued_end,
            ),
            "revenue": self.revenue(),
            "gross": self.gross_revenue(),
            "credits": self.total_credits(),
            "jain": self.accountant.jain_goodput(),
            "skew": self.accountant.spend_allocation_skew(),
            "starved": tuple(self.accountant.starved()),
            "price_history": tuple(self.price_history),
            "invoices": tuple(
                (t.name, self.invoice(t.name), t.spent, t.budget)
                for t in self.tenants
            ),
        }


class _MarketRun:
    """Mutable state of one in-flight scenario."""

    def __init__(self, seed: int, params: ScenarioParams, policy: str):
        if policy not in ("market", "fcfs"):
            raise ValueError(f"unknown policy {policy!r}")
        self.params = params
        self.policy_name = policy
        self.sim = Simulator()
        self.streams = RandomStreams(seed)
        self.report = MarketReport(policy=policy, seed=seed, params=params)
        self.tenants = self.report.tenants
        self.accountant = self.report.accountant
        self.ledger = self.report.ledger
        self.used_units = 0
        self.queue: List[tuple] = []  # (key, entry) kept sorted on drain
        self.holdings: List[_Holding] = []
        self._request_index = 0
        if policy == "market":
            self.admission = EconomicAdmission()
            self.pricer: Optional[SpotPricer] = SpotPricer(
                params.pricing, streams=self.streams,
                utilization_fn=self.utilization,
            )
            self.pricer.add_listener(self._on_reprice)
            self.pricer.attach_ledger(self.ledger)
            self.ledger.set_rate(params.pricing.base_rate, 0.0)
            # SLA breach accounting reads the observation grid mid-run,
            # so the report shares the pricer's history list.
            self.report.price_history = self.pricer.history
        else:
            self.admission = FCFSAdmission(flat_rate=params.flat_rate)
            self.pricer = None
            self.ledger.set_rate(params.flat_rate, 0.0)
        self._populate_tenants()

    # -- setup -----------------------------------------------------------
    def _populate_tenants(self) -> None:
        stream = self.streams.stream(TENANT_STREAM)
        weights = [w for _cls, w, _bids, _budgets in _TENANT_MIX]
        total_w = sum(weights)
        for i in range(self.params.n_tenants):
            pick = float(stream.uniform(0.0, total_w))
            acc = 0.0
            chosen = _TENANT_MIX[-1]
            for entry in _TENANT_MIX:
                acc += entry[1]
                if pick <= acc:
                    chosen = entry
                    break
            cls, _w, (bid_lo, bid_hi), (budget_lo, budget_hi) = chosen
            self.tenants.register(
                name=f"tenant-{i:04d}",
                budget=float(stream.uniform(budget_lo, budget_hi)),
                bid_per_m_hour=float(stream.uniform(bid_lo, bid_hi)),
                priority=cls,
            )

    # -- pool ------------------------------------------------------------
    def utilization(self) -> float:
        return self.used_units / self.params.capacity_units

    def _rate(self) -> float:
        return self.pricer.rate if self.pricer is not None else self.params.flat_rate

    def _rate_cap(self, tenant: Tenant) -> float:
        """The most this tenant can be charged per machine-hour."""
        return (
            tenant.bid_per_m_hour if self.policy_name == "market"
            else self.params.flat_rate
        )

    # -- admission path --------------------------------------------------
    def _commit_for(self, tenant: Tenant, units: int, hold_s: float) -> float:
        return self._rate_cap(tenant) * units * hold_s / 3600.0

    def _start_holding(
        self, tenant: Tenant, units: int, hold_s: float, committed: float
    ) -> None:
        now = self.sim.now
        self._request_index += 1
        holding = _Holding(
            name=f"{tenant.name}/r{self._request_index}",
            tenant=tenant.name, units=units, bid=tenant.bid_per_m_hour,
            started_at=now, hold_s=hold_s, committed=committed,
        )
        self.used_units += units
        self.holdings.append(holding)
        self.ledger.service_started(
            service=holding.name, asp=tenant.name, now=now, m_units=units,
        )
        self.report.admitted += 1
        tenant.admitted += 1
        self.accountant.record_admission(tenant.name, units * hold_s / 3600.0)
        self.sim.process(self._completion(holding), name=f"hold:{holding.name}")

    def _completion(self, holding: _Holding) -> Generator[Event, Any, None]:
        yield self.sim.timeout(holding.hold_s)
        if not holding.settled:
            self._settle_holding(holding, preempted=False)
            self._drain_queue()

    def _violations_during(self, start: float, end: float) -> int:
        """Breach count: sampling ticks inside [start, end) that saw the
        pool at or above the admission policy's breach utilization."""
        threshold = getattr(self.admission, "breach_utilization", 0.9)
        return sum(
            1 for (t, u, _rate) in self.report.price_history
            if start <= t < end and u >= threshold
        )

    def _settle_holding(self, holding: _Holding, preempted: bool) -> None:
        now = self.sim.now
        holding.settled = True
        self.used_units -= holding.units
        self.holdings.remove(holding)
        self.ledger.service_stopped(service=holding.name, now=now)
        tenant = self.tenants.get(holding.tenant)
        gross = self.ledger.service_gross(holding.name, now)
        contract = _CLASS_PRESETS[tenant.priority]()
        n_violations = self._violations_during(holding.started_at, now)
        credit = credit_for_violations(contract.penalties, n_violations, gross)
        if credit > 0:
            self.ledger.add_credit(
                service=holding.name, asp=tenant.name, now=now, amount=credit,
                reason=f"SLA: {n_violations} contended window(s)",
            )
            self.tenants.credit(tenant.name, credit)
        net = gross - credit
        self.tenants.settle(tenant.name, holding.committed, net)
        self.accountant.record_spend(tenant.name, net)
        self.accountant.record_served(
            tenant.name, holding.units * (now - holding.started_at) / 3600.0
        )
        if preempted:
            self.report.preempted += 1
            tenant.preempted += 1
            self.accountant.record_preemption(tenant.name)

    def _reject(self, tenant: Tenant, reason_expired: bool = False) -> None:
        self.report.rejected += 1
        tenant.rejected += 1
        self.accountant.record_rejection(tenant.name)
        if reason_expired:
            self.report.expired += 1

    def _on_arrival(self, tenant: Tenant, units: int, hold_s: float) -> None:
        now = self.sim.now
        self.report.requested += 1
        self.accountant.record_request(tenant.name, units * hold_s / 3600.0)
        # A non-empty queue bars direct admission: newcomers join the
        # drain ordering (bid-priority or FIFO) instead of leapfrogging.
        fits = (
            self.used_units + units <= self.params.capacity_units
            and not self.queue
        )
        decision = self.admission.decide(
            bid_per_m_hour=tenant.bid_per_m_hour,
            remaining_budget=tenant.remaining_budget,
            n_units=units,
            hold_s=hold_s,
            spot_rate=self._rate(),
            utilization=self.utilization(),
            sla=_CLASS_PRESETS[tenant.priority](),
            capacity_available=fits,
        )
        if decision.outcome == ADMITTED:
            committed = self._commit_for(tenant, units, hold_s)
            self.tenants.commit(tenant.name, committed)
            self._start_holding(tenant, units, hold_s, committed)
        elif decision.outcome == QUEUED:
            key = self.admission.queue_key(
                tenant.bid_per_m_hour, now, self.report.requested
            )
            entry = (key, tenant.name, units, hold_s, now + self.params.patience_s)
            self.queue.append(entry)
            tenant.queued += 1
            self.report.queued_peak = max(self.report.queued_peak, len(self.queue))
            self.sim.process(
                self._patience(entry), name=f"patience:{tenant.name}"
            )
        else:
            self._reject(tenant)

    def _patience(self, entry: tuple) -> Generator[Event, Any, None]:
        deadline = entry[4]
        yield self.sim.timeout(deadline - self.sim.now)
        if entry in self.queue:
            self.queue.remove(entry)
            self._reject(self.tenants.get(entry[1]), reason_expired=True)

    def _drain_queue(self) -> None:
        """Admit every waiting request that now fits, in policy order."""
        if not self.queue:
            return
        for entry in sorted(self.queue):
            _key, name, units, hold_s, _deadline = entry
            tenant = self.tenants.get(name)
            if self.used_units + units > self.params.capacity_units:
                continue
            if tenant.bid_per_m_hour < self._rate() and self.policy_name == "market":
                continue  # wait for the price to fall (or patience to expire)
            committed = self._commit_for(tenant, units, hold_s)
            if committed > tenant.remaining_budget + 1e-9:
                continue  # budget may free as other holdings settle
            self.queue.remove(entry)
            self.tenants.commit(name, committed)
            self._start_holding(tenant, units, hold_s, committed)

    # -- repricing + preemption ------------------------------------------
    def _on_reprice(self, now: float, rate: float) -> None:
        # Outbid preemption: the spot contract — holdings whose bid the
        # new price exceeds are evicted at this instant.  The ledger was
        # already split at `now`, so no time ever bills above a bid.
        for holding in [h for h in self.holdings if h.bid < rate]:
            self._settle_holding(holding, preempted=True)
        self._drain_queue()

    def _sampler(self) -> Generator[Event, Any, None]:
        """FCFS twin of the pricer cadence: samples utilization so SLA
        breach accounting sees the same observation grid."""
        interval = self.params.pricing.interval_s
        deadline = self.sim.now + self.params.duration_s
        while self.sim.now + interval <= deadline:
            yield self.sim.timeout(interval)
            self.report.price_history.append(
                (self.sim.now, self.utilization(), self.params.flat_rate)
            )

    # -- demand ----------------------------------------------------------
    def _demand(self) -> Generator[Event, Any, None]:
        p = self.params
        arrivals = self.streams.stream(ARRIVAL_STREAM)
        demand = self.streams.stream(DEMAND_STREAM)
        bursts = self.streams.stream(BURST_STREAM)
        deadline = self.sim.now + p.duration_s
        bursting = False
        next_flip = self.sim.now + float(bursts.exponential(p.mean_calm_s))
        names = self.tenants.names
        while True:
            rate = p.arrival_rate_rps * (p.burst_factor if bursting else 1.0)
            gap = float(arrivals.exponential(1.0 / rate))
            if self.sim.now + gap > deadline:
                break
            yield self.sim.timeout(gap)
            while self.sim.now >= next_flip:
                bursting = not bursting
                mean = p.mean_burst_s if bursting else p.mean_calm_s
                next_flip += float(bursts.exponential(mean))
            tenant = self.tenants.get(names[int(demand.integers(0, len(names)))])
            units = int(demand.integers(1, p.max_units + 1))
            hold_s = max(1.0, float(demand.exponential(p.mean_hold_s)))
            self._on_arrival(tenant, units, hold_s)

    # -- drive -----------------------------------------------------------
    def run(self) -> MarketReport:
        if self.pricer is not None:
            self.sim.process(
                self.pricer.run(self.sim, self.params.duration_s),
                name="spot-pricer",
            )
        else:
            self.sim.process(self._sampler(), name="util-sampler")
        self.sim.process(self._demand(), name="market-demand")
        self.sim.run()
        # Close out holdings that outlive the demand horizon.
        for holding in list(self.holdings):
            self._settle_holding(holding, preempted=False)
        self.report.queued_end = len(self.queue)
        self.report.finished_at = self.sim.now
        return self.report


def run_market_scenario(
    seed: int = 0,
    policy: str = "market",
    params: Optional[ScenarioParams] = None,
) -> MarketReport:
    """Run one seeded market-vs-pool contention scenario to completion."""
    return _MarketRun(seed, params or ScenarioParams(), policy).run()


def fast_params(duration_s: float = 200.0, n_tenants: int = 100) -> ScenarioParams:
    """A smaller contention scenario for smoke tests and --fast runs."""
    return ScenarioParams(
        n_tenants=n_tenants,
        capacity_units=120,
        duration_s=duration_s,
    )
