"""Bid-aware admission: expected revenue minus expected penalty.

Capacity-plus-SLA admission (the pre-market behaviour) answers "does it
fit?".  Economic admission answers "is hosting this request worth more
than it risks?": each service-creation request is scored

    score = expected revenue - expected SLA penalty exposure
          = spot_rate * machine_hours
            - E[violations] * credit_per_violation   (capped)

where the penalty expectation reuses the cap semantics of
:func:`repro.sla.penalties.credit_for_violations` — the same function
that later prices *real* violations, so the admission-time estimate and
the settlement-time charge share one model.  Expected violations scale
with how far platform utilization sits above the breach threshold: a
saturated platform admits marginal bids only if the revenue clears the
penalty exposure it creates.

Outcomes are ``admitted`` / ``rejected`` / ``queued``; every policy
keeps decision counters so the conservation property (admitted +
rejected + queued == decided) is checkable at any instant.

:class:`FCFSAdmission` is the ablation baseline: first come, first
served by capacity alone (budget-checked, bids ignored).

:class:`MarketAdmissionHook` adapts a policy + tenant registry + spot
pricer to the :class:`~repro.core.agent.SODAAgent` admission hook, so
the real control plane rejects priced-out or over-budget requests
before the SODA Master ever sees them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.errors import AdmissionError
from repro.sla.contract import SLAContract
from repro.sla.penalties import credit_for_violations

if TYPE_CHECKING:  # avoid a market -> core import cycle at runtime
    from repro.core.master import SODAMaster
    from repro.core.requirements import ResourceRequirement
    from repro.market.pricing import SpotPricer
    from repro.market.tenant import TenantRegistry

__all__ = [
    "AdmissionDecision",
    "EconomicAdmission",
    "FCFSAdmission",
    "MarketAdmissionHook",
]

ADMITTED = "admitted"
REJECTED = "rejected"
QUEUED = "queued"

#: Utilization at which SLA breach exposure starts accruing.
BREACH_UTILIZATION = 0.9


@dataclass(frozen=True)
class AdmissionDecision:
    """One admission verdict, with the economics behind it."""

    outcome: str
    expected_revenue: float = 0.0
    expected_penalty: float = 0.0
    reason: str = ""

    @property
    def score(self) -> float:
        return self.expected_revenue - self.expected_penalty


class _CountingPolicy:
    """Decision counters shared by every admission policy."""

    def __init__(self) -> None:
        self.admitted = 0
        self.rejected = 0
        self.queued = 0

    @property
    def decided(self) -> int:
        return self.admitted + self.rejected + self.queued

    def _count(self, decision: AdmissionDecision) -> AdmissionDecision:
        if decision.outcome == ADMITTED:
            self.admitted += 1
        elif decision.outcome == REJECTED:
            self.rejected += 1
        else:
            self.queued += 1
        return decision


class EconomicAdmission(_CountingPolicy):
    """Scores requests by expected revenue minus penalty exposure."""

    def __init__(
        self,
        min_score: float = 0.0,
        breach_utilization: float = BREACH_UTILIZATION,
        horizon_s: float = 3600.0,
    ):
        super().__init__()
        if not 0 < breach_utilization <= 1:
            raise ValueError(
                f"breach utilization must be in (0, 1], got {breach_utilization}"
            )
        if horizon_s <= 0:
            raise ValueError(f"horizon must be positive: {horizon_s}")
        self.min_score = min_score
        self.breach_utilization = breach_utilization
        self.horizon_s = horizon_s

    # -- the economics ---------------------------------------------------
    def expected_penalty(
        self,
        sla: Optional[SLAContract],
        utilization: float,
        revenue: float,
        hold_s: float,
    ) -> float:
        """Expected SLA credit exposure for hosting this request now.

        Breach probability per contract window rises linearly from 0 at
        ``breach_utilization`` to 1 at full saturation; the resulting
        expected violation count is priced — and capped — by the very
        function that settles real violations.
        """
        if sla is None:
            return 0.0
        threshold = self.breach_utilization
        p_breach = max(0.0, (utilization - threshold) / (1.0 - threshold)) \
            if threshold < 1 else 0.0
        windows = max(1.0, hold_s / sla.window_s)
        return credit_for_violations(sla.penalties, p_breach * windows, revenue)

    def decide(
        self,
        bid_per_m_hour: float,
        remaining_budget: float,
        n_units: int,
        hold_s: float,
        spot_rate: float,
        utilization: float,
        sla: Optional[SLAContract] = None,
        capacity_available: bool = True,
    ) -> AdmissionDecision:
        m_hours = n_units * hold_s / 3600.0
        if bid_per_m_hour < spot_rate:
            return self._count(AdmissionDecision(
                REJECTED, reason=(
                    f"priced out: bid {bid_per_m_hour:.4f} < spot {spot_rate:.4f}"
                ),
            ))
        worst_case = bid_per_m_hour * m_hours
        if worst_case > remaining_budget + 1e-9:
            return self._count(AdmissionDecision(
                REJECTED, reason=(
                    f"over budget: worst-case cost {worst_case:.4f} > "
                    f"remaining {remaining_budget:.4f}"
                ),
            ))
        revenue = spot_rate * m_hours
        penalty = self.expected_penalty(sla, utilization, revenue, hold_s)
        if revenue - penalty < self.min_score:
            return self._count(AdmissionDecision(
                REJECTED, revenue, penalty,
                reason=f"unprofitable: score {revenue - penalty:.4f}",
            ))
        if not capacity_available:
            return self._count(AdmissionDecision(
                QUEUED, revenue, penalty, reason="no capacity; queued",
            ))
        return self._count(AdmissionDecision(ADMITTED, revenue, penalty))

    @staticmethod
    def queue_key(bid_per_m_hour: float, arrival_s: float, index: int) -> tuple:
        """Drain order: highest bid first, FIFO within a bid."""
        return (-bid_per_m_hour, arrival_s, index)


class FCFSAdmission(_CountingPolicy):
    """The baseline: capacity-only, first come first served."""

    def __init__(self, flat_rate: float = 1.0):
        super().__init__()
        if flat_rate < 0:
            raise ValueError(f"rate cannot be negative: {flat_rate}")
        self.flat_rate = flat_rate

    def decide(
        self,
        bid_per_m_hour: float,
        remaining_budget: float,
        n_units: int,
        hold_s: float,
        spot_rate: float,
        utilization: float,
        sla: Optional[SLAContract] = None,
        capacity_available: bool = True,
    ) -> AdmissionDecision:
        m_hours = n_units * hold_s / 3600.0
        revenue = self.flat_rate * m_hours
        worst_case = self.flat_rate * m_hours
        if worst_case > remaining_budget + 1e-9:
            return self._count(AdmissionDecision(
                REJECTED, reason=(
                    f"over budget: cost {worst_case:.4f} > "
                    f"remaining {remaining_budget:.4f}"
                ),
            ))
        if not capacity_available:
            return self._count(AdmissionDecision(
                QUEUED, revenue, reason="no capacity; queued",
            ))
        return self._count(AdmissionDecision(ADMITTED, revenue))

    @staticmethod
    def queue_key(bid_per_m_hour: float, arrival_s: float, index: int) -> tuple:
        """Drain order: strict FIFO."""
        return (arrival_s, index)


class MarketAdmissionHook:
    """Plugs market economics into the SODA Agent's admission hook.

    Installed as ``SODAAgent(admission=hook)``, it vets every
    ``SODA_service_creation`` call *before* the Master runs capacity
    admission: the calling ASP must be a registered tenant whose bid
    clears the current spot rate and whose remaining budget (budget
    minus the ledger's live invoice) covers the worst case over the
    policy horizon.  Queued is meaningless for a synchronous API call,
    so a queue verdict surfaces as a rejection too.
    """

    def __init__(
        self,
        tenants: "TenantRegistry",
        pricer: "SpotPricer",
        policy: Optional[EconomicAdmission] = None,
    ):
        self.tenants = tenants
        self.pricer = pricer
        self.policy = policy or EconomicAdmission()
        self.decisions: list = []

    def review(
        self,
        asp: str,
        requirement: "ResourceRequirement",
        sla: Optional[SLAContract],
        master: "SODAMaster",
        now: float,
        ledger=None,
    ) -> AdmissionDecision:
        if asp not in self.tenants:
            raise AdmissionError(f"ASP {asp!r} is not a registered tenant")
        tenant = self.tenants.get(asp)
        spent = ledger.invoice(asp, now) if ledger is not None else tenant.spent
        decision = self.policy.decide(
            bid_per_m_hour=tenant.bid_per_m_hour,
            remaining_budget=tenant.budget - spent,
            n_units=requirement.n,
            hold_s=self.policy.horizon_s,
            spot_rate=self.pricer.rate,
            utilization=master.utilization(),
            sla=sla,
        )
        self.decisions.append((now, asp, decision))
        if decision.outcome != ADMITTED:
            tenant.rejected += 1
            raise AdmissionError(
                f"market admission refused {asp!r}: {decision.reason}"
            )
        tenant.admitted += 1
        return decision
