"""Price-aware federation placement (extension of paper §3.5).

A federated HUP (:class:`repro.core.federation.FederatedHUP`) tries
member HUPs in the order given by its selection strategy.  When each
member runs a :class:`~repro.market.pricing.SpotPricer`, routing
tenants to the member currently charging the lowest spot rate both
saves the tenant money and load-balances the federation: cheap members
are the under-utilized ones, and sending them work pushes their price
back up toward the federation average.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.market.pricing import SpotPricer

if TYPE_CHECKING:
    from repro.core.agent import SODAAgent
    from repro.core.requirements import ResourceRequirement

__all__ = ["cheapest_spot_price"]


def cheapest_spot_price(pricers: Dict[str, SpotPricer]):
    """A selection strategy ordering members by ascending spot rate.

    ``pricers`` maps member HUP names to their pricers.  Members without
    a pricer are tried last (in registration order), so a partially
    priced federation still reaches every member.  Ties break on
    registration order, keeping the strategy deterministic.
    """

    def strategy(
        requirement: "ResourceRequirement", members: Dict[str, "SODAAgent"]
    ) -> List[str]:
        order = list(members)
        priced = [name for name in order if name in pricers]
        unpriced = [name for name in order if name not in pricers]
        priced.sort(key=lambda name: (pricers[name].rate, order.index(name)))
        return priced + unpriced

    return strategy
