"""Spot pricing: utilization-driven repricing of HUP capacity.

The platform rate is not a constant: every ``interval_s`` of simulated
time the :class:`SpotPricer` reads platform utilization and moves the
rate by a multiplicative update,

    rate' = clamp(rate * (1 + sensitivity * (u - target)) * jitter,
                  floor, ceiling)

so scarce capacity (``u`` above target) gets more expensive and idle
capacity cheaper.  The jitter is a seeded lognormal factor drawn from a
named stream (median 1.0, ``sigma=0`` disables it), which makes the
whole price path a pure function of ``(seed, utilization history)`` —
the property the determinism guard and the hypothesis layer pin.

The pricer is sim-clock driven: :meth:`SpotPricer.run` is a simulated
process that reprices on its cadence, pushes the new rate into any
attached :class:`~repro.core.billing.BillingLedger` (whose
:meth:`~repro.core.billing.BillingLedger.set_rate` splits open segments
at the instant, never back-billing), notifies listeners (the scenario
harness uses this for outbid preemption), and exposes the price path as
a metrics gauge plus a queryable history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.core.billing import BillingLedger
from repro.obs.metrics import registry_of
from repro.sim.kernel import Event, Simulator
from repro.sim.rng import RandomStreams

__all__ = ["PricingParams", "reprice", "SpotPricer"]

#: Named random stream for price jitter (disjoint from load streams).
PRICE_STREAM = "market-spot-price"


@dataclass(frozen=True)
class PricingParams:
    """Everything that shapes the price path, in one value object."""

    base_rate: float = 1.0
    floor: float = 0.25
    ceiling: float = 8.0
    target_utilization: float = 0.7
    sensitivity: float = 0.5
    interval_s: float = 10.0
    jitter_sigma: float = 0.0

    def __post_init__(self) -> None:
        if not 0 < self.floor <= self.base_rate <= self.ceiling:
            raise ValueError(
                f"need 0 < floor <= base_rate <= ceiling, got "
                f"{self.floor}/{self.base_rate}/{self.ceiling}"
            )
        if not 0 < self.target_utilization < 1:
            raise ValueError(
                f"target utilization must be in (0, 1), got "
                f"{self.target_utilization}"
            )
        if self.sensitivity < 0:
            raise ValueError(f"sensitivity cannot be negative: {self.sensitivity}")
        if self.interval_s <= 0:
            raise ValueError(f"interval must be positive: {self.interval_s}")
        if self.jitter_sigma < 0:
            raise ValueError(f"jitter sigma cannot be negative: {self.jitter_sigma}")


def reprice(rate: float, utilization: float, params: PricingParams, jitter: float = 1.0) -> float:
    """One price update — a pure function, so tests can pin it exactly."""
    if not 0 <= utilization <= 1:
        raise ValueError(f"utilization must be in [0, 1], got {utilization}")
    if jitter <= 0:
        raise ValueError(f"jitter factor must be positive, got {jitter}")
    moved = rate * (1.0 + params.sensitivity * (utilization - params.target_utilization))
    return min(params.ceiling, max(params.floor, moved * jitter))


class SpotPricer:
    """Reprices HUP capacity from utilization on a seeded cadence."""

    def __init__(
        self,
        params: PricingParams = PricingParams(),
        streams: Optional[RandomStreams] = None,
        utilization_fn: Optional[Callable[[], float]] = None,
    ):
        self.params = params
        self.streams = streams
        self.utilization_fn = utilization_fn
        self.rate = params.base_rate
        #: (time, utilization, rate) per repricing tick, in order.
        self.history: List[Tuple[float, float, float]] = []
        self._ledgers: List[BillingLedger] = []
        self._listeners: List[Callable[[float, float], None]] = []

    # -- wiring ----------------------------------------------------------
    def attach_ledger(self, ledger: BillingLedger) -> None:
        """Push every future rate change into ``ledger`` (split-at-instant)."""
        self._ledgers.append(ledger)

    def add_listener(self, listener: Callable[[float, float], None]) -> None:
        """Subscribe ``listener(now, new_rate)`` to every repricing."""
        self._listeners.append(listener)

    # -- the cadence -----------------------------------------------------
    def _jitter(self) -> float:
        if self.streams is None or self.params.jitter_sigma == 0:
            return 1.0
        return self.streams.lognormal_factor(PRICE_STREAM, self.params.jitter_sigma)

    def tick(self, now: float, utilization: float) -> float:
        """Apply one repricing step at simulated instant ``now``."""
        self.rate = reprice(self.rate, utilization, self.params, self._jitter())
        self.history.append((now, utilization, self.rate))
        for ledger in self._ledgers:
            ledger.set_rate(self.rate, now)
        for listener in self._listeners:
            listener(now, self.rate)
        return self.rate

    def run(
        self, sim: Simulator, duration_s: float = float("inf")
    ) -> Generator[Event, Any, None]:
        """Simulated process: reprice every ``interval_s`` until the
        horizon.  Requires a ``utilization_fn``."""
        if self.utilization_fn is None:
            raise ValueError("SpotPricer.run needs a utilization_fn")
        deadline = sim.now + duration_s
        while sim.now + self.params.interval_s <= deadline:
            yield sim.timeout(self.params.interval_s)
            self.tick(sim.now, self.utilization_fn())
            self._obs_gauge(sim)

    # -- observability (observes, never perturbs) ------------------------
    def _obs_gauge(self, sim: Simulator) -> None:
        registry = registry_of(sim)
        if registry is not None:
            registry.gauge(
                "soda_market_spot_rate",
                "Current spot price of one machine-instance-hour.",
            ).set(self.rate)

    # -- queries ---------------------------------------------------------
    def rate_at(self, t: float) -> float:
        """The rate in force at simulated instant ``t``."""
        rate = self.params.base_rate
        for changed_at, _u, new_rate in self.history:
            if changed_at > t:
                break
            rate = new_rate
        return rate

    @property
    def n_ticks(self) -> int:
        return len(self.history)
