"""Ablation — rootfs tailoring on vs off (quantifying §4.3's step).

The SODA Daemon's customization retains only the required system
services.  The ablation boots the web content service from (a) its
tailored rootfs and (b) a pristine full-server rootfs with the same
application, on both hosts — the boot-time and memory savings are the
value of the tailoring step.
"""

from __future__ import annotations

from repro.guestos.rootfs import RootFilesystem
from repro.guestos.services import default_registry
from repro.guestos.uml import UserModeLinux
from repro.host.machine import make_seattle, make_tacoma
from repro.image.profiles import make_s1_web_content
from repro.metrics.report import ExperimentResult
from repro.sim.kernel import Simulator

EXPERIMENT_ID = "ablation-tailoring"
TITLE = "Rootfs tailoring on/off: boot time and footprint"

GUEST_MEM_MB = 256.0


def _boot(rootfs: RootFilesystem, host_factory) -> tuple:
    sim = Simulator()
    host = host_factory(sim)
    vm = UserModeLinux(sim, "probe", host, rootfs, guest_mem_mb=GUEST_MEM_MB)
    plan = sim.run_until_process(sim.process(vm.boot()))
    return sim.now, plan.ramdisk, rootfs.size_mb, len(rootfs.services)


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    registry = default_registry()
    tailored = make_s1_web_content().tailored_rootfs()
    # The same web app shipped on a pristine full-server rootfs.
    untailored = RootFilesystem.build(
        "rh-7.2-pristine+webapp",
        base_mb=30.0,
        services=registry.names,
        data_mb=1.0,
        registry=registry,
    )

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "rootfs", "host", "services", "size (MB)",
            "boot time (s)", "mount",
        ],
    )
    times = {}
    for label, rootfs in (("tailored", tailored), ("untailored", untailored)):
        for host_factory in (make_seattle, make_tacoma):
            boot_s, ramdisk, size_mb, n_services = _boot(rootfs, host_factory)
            host_name = host_factory.__name__.replace("make_", "")
            result.add_row(
                label, host_name, n_services, f"{size_mb:.1f}",
                f"{boot_s:.1f}", "ram" if ramdisk else "disk",
            )
            times[(label, host_name)] = boot_s

    for host_name in ("seattle", "tacoma"):
        speedup = times[("untailored", host_name)] / times[("tailored", host_name)]
        result.compare(
            f"tailoring boot speed-up on {host_name} (x)", None, speedup,
            note="the value of §4.3's customization step",
        )
    result.compare(
        "tailored rootfs keeps only the closure", 7.0,
        float(len(tailored.services)), tolerance_rel=0.0,
    )
    result.notes = (
        "Tailoring cuts both the service start costs (the dominant boot "
        "term) and the rootfs size (RAM-disk eligibility on small hosts)."
    )
    return result
