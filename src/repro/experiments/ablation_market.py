"""Ablation — market-based admission vs FCFS under contention (extension).

The SODA Agent owns billing (paper §2.2) but the paper prices capacity
at a flat rate and admits first-come-first-served.  This ablation runs
the same seeded bursty demand (hundreds of tenants, modulated Poisson
arrivals, load factor > 1) through two admission economies:

* ``market`` — utilization-driven spot pricing, bid-aware admission
  scored as expected revenue minus expected SLA penalty exposure,
  outbid preemption, bid-priority queue drain;
* ``fcfs`` — flat rate, capacity-only admission, FIFO queue drain.

The table reports revenue, SLA credits, Jain's fairness index on
goodput, spend/allocation skew, starvation, and rejection rates.  The
comparisons encode the invariants that must hold in *every* run:
request conservation is exact, no tenant is billed past its budget, and
revenue equals gross accrual minus credits.  Economically, the market
keeps SLA exposure in check by refusing work it expects to pay
penalties on, so its credit bill never exceeds the FCFS one.
"""

from __future__ import annotations

from repro.market.scenario import fast_params, run_market_scenario
from repro.metrics.report import ExperimentResult

EXPERIMENT_ID = "ablation-market"
TITLE = "Market vs FCFS admission under bursty contention"


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    params = fast_params() if fast else None
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "policy", "tenants", "requested", "admitted", "rejected",
            "expired", "preempted", "revenue", "credits", "jain",
            "skew", "starved", "reject rate",
        ],
    )
    reports = {}
    for policy in ("market", "fcfs"):
        report = run_market_scenario(seed=seed, policy=policy, params=params)
        reports[policy] = report
        result.add_row(
            policy,
            len(list(report.tenants)),
            report.requested,
            report.admitted,
            report.rejected,
            report.expired,
            report.preempted,
            f"{report.revenue():.2f}",
            f"{report.total_credits():.2f}",
            f"{report.accountant.jain_goodput():.3f}",
            f"{report.accountant.spend_allocation_skew():.3f}",
            len(report.accountant.starved()),
            f"{report.rejection_rate():.3f}",
        )

    market = reports["market"]
    fcfs = reports["fcfs"]

    # Conservation, exact in both economies: every request is admitted,
    # rejected, or still queued when the run ends.
    for policy, report in reports.items():
        accounted = report.admitted + report.rejected + report.queued_end
        result.compare(
            f"{policy} request conservation (accounted/requested)", 1.0,
            accounted / report.requested if report.requested else 0.0,
            tolerance_rel=0.0,
        )
    # Budget enforcement: two-phase commit/settle means no tenant's
    # invoice ever exceeds its budget (paper=0 over-budget tenants).
    for policy, report in reports.items():
        result.compare(
            f"{policy} tenants billed past budget", 0.0,
            float(len(report.over_budget_tenants())), tolerance_rel=0.0,
        )
    # Invoice identity: platform revenue is gross accrual net of SLA
    # credits actually deducted on invoices (credits cap at gross per
    # tenant, so deducted <= earned).
    for policy, report in reports.items():
        deducted = sum(
            min(report.ledger.gross(t.name, report.finished_at),
                report.ledger.credit_total(asp=t.name))
            for t in report.tenants
        )
        result.compare(
            f"{policy} revenue == gross - credits deducted",
            report.gross_revenue() - deducted, report.revenue(),
            tolerance_rel=1e-9,
        )
    # The market's whole point: by pricing out work it expects to breach
    # on, its SLA credit bill never exceeds the FCFS one.
    result.compare(
        "market SLA credits <= fcfs SLA credits",
        fcfs.total_credits(), market.total_credits(),
        tolerance_rel=1.0,
        note="market refuses penalty-exposed work; fcfs admits blindly",
    )

    result.series["spot rate vs time (s), market"] = (
        [t for t, _u, _r in market.price_history],
        [r for _t, _u, r in market.price_history],
    )
    result.series["utilization vs time (s), market"] = (
        [t for t, _u, _r in market.price_history],
        [u for _t, u, _r in market.price_history],
    )
    result.notes = (
        f"Seed {seed}: market revenue {market.revenue():.2f} with "
        f"{market.total_credits():.2f} in SLA credits vs fcfs revenue "
        f"{fcfs.revenue():.2f} with {fcfs.total_credits():.2f} in credits. "
        f"Spot rate ranged "
        f"{min(r for _t, _u, r in market.price_history):.2f}-"
        f"{max(r for _t, _u, r in market.price_history):.2f} over "
        f"{len(market.price_history)} repricing ticks; "
        f"{market.preempted} holdings were evicted when outbid. "
        "Which economy grosses more is seed-dependent (the market "
        "forgoes low-bid work), but the market's credit exposure and "
        "budget discipline hold for every seed."
    )
    return result
