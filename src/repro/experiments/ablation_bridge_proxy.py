"""Ablation — bridging vs proxying (paper footnote 3).

"if the scarcity of IP addresses becomes a problem, we will adopt the
technique of *proxying* instead of bridging."  The ablation creates the
same web service under both networking modes and measures the
per-request response-time cost of relaying every request through a
user-space proxy on the host (the reproduction band's 'switch proxy
less performant').
"""

from __future__ import annotations

from repro.core import MachineConfig, ResourceRequirement, build_paper_testbed
from repro.core.auth import Credentials
from repro.image.profiles import paper_profiles
from repro.metrics.report import ExperimentResult
from repro.sim.rng import RandomStreams
from repro.workload.clients import ClientPool
from repro.workload.siege import Siege

EXPERIMENT_ID = "ablation-bridge-proxy"
TITLE = "Bridging vs proxying: per-request cost of the proxy alternative"

DATASET_MB = 1.0


def _measure(proxy_mode: bool, seed: int, n_requests: int) -> tuple:
    testbed = build_paper_testbed(seed=seed, proxy_mode=proxy_mode)
    repo = testbed.add_repository()
    for image in paper_profiles().values():
        repo.publish(image)
    testbed.agent.register_asp("acme", "supersecret")
    creds = Credentials("acme", "supersecret")
    requirement = ResourceRequirement(n=2, machine=MachineConfig())
    testbed.run(
        testbed.agent.service_creation(creds, "web", repo, "web-content", requirement)
    )
    record = testbed.master.get_service("web")
    clients = ClientPool(testbed.lan, n=2)
    siege = Siege(
        testbed.sim, record.switch, clients,
        RandomStreams(seed).spawn(f"bp-{proxy_mode}"), dataset_mb=DATASET_MB,
    )
    report = testbed.run(
        siege.run_closed_loop(n_workers=1, requests_per_worker=n_requests)
    )
    # Proxy-side counters (0 for bridging).
    relayed = sum(
        getattr(d.networking, "requests_relayed", 0) for d in testbed.daemons.values()
    )
    return report.mean_response_s(), relayed


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    n_requests = 10 if fast else 40
    bridge_rt, bridge_relays = _measure(proxy_mode=False, seed=seed, n_requests=n_requests)
    proxy_rt, proxy_relays = _measure(proxy_mode=True, seed=seed, n_requests=n_requests)

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["networking mode", "mean response time (s)", "host relays"],
    )
    result.add_row("bridging (one IP per node)", f"{bridge_rt:.4f}", bridge_relays)
    result.add_row("proxying (shared host IP)", f"{proxy_rt:.4f}", proxy_relays)

    result.compare(
        "proxy slower than bridge", 1.0, float(proxy_rt > bridge_rt), tolerance_rel=0.0
    )
    result.compare(
        "proxy overhead per request (s)", None, proxy_rt - bridge_rt,
        note="user-space relay CPU on the host",
    )
    result.compare("bridge does no relaying", 0.0, float(bridge_relays), tolerance_rel=0.0)
    result.notes = (
        "Proxying conserves routable IPs but relays every request through "
        "a host process; bridging forwards in the kernel fast path."
    )
    return result
