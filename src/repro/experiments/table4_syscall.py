"""Table 4 — measuring slow-down at system call level (clock cycles).

Regenerates the six-syscall table from the interposition cost model and
compares every cell against the paper's measurement.
"""

from __future__ import annotations

from repro.guestos.syscall import (
    PAPER_TABLE4_HOST_CYCLES,
    PAPER_TABLE4_UML_CYCLES,
    SyscallCostModel,
)
from repro.metrics.report import ExperimentResult

EXPERIMENT_ID = "table4"
TITLE = "Measuring slow-down at system call level (clock cycles)"


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    model = SyscallCostModel()
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["System call", "in UML", "in host OS", "slow-down"],
    )
    for name, row in model.table4().items():
        result.add_row(
            name, row["in_uml"], row["in_host_os"],
            f"{row['in_uml'] / row['in_host_os']:.1f}x",
        )
        result.compare(
            f"{name} UML cycles", PAPER_TABLE4_UML_CYCLES[name],
            model.uml_cycles(name), tolerance_rel=0.05,
        )
        result.compare(
            f"{name} host cycles", PAPER_TABLE4_HOST_CYCLES[name],
            model.host_cycles(name), tolerance_rel=0.01,
        )
    slowdowns = [model.syscall_slowdown(n) for n in model.known_syscalls]
    result.compare(
        "mean syscall slow-down (x)", 23.0, sum(slowdowns) / len(slowdowns),
        tolerance_rel=0.2,
        note="paper's cells imply ~20-27x per syscall",
    )
    result.notes = (
        "UML cost = host cost + tracing-thread interception "
        f"(~{model.interception_cycles:.0f} cycles); gettimeofday pays "
        f"an extra ~{model.gettimeofday_extra:.0f} cycles."
    )
    return result
