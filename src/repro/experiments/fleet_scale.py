"""Fleet scale — hybrid-fidelity background load, fluid vs discrete (extension).

The paper's testbed is four machines; a hosting *utility* (§1) runs
thousands.  This experiment drives the same multi-service background
workload over a 1000-host fleet at both fidelities of the hybrid
substrate: ``discrete`` simulates every request as its own event chain,
``fluid`` aggregates arrivals into batches (one kernel event per batch,
closed-form host sojourn, amortized transfers).

The table reports, per fidelity: requests served, kernel events,
events per request, mean latency, SLA violation rate, CPU-seconds and
billed charges.  The comparisons pin the substrate's contract — exact
per-request CPU/byte/billing parity, request volume and mean latency
agreement within sampling tolerance, and the headline >=5x kernel-event
reduction that makes utility-scale runs tractable.
"""

from __future__ import annotations

from repro.core import MachineConfig, ResourceRequirement, build_paper_testbed
from repro.core.auth import Credentials
from repro.image.profiles import make_s1_web_content
from repro.metrics.report import ExperimentResult
from repro.sim.fluid import FluidBackgroundLoad, FluidCluster, FluidServiceSpec
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.clients import ClientPool
from repro.workload.siege import Siege

EXPERIMENT_ID = "fleet-scale"
TITLE = "Fleet-scale background load: fluid vs discrete fidelity"

SPECS = [
    FluidServiceSpec(
        name="web", arrival_rps=2_000.0, mean_batch=100, slo_latency_s=0.05,
        rate_per_cpu_hour=2.0,
    ),
    FluidServiceSpec(
        name="api", arrival_rps=1_000.0, mean_batch=50, service_s=0.002,
        response_mb=0.005, slo_latency_s=0.02, rate_per_cpu_hour=3.0,
    ),
    FluidServiceSpec(
        name="batch", arrival_rps=500.0, mean_batch=200, service_s=0.008,
    ),
]


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    n_hosts, n_clusters = (200, 8) if fast else (1000, 20)
    duration_s = 4.0 if fast else 12.0

    def fleet(fidelity: str):
        sim = Simulator()
        streams = RandomStreams(seed)
        per = n_hosts // n_clusters
        clusters = [
            FluidCluster(sim, f"c{i}", n_hosts=per) for i in range(n_clusters)
        ]
        load = FluidBackgroundLoad(sim, streams, clusters, SPECS, fidelity=fidelity)
        report = sim.run_until_process(sim.process(load.run(duration_s)))
        return report, sim.events_scheduled, clusters

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "fidelity", "hosts", "requests", "kernel events", "events/req",
            "mean latency (ms)", "SLA viol rate", "cpu (s)", "billed",
        ],
    )
    runs = {}
    for fidelity in ("fluid", "discrete"):
        report, events, clusters = fleet(fidelity)
        runs[fidelity] = (report, events, clusters)
        total = report.total_requests
        violations = sum(a.sla_violations for a in report.services.values())
        cpu = sum(a.cpu_s for a in report.services.values())
        billed = sum(a.billed for a in report.services.values())
        mean_latency = sum(a.latency_sum for a in report.services.values()) / total
        result.add_row(
            fidelity,
            n_hosts,
            total,
            events,
            f"{events / total:.3f}",
            f"{mean_latency * 1000:.2f}",
            f"{violations / total:.4f}",
            f"{cpu:.1f}",
            f"{billed:.4f}",
        )

    fluid_report, fluid_events, fluid_clusters = runs["fluid"]
    discrete_report, discrete_events, _ = runs["discrete"]

    # Request volume: same offered load, independent arrival draws.
    # Fluid samples at batch granularity, so its volume noise is the
    # per-request noise amplified by the mean batch size — hence the
    # looser tolerance than the per-request parity checks below.
    result.compare(
        "request volume (fluid/discrete)", 1.0,
        fluid_report.total_requests / discrete_report.total_requests,
        tolerance_rel=0.2,
    )
    # Per-request resource accounting is identical by construction.
    for spec in SPECS:
        f = fluid_report.services[spec.name]
        d = discrete_report.services[spec.name]
        result.compare(
            f"{spec.name} cpu-s per request", d.cpu_s / d.requests,
            f.cpu_s / f.requests, tolerance_rel=1e-9,
        )
        result.compare(
            f"{spec.name} bytes per request (in+out, MB)",
            (d.mb_in + d.mb_out) / d.requests,
            (f.mb_in + f.mb_out) / f.requests, tolerance_rel=1e-9,
        )
        result.compare(
            f"{spec.name} billing identity (rate*cpu/3600)",
            spec.rate_per_cpu_hour * f.cpu_s / 3600.0, f.billed,
            tolerance_rel=1e-12,
        )
        result.compare(
            f"{spec.name} mean latency (fluid vs discrete)",
            discrete_report.mean_latency_s(spec.name),
            fluid_report.mean_latency_s(spec.name),
            tolerance_rel=0.35,
            note="analytic estimator vs measured sojourn",
        )
    # Cluster books close: booked busy-seconds equal billed CPU-seconds.
    result.compare(
        "cluster busy-s == service cpu-s (fluid)",
        sum(a.cpu_s for a in fluid_report.services.values()),
        sum(float(c.busy_s.sum()) for c in fluid_clusters),
        tolerance_rel=1e-9,
    )
    # The headline: batch-level simulation cuts kernel events >=5x
    # (measured is 1.0 when the floor holds, the shortfall ratio when not).
    fluid_epr = fluid_events / fluid_report.total_requests
    discrete_epr = discrete_events / discrete_report.total_requests
    reduction = discrete_epr / fluid_epr
    result.compare(
        "kernel-event reduction meets the 5x floor", 1.0,
        1.0 if reduction >= 5.0 else reduction / 5.0,
        tolerance_rel=0.0,
        note=f"measured {reduction:.1f}x fewer events per request",
    )

    # Focus service under the fleet: a traced siege served at full
    # per-request fidelity while the 1000-host fluid background runs on
    # the same kernel.  The hybrid contract says the background cannot
    # move a single focus float.
    def focus(with_background: bool):
        testbed = build_paper_testbed(seed=seed)
        repo = testbed.add_repository()
        repo.publish(make_s1_web_content())
        testbed.agent.register_asp("acme", "supersecret")
        testbed.run(
            testbed.agent.service_creation(
                Credentials("acme", "supersecret"), "web", repo, "web-content",
                ResourceRequirement(n=2, machine=MachineConfig()),
            )
        )
        record = testbed.master.get_service("web")
        if with_background:
            fleet = testbed.add_fluid_fleet(
                n_hosts=n_hosts, n_clusters=n_clusters, specs=SPECS
            )
            fleet.start(duration_s=3.0)
        clients = ClientPool(testbed.lan, n=2)
        siege = Siege(
            testbed.sim, record.switch, clients,
            streams=testbed.streams, dataset_mb=0.5,
        )
        report = testbed.run(siege.run_open_loop(rate_rps=20.0, duration_s=3.0))
        monitor = record.switch.response_times
        return report.completed, list(monitor.values)

    alone_completed, alone_latencies = focus(with_background=False)
    bg_completed, bg_latencies = focus(with_background=True)
    for label, completed, latencies in (
        ("focus alone", alone_completed, alone_latencies),
        ("focus + fluid bg", bg_completed, bg_latencies),
    ):
        result.add_row(
            label, n_hosts if label.endswith("bg") else 4, completed, "-", "-",
            f"{sum(latencies) / len(latencies) * 1000:.2f}", "-", "-", "-",
        )
    result.compare(
        "focus requests completed, alone vs under fleet",
        float(alone_completed), float(bg_completed), tolerance_rel=0.0,
    )
    result.compare(
        "focus response times bit-identical under fleet", 1.0,
        1.0 if bg_latencies == alone_latencies else 0.0, tolerance_rel=0.0,
        note="exact float equality over every per-request sample",
    )

    result.series["events per request by fidelity"] = (
        [0.0, 1.0], [fluid_epr, discrete_epr],
    )
    result.notes = (
        f"Seed {seed}, {n_hosts} hosts in {n_clusters} clusters, "
        f"{duration_s:g}s of load at "
        f"{sum(s.arrival_rps for s in SPECS):,.0f} rps: fluid served "
        f"{fluid_report.total_requests:,} requests in {fluid_events:,} "
        f"kernel events ({fluid_epr:.3f}/req) vs discrete "
        f"{discrete_report.total_requests:,} in {discrete_events:,} "
        f"({discrete_epr:.1f}/req) — a "
        f"{discrete_epr / fluid_epr:.0f}x event reduction at matched "
        "per-request CPU, bytes, and billing.  The focus rows run a "
        "traced siege at full per-request fidelity on the same kernel: "
        f"all {alone_completed} of its requests complete with "
        "bit-identical response times whether the fleet runs or not."
    )
    return result
