"""Figure 6 — measuring slow-down at application level.

"Under the same service load, we run the web content service in three
different scenarios: (1) in one virtual service node with service
switch; (2) *directly* on the host OS with service switch; and (3)
*directly* on the host OS without service switch.  In all three
scenarios, there is *no* other service load in the system.  [...] We
again observe a slow-down incurred by the virtual service node.
However, the slow-down factor is much lower than the one indicated in
Table 4; and it remains approximately the same under different dataset
sizes" (§5).

Each scenario hosts the same web content service on *seattle* with the
full machine available (no other load), differing only in (a) whether
requests pass through the service switch and (b) whether the service
runs inside a UML (syscall interposition) or natively on the host OS.
A single closed-loop client measures per-request response time.
"""

from __future__ import annotations

from typing import Any, Generator, List

from repro.core.config import ServiceConfigFile
from repro.core.node import VirtualServiceNode
from repro.core.switch import ServiceSwitch
from repro.guestos.uml import UserModeLinux
from repro.host.bridge import Endpoint
from repro.host.machine import make_seattle
from repro.image.profiles import make_s1_web_content
from repro.metrics.report import ExperimentResult
from repro.net.lan import LAN
from repro.sim.kernel import Event, Simulator
from repro.sim.monitor import Monitor
from repro.workload.apps import web_request

EXPERIMENT_ID = "fig6"
TITLE = "Measuring slow-down at application level (request response time)"

DATASET_SIZES_MB: List[float] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
REQUESTS_PER_POINT = 30


def _build_node(native: bool):
    """One web node on an otherwise idle seattle, full machine speed."""
    sim = Simulator()
    lan = LAN(sim, bandwidth_mbps=100.0)
    host = make_seattle(sim, lan)
    image = make_s1_web_content()
    vm = UserModeLinux(
        sim, name="web-fig6", host=host, rootfs=image.tailored_rootfs(),
        guest_mem_mb=256.0,
    )
    sim.run_until_process(sim.process(vm.boot()))
    vm.ip = "128.10.9.125"
    node = VirtualServiceNode(
        sim=sim, name="web-fig6", vm=vm, lan=lan,
        endpoint=Endpoint("128.10.9.125", 8080), units=1,
        worker_mhz=host.cpu_mhz,  # no other load: the whole machine
        native=native,
    )
    client = lan.nic("client", 100.0)
    return sim, lan, node, client


def _measure(native: bool, with_switch: bool, dataset_mb: float, n_requests: int) -> float:
    sim, lan, node, client = _build_node(native)
    monitor = Monitor("fig6")
    if with_switch:
        config = ServiceConfigFile("web")
        config.add_backend(node.endpoint.ip, node.endpoint.port, 1)
        switch = ServiceSwitch(sim, "web", lan, [node], config)

    def client_proc(sim: Simulator) -> Generator[Event, Any, None]:
        for _ in range(n_requests):
            request = web_request(client, dataset_mb)
            started = sim.now
            if with_switch:
                yield sim.process(switch.serve(request))
            else:
                inbound = lan.transfer(client, node.host.nic, 0.0005)
                yield inbound.done
                yield sim.process(node.serve(request))
            monitor.record(sim.now, sim.now - started)

    sim.run_until_process(sim.process(client_proc(sim)))
    return monitor.mean()


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    sizes = DATASET_SIZES_MB[:3] if fast else DATASET_SIZES_MB
    n_requests = 8 if fast else REQUESTS_PER_POINT
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "dataset (MB)", "VM + switch (s)", "host + switch (s)",
            "host direct (s)", "VM/host slow-down", "switch overhead (s)",
        ],
    )
    xs, vm_rts, host_switch_rts, host_direct_rts, slowdowns = [], [], [], [], []
    for dataset_mb in sizes:
        vm_rt = _measure(native=False, with_switch=True, dataset_mb=dataset_mb, n_requests=n_requests)
        host_rt = _measure(native=True, with_switch=True, dataset_mb=dataset_mb, n_requests=n_requests)
        direct_rt = _measure(native=True, with_switch=False, dataset_mb=dataset_mb, n_requests=n_requests)
        slowdown = vm_rt / host_rt
        result.add_row(
            dataset_mb, f"{vm_rt:.4f}", f"{host_rt:.4f}", f"{direct_rt:.4f}",
            f"{slowdown:.2f}x", f"{host_rt - direct_rt:.5f}",
        )
        xs.append(dataset_mb)
        vm_rts.append(vm_rt)
        host_switch_rts.append(host_rt)
        host_direct_rts.append(direct_rt)
        slowdowns.append(slowdown)
        result.compare(
            f"ordering holds @ {dataset_mb} MB (VM >= host+switch >= direct)",
            None, float(vm_rt >= host_rt >= direct_rt),
        )
    result.series["VM + switch response time (s)"] = (xs, vm_rts)
    result.series["host + switch response time (s)"] = (xs, host_switch_rts)
    result.series["host direct response time (s)"] = (xs, host_direct_rts)

    mean_slowdown = sum(slowdowns) / len(slowdowns)
    result.compare(
        "application-level slow-down (x)", None, mean_slowdown,
        note="paper: 'much lower' than Table 4's ~23x",
    )
    result.compare(
        "slow-down << syscall-level ratio (23x)", 1.0,
        float(mean_slowdown < 5.0), tolerance_rel=0.0,
    )
    result.compare(
        "slow-down spread across sizes", 0.0,
        max(slowdowns) - min(slowdowns), tolerance_rel=0.2,
        note="paper: 'remains approximately the same' across sizes",
    )
    result.notes = (
        "The end-to-end slow-down combines the CPU-side application "
        "slow-down (~1.4x, syscall interposition) with the guest's "
        "network-transmission slow-down (virtual NIC at ~0.65 of wire "
        "rate) — both far below Table 4's per-syscall ~23x, and flat "
        "across dataset sizes as the paper observed."
    )
    return result
