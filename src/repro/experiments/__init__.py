"""Experiment reproductions: one module per paper table/figure.

| Module | Paper artefact |
| --- | --- |
| :mod:`repro.experiments.table1_requirements` | Table 1 — machine configuration M |
| :mod:`repro.experiments.table2_bootstrap` | Table 2 — service bootstrapping time |
| :mod:`repro.experiments.table3_config` | Table 3 — service configuration file |
| :mod:`repro.experiments.table4_syscall` | Table 4 — syscall-level slow-down |
| :mod:`repro.experiments.fig3_isolation` | Figure 3 — attack isolation |
| :mod:`repro.experiments.fig4_loadbalance` | Figure 4 — load balancing |
| :mod:`repro.experiments.fig5_cpushares` | Figure 5 — CPU share isolation |
| :mod:`repro.experiments.fig6_slowdown` | Figure 6 — application-level slow-down |
| :mod:`repro.experiments.download_time` | §4.3 text — download time linear in size |

Plus seven ablations beyond the paper: ``ablation_bridge_proxy``
(footnote 3), ``ablation_ddos`` (the §3.5 caveat + shaper mitigation),
``ablation_inflation`` (footnote 2's 1.5x), ``ablation_policies``,
``ablation_placement``, ``ablation_scheduler_shares`` (unequal CPU
entitlements), and ``ablation_tailoring``.

Every module exposes ``run(seed=0, fast=False) -> ExperimentResult``;
``fast`` trades statistical smoothness for speed (used in CI).  The
:mod:`repro.experiments.runner` CLI runs any or all of them.
"""

from repro.experiments.runner import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "run_experiment"]
