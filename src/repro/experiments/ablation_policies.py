"""Ablation — request switching policies on heterogeneous nodes.

The paper's default is weighted round-robin; §3.4 lets the ASP replace
it.  The ablation compares WRR, plain round-robin, least-connections
and weighted-random on the Figure 2 layout (2M + 1M nodes), where a
weight-blind policy overloads the small node.
"""

from __future__ import annotations

from repro.core.policies import (
    LeastConnectionsPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    WeightedRoundRobinPolicy,
)
from repro.experiments._testbed import deploy_paper_services
from repro.metrics.report import ExperimentResult
from repro.sim.rng import RandomStreams
from repro.workload.siege import Siege

EXPERIMENT_ID = "ablation-policies"
TITLE = "Switching policies on heterogeneous (2M + 1M) nodes"

DATASET_MB = 1.0
RATE_RPS = 7.0
DURATION_S = 60.0


def _measure(policy_factory, seed: int, duration: float):
    deployment = deploy_paper_services(seed=seed)
    testbed = deployment.testbed
    deployment.web.switch.set_policy(policy_factory())
    siege = Siege(
        testbed.sim, deployment.web.switch, deployment.clients,
        RandomStreams(seed).spawn(f"pol-{policy_factory.__name__}"),
        dataset_mb=DATASET_MB,
    )
    report = testbed.run(siege.run_open_loop(rate_rps=RATE_RPS, duration_s=duration))
    tacoma_node = next(n for n in deployment.web.nodes if n.host.name == "tacoma")
    return report, tacoma_node.name


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    duration = 20.0 if fast else DURATION_S
    policies = [
        ("weighted-round-robin (default)", WeightedRoundRobinPolicy),
        ("round-robin (weight-blind)", RoundRobinPolicy),
        ("least-connections", LeastConnectionsPolicy),
        ("weighted-random", lambda: RandomPolicy(RandomStreams(seed))),
    ]
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "policy", "mean RT (s)", "p95 RT (s)",
            "tacoma share of requests",
        ],
    )
    means = {}
    tacoma_shares = {}
    for label, factory in policies:
        factory.__name__ = getattr(factory, "__name__", label)
        report, tacoma_name = _measure(factory, seed, duration)
        mean_rt = report.mean_response_s()
        p95 = report.overall.percentile(95)
        share = report.requests_served_by(tacoma_name) / max(report.completed, 1)
        result.add_row(label, f"{mean_rt:.3f}", f"{p95:.3f}", f"{share:.2f}")
        means[label] = mean_rt
        tacoma_shares[label] = share

    wrr = "weighted-round-robin (default)"
    rr = "round-robin (weight-blind)"
    result.compare(
        "WRR sends tacoma ~1/3 of requests", 1 / 3, tacoma_shares[wrr],
        tolerance_rel=0.15,
    )
    result.compare(
        "blind RR sends tacoma ~1/2 of requests", 0.5, tacoma_shares[rr],
        tolerance_rel=0.15,
    )
    result.compare(
        "weight-blind RR mean RT penalty (x vs WRR)", None, means[rr] / means[wrr],
        note="> 1: overloading the 1M node hurts",
    )
    result.notes = (
        "Weight-blind round-robin pushes half the load onto the 1M "
        "tacoma node, roughly doubling its utilisation relative to WRR; "
        "least-connections adapts without configured weights."
    )
    return result
