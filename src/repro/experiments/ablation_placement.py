"""Ablation — the Master's placement strategy.

The paper's two-host prototype effectively uses first-fit.  The
ablation replays an arrival sequence of service creation requests of
mixed sizes against first-fit, best-fit and worst-fit and reports how
many services each admits and how evenly utilisation spreads.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.allocation import PlacementStrategy, plan_allocation
from repro.core.errors import AdmissionError
from repro.core.requirements import MachineConfig, ResourceRequirement
from repro.host.machine import make_seattle, make_tacoma
from repro.metrics.report import ExperimentResult
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams

EXPERIMENT_ID = "ablation-placement"
TITLE = "Placement strategies: admissions and load spread"

N_REQUESTS = 12


def _request_sizes(seed: int, n: int) -> List[int]:
    streams = RandomStreams(seed)
    return [1 + streams.choice("placement-sizes", 2) for _ in range(n)]  # 1 or 2 units


def _replay(strategy: PlacementStrategy, sizes: List[int]) -> Tuple[int, float]:
    """(services admitted, CPU utilisation spread across hosts)."""
    sim = Simulator()
    hosts = [make_seattle(sim), make_tacoma(sim)]
    admitted = 0
    for n_units in sizes:
        requirement = ResourceRequirement(n=n_units, machine=MachineConfig())
        availability = [(h.name, h.reservations.available) for h in hosts]
        try:
            plan = plan_allocation(requirement, availability, strategy=strategy)
        except AdmissionError:
            continue
        for assignment in plan.assignments:
            host = next(h for h in hosts if h.name == assignment.host_name)
            host.reservations.reserve(plan.node_vector(assignment))
        admitted += 1
    utils = [h.reservations.utilisation()["cpu"] for h in hosts]
    return admitted, float(np.max(utils) - np.min(utils))


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    sizes = _request_sizes(seed, 6 if fast else N_REQUESTS)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["strategy", "services admitted", "CPU utilisation spread"],
    )
    outcomes = {}
    for strategy in PlacementStrategy:
        admitted, spread = _replay(strategy, sizes)
        outcomes[strategy] = (admitted, spread)
        result.add_row(strategy.value, admitted, f"{spread:.3f}")

    ff_admitted, ff_spread = outcomes[PlacementStrategy.FIRST_FIT]
    wf_admitted, wf_spread = outcomes[PlacementStrategy.WORST_FIT]
    result.compare(
        "worst-fit spreads load more evenly than first-fit", 1.0,
        float(wf_spread <= ff_spread), tolerance_rel=0.0,
    )
    result.compare(
        "admissions, first-fit", None, float(ff_admitted),
        note=f"request sizes replayed: {sizes}",
    )
    result.compare("admissions, worst-fit", None, float(wf_admitted))
    result.notes = (
        "First/best-fit pack seattle before touching tacoma (fewer "
        "fragmented nodes); worst-fit balances utilisation, which helps "
        "co-located services' burst headroom."
    )
    return result
