"""Shared experiment scaffolding: the §5 two-service deployment.

Several experiments start from the same Figure 2 state: the honeypot
(one node on *seattle*) plus the web content service with ``<3, M>``
resolved to a 2M node on *seattle* and a 1M node on *tacoma*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import MachineConfig, ResourceRequirement, build_paper_testbed
from repro.core.api import HUPTestbed
from repro.core.auth import Credentials
from repro.core.service import ServiceRecord
from repro.image.profiles import paper_profiles
from repro.workload.clients import ClientPool

ASP_NAME = "acme"
ASP_SECRET = "supersecret"


@dataclass
class PaperDeployment:
    """The running §5 testbed state."""

    testbed: HUPTestbed
    web: ServiceRecord
    honeypot: ServiceRecord
    clients: ClientPool
    credentials: Credentials


def deploy_paper_services(
    seed: int = 0,
    n_clients: int = 4,
    with_honeypot: bool = True,
    web_n: int = 3,
) -> PaperDeployment:
    """Build the testbed and create the §5 services (honeypot first, so
    the web service lands 2M on seattle + 1M on tacoma as in Figure 2)."""
    testbed = build_paper_testbed(seed=seed)
    repo = testbed.add_repository()
    for image in paper_profiles().values():
        repo.publish(image)
    testbed.agent.register_asp(ASP_NAME, ASP_SECRET)
    credentials = Credentials(ASP_NAME, ASP_SECRET)

    def create(name: str, image: str, n: int) -> ServiceRecord:
        requirement = ResourceRequirement(n=n, machine=MachineConfig())
        testbed.run(
            testbed.agent.service_creation(credentials, name, repo, image, requirement),
            name=f"create:{name}",
        )
        return testbed.master.get_service(name)

    honeypot = create("honeypot", "honeypot", 1) if with_honeypot else None
    web = create("web", "web-content", web_n)
    clients = ClientPool(testbed.lan, n=n_clients)
    testbed.repo = repo
    return PaperDeployment(
        testbed=testbed, web=web, honeypot=honeypot, clients=clients,
        credentials=credentials,
    )
