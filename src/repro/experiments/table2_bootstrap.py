"""Table 2 — service bootstrapping time for four application services.

Boots each of S_I..S_IV (after the Daemon's rootfs tailoring) as an
actual UML instance on fresh *seattle* and *tacoma* hosts, measuring
simulated wall-clock from boot start to the guest's services being up.
Matches the paper's protocol: image download time is NOT included
(Table 2 isolates bootstrapping; downloading is §4.3's separate
linear-in-size measurement, reproduced in ``download_time``).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.guestos.uml import UserModeLinux
from repro.host.machine import make_seattle, make_tacoma
from repro.image.profiles import paper_profiles
from repro.metrics.report import ExperimentResult
from repro.sim.kernel import Simulator

EXPERIMENT_ID = "table2"
TITLE = "Service bootstrapping time for four different application services"

GUEST_MEM_MB = 256.0

#: Paper Table 2 (seconds): {profile: (seattle, tacoma)}.
PAPER_TABLE2: Dict[str, Tuple[float, float]] = {
    "S_I": (3.0, 4.0),
    "S_II": (2.0, 3.0),
    "S_III": (4.0, 16.0),
    "S_IV": (22.0, 42.0),
}


def _boot_once(host_factory, image) -> Tuple[float, bool]:
    """Boot the tailored image on a fresh host; (seconds, used RAM disk)."""
    sim = Simulator()
    host = host_factory(sim)
    vm = UserModeLinux(
        sim,
        name=f"{image.name}-probe",
        host=host,
        rootfs=image.tailored_rootfs(),
        guest_mem_mb=GUEST_MEM_MB,
    )
    process = sim.process(vm.boot())
    plan = sim.run_until_process(process)
    return sim.now, plan.ramdisk


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "App. service", "Linux configuration", "Image size",
            "Time (seattle)", "Time (tacoma)", "Mount (seattle/tacoma)",
        ],
    )
    profiles = paper_profiles()
    for key, image in profiles.items():
        seattle_s, seattle_ram = _boot_once(make_seattle, image)
        tacoma_s, tacoma_ram = _boot_once(make_tacoma, image)
        result.add_row(
            key,
            image.rootfs.name,
            f"{image.size_mb:.1f}MB",
            f"{seattle_s:.1f} sec.",
            f"{tacoma_s:.1f} sec.",
            f"{'ram' if seattle_ram else 'disk'}/{'ram' if tacoma_ram else 'disk'}",
        )
        paper_seattle, paper_tacoma = PAPER_TABLE2[key]
        result.compare(f"{key} seattle (s)", paper_seattle, seattle_s, tolerance_rel=0.25)
        result.compare(f"{key} tacoma (s)", paper_tacoma, tacoma_s, tolerance_rel=0.25)

    # Shape checks the paper calls out explicitly.
    s3_seattle, _ = _boot_once(make_seattle, profiles["S_III"])
    s4_seattle, _ = _boot_once(make_seattle, profiles["S_IV"])
    result.compare(
        "S_III boots faster than S_IV despite a larger image (ratio)",
        None,
        s4_seattle / s3_seattle,
        note="paper: boot time depends on services, not image size",
    )
    result.notes = (
        "Tailored S_III (400 MB) RAM-disk mounts on seattle (2 GB) but "
        "disk-mounts on tacoma (768 MB) — the source of the 4x gap."
    )
    return result
