"""Federation scale — parallel sub-kernels vs the single-process run.

SODA §3.5 federates autonomous local HUPs behind brokers; the
utility/grid literature treats member clusters as autonomous domains
coupled only by WAN links.  That coupling is precisely the lookahead a
conservative parallel simulation needs: no cluster can observe a remote
event faster than the WAN latency, so shards may simulate a whole epoch
``min(latency_s)`` long without coordination.

This experiment runs the same K-cluster federated topology — fluid
background fleets, geo-routed dispatch batches, and broker placement
calls with WAN image pushes — under worker counts {1, 2, 4} and pins
the determinism contract of :mod:`repro.sim.parallel`: the per-cluster
digests (exact floats: request counts, latency sums, host busy-seconds,
directories, broker placements) are **bit-identical** whatever the
process layout.  Conservation checks close the message plane's books:
every remotely-issued request is served exactly once and replied
exactly once, and every sent message is received.

Each worker count also runs with federation-wide observability
(:class:`~repro.obs.federation.FederationObservability`) enabled, which
pins the observe-never-perturb contract at federation scale: the
obs-on digest equals the obs-off digest at every worker count, and the
reassembled cross-shard traces are byte-identical whatever the process
layout.  When an ambient :class:`~repro.obs.Observability` hub is
active (``--trace-out`` / ``--metrics-out``), the merged spans, the
federated metrics, and the epoch critical-path profile are deposited on
it so the runner writes them next to the usual artefacts.
"""

from __future__ import annotations

import hashlib
import json

import repro.obs as obs_hub
from repro.metrics.report import ExperimentResult
from repro.obs.federation import FederationObservability, trace_completeness
from repro.sim.fluid import FluidServiceSpec
from repro.sim.parallel import (
    ClusterSpec,
    FederationTopology,
    GeoServiceSpec,
    WanEdgeSpec,
    run_federation,
)

EXPERIMENT_ID = "federation-scale"
TITLE = "Parallel federation: sub-kernel workers vs single-process, digest parity"

CLUSTER_NAMES = ("ap-tokyo", "eu-west", "us-east", "us-west")

#: One-way WAN latencies (s) — loosely continental; the minimum (30 ms,
#: us-east<->us-west) sets the epoch length.
WAN_LATENCY_S = {
    ("ap-tokyo", "eu-west"): 0.120,
    ("ap-tokyo", "us-east"): 0.090,
    ("ap-tokyo", "us-west"): 0.060,
    ("eu-west", "us-east"): 0.040,
    ("eu-west", "us-west"): 0.070,
    ("us-east", "us-west"): 0.030,
}


def build_topology(
    n_hosts: int = 50,
    geo_rps: float = 120.0,
    n_placements: int = 3,
    background_rps: float = 400.0,
    n_background: int = 1,
    background_mean_batch: int = 50,
) -> FederationTopology:
    """The experiment's 4-cluster federation (also used by the bench)."""
    clusters = tuple(
        ClusterSpec(
            name=name,
            n_hosts=n_hosts,
            background=tuple(
                FluidServiceSpec(
                    name=f"bg-{name}-{j}", arrival_rps=background_rps,
                    mean_batch=background_mean_batch, service_s=0.004,
                )
                for j in range(n_background)
            ),
            geo_rps=geo_rps,
            geo_mean_batch=12,
            n_placements=n_placements,
        )
        for name in CLUSTER_NAMES
    )
    edges = tuple(
        WanEdgeSpec(a=a, b=b, latency_s=latency)
        for (a, b), latency in WAN_LATENCY_S.items()
    )
    geo_services = tuple(
        GeoServiceSpec(name=f"geo-{i}", home=CLUSTER_NAMES[i % len(CLUSTER_NAMES)])
        for i in range(8)
    )
    return FederationTopology(
        clusters=clusters, edges=edges, geo_services=geo_services,
        broker="us-east",
    )


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    duration_s = 2.0 if fast else 6.0
    worker_counts = (1, 2) if fast else (1, 2, 4)
    topology = build_topology(n_hosts=20 if fast else 50)

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "workers", "wall (s)", "epochs", "messages", "msgs/epoch",
            "requests", "stall frac", "digest",
        ],
    )

    runs = {}
    for n_workers in worker_counts:
        run_result = run_federation(
            topology, duration_s=duration_s, seed=seed, n_workers=n_workers
        )
        runs[n_workers] = run_result
        result.add_row(
            n_workers,
            f"{run_result.wall_s:.3f}",
            run_result.epochs,
            run_result.messages,
            f"{run_result.msgs_per_epoch:.1f}",
            run_result.total_requests,
            f"{run_result.barrier_stall_fraction:.3f}",
            run_result.digest_sha[:12],
        )

    reference = runs[1]
    # The determinism contract: bit-identical digests for every layout.
    for n_workers in worker_counts[1:]:
        result.compare(
            f"digest parity, {n_workers} workers vs single-process", 1.0,
            1.0 if runs[n_workers].digest_sha == reference.digest_sha else 0.0,
            tolerance_rel=0.0,
            note="sha256 over exact per-cluster digests",
        )
        result.compare(
            f"epoch count parity, {n_workers} workers",
            float(reference.epochs), float(runs[n_workers].epochs),
            tolerance_rel=0.0,
        )

    # Observability arms: the same runs with tracing + metrics + the
    # critical-path profiler on.  Observe-never-perturb means the
    # digests must not move, and deterministic namespaced span ids mean
    # the reassembled federation-wide traces must be byte-identical
    # across process layouts.
    obs_runs = {}
    for n_workers in worker_counts:
        obs_run = run_federation(
            topology, duration_s=duration_s, seed=seed, n_workers=n_workers,
            obs=FederationObservability(),
        )
        obs_runs[n_workers] = obs_run
        result.compare(
            f"obs-on digest parity, {n_workers} workers", 1.0,
            1.0 if obs_run.digest_sha == runs[n_workers].digest_sha else 0.0,
            tolerance_rel=0.0,
            note="observability must not perturb the simulation",
        )
    obs_reference = obs_runs[worker_counts[0]].observability
    reference_spans = json.dumps(obs_reference.spans, sort_keys=True)
    for n_workers in worker_counts[1:]:
        spans = json.dumps(obs_runs[n_workers].observability.spans, sort_keys=True)
        result.compare(
            f"merged trace byte-identity, {n_workers} workers", 1.0,
            1.0 if spans == reference_spans else 0.0,
            tolerance_rel=0.0,
            note="shard-namespaced span ids make layout unobservable",
        )
    stats = trace_completeness(obs_reference.spans)
    result.compare(
        "spans dropped across all shards", 0.0,
        float(sum(r.observability.spans_dropped for r in obs_runs.values())),
        tolerance_rel=0.0,
    )
    result.compare(
        "orphan parent references in merged traces", 0.0,
        float(stats["orphan_parents"]), tolerance_rel=0.0,
    )
    result.compare(
        "spans left open at end of run", 0.0,
        float(stats["open_spans"]), tolerance_rel=0.0,
    )

    # Deposit the federated artefacts on the ambient hub (if any) so
    # `soda-experiments run federation-scale --trace-out/--metrics-out`
    # writes spans/metrics/fedprofile files the soda-obs CLI can read.
    hub = obs_hub.active()
    if hub is not None:
        fed = obs_runs[worker_counts[-1]].observability
        if hub.tracer is not None:
            for span in fed.spans:
                hub.tracer.adopt(span)
        if hub.registry is not None:
            fed.metrics.merge_into(hub.registry)
        if fed.profiler is not None:
            hub.artifacts["fedprofile"] = fed.profiler.to_payload()

    # Message-plane conservation, from the single-process digests.
    issued_remote = sum(d["geo"][1] for d in reference.digests.values())
    served_remote = sum(d["geo"][2] for d in reference.digests.values())
    replied = sum(d["geo"][3] for d in reference.digests.values())
    sent = sum(d["msgs"][0] for d in reference.digests.values())
    received = sum(d["msgs"][1] for d in reference.digests.values())
    pending = sum(d["pending"] for d in reference.digests.values())
    result.compare(
        "remote dispatches served exactly once",
        float(issued_remote), float(served_remote), tolerance_rel=0.0,
    )
    result.compare(
        "remote dispatches replied exactly once",
        float(issued_remote), float(replied), tolerance_rel=0.0,
    )
    result.compare(
        "messages sent == messages received",
        float(sent), float(received), tolerance_rel=0.0,
    )
    result.compare(
        "no dispatches stranded in pending queues", 0.0, float(pending),
        tolerance_rel=0.0,
    )
    # Broker books: every placement decision reached every cluster —
    # each shard's directory holds exactly the broker's placement map
    # (placement clients may issue fewer calls than their spec maximum
    # when an exponential gap overshoots the deadline; what matters is
    # that each *issued* call converges federation-wide).
    broker_digest = reference.digests[topology.broker]
    placements = broker_digest["placements"]
    for name, digest in reference.digests.items():
        result.compare(
            f"{name} directory tracks every broker placement",
            float(len(placements)), float(len(digest["directory"])),
            tolerance_rel=0.0,
        )

    result.series["wall seconds by worker count"] = (
        [float(n) for n in worker_counts],
        [runs[n].wall_s for n in worker_counts],
    )
    digest_full = hashlib.sha256(
        reference.digest_sha.encode()
    ).hexdigest()[:8]
    result.notes = (
        f"Seed {seed}: {len(topology.clusters)} clusters x "
        f"{topology.clusters[0].n_hosts} hosts, {duration_s:g}s, epoch "
        f"{topology.lookahead_s * 1000:.0f} ms (min WAN latency), "
        f"{reference.epochs} epochs, {reference.messages} cross-cluster "
        f"messages ({reference.msgs_per_epoch:.1f}/epoch).  Digest "
        f"{reference.digest_sha[:12]} (run id {digest_full}) is "
        "bit-identical across worker counts "
        f"{tuple(worker_counts)} — the conservative epoch barrier "
        "(global sort by deliver-time, sender, sequence) makes the "
        "process layout unobservable.  Wall times on this host share "
        "one core; see BENCH for the critical-path projection.  "
        f"Observability on: digests unchanged, {stats['spans']} spans in "
        f"{stats['traces']} federation-wide traces reassembled "
        "byte-identically at every worker count."
    )
    return result
