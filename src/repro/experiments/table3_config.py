"""Table 3 — a sample service configuration file after priming.

Runs the actual Figure 2 creation sequence (honeypot, then the web
content service with ``<3, M>``) and prints the configuration file the
SODA Master wrote into the switch.  The paper's sample:

    | Directive | IP address   | Port number | Capacity |
    | BackEnd   | 128.10.9.125 | 8080        | 2        |
    | BackEnd   | 128.10.9.126 | 8080        | 1        |
"""

from __future__ import annotations

from repro.experiments._testbed import deploy_paper_services
from repro.metrics.report import ExperimentResult

EXPERIMENT_ID = "table3"
TITLE = "Sample service configuration file created by the SODA Master"


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    deployment = deploy_paper_services(seed=seed)
    config = deployment.web.switch.config
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["Directive", "IP address", "Port number", "Capacity"],
    )
    for directive in config.backends:
        result.add_row("BackEnd", directive.ip, directive.port, directive.capacity)

    capacities = sorted((d.capacity for d in config.backends), reverse=True)
    result.compare("number of BackEnd lines", 2, len(config), tolerance_rel=0.0)
    result.compare("largest node capacity (M)", 2, capacities[0], tolerance_rel=0.0)
    result.compare("smallest node capacity (M)", 1, capacities[-1], tolerance_rel=0.0)
    result.compare("total capacity (= n of <n, M>)", 3, config.total_capacity, tolerance_rel=0.0)
    result.notes = "rendered file:\n" + config.render()
    return result
