"""Scenario matrix — scenario x policy x seed replay cells (extension).

Fans every library scenario (:mod:`repro.scenario.library`) across the
three policy arms (FCFS / SLA shedding / spot market) and a seed set,
one independent :func:`~repro.scenario.run.run_scenario` cell each.
Cells are embarrassingly parallel — each builds its own simulator — so
``run(..., parallel=N)`` fans them over a process pool and merges in
job order, making the parallel render byte-identical to the serial one
(the CI smoke job diffs exactly this).

The comparisons pin the scenario layer's contracts:

* conservation — ``served + failed + shed == issued`` in every cell;
* common random numbers — all three policy arms of a (scenario, seed)
  cell issue the *same* requests (one compiled workload realisation);
* compile purity — worker processes reproduce the parent process's
  compiled-trace fingerprint bit-for-bit;
* hybrid fidelity — attaching a fluid background fleet leaves a focus
  cell's exact-float digest untouched.

``python -m repro.experiments.scenario_matrix [--fast] [--seed N]
[--parallel N]`` renders the result standalone for the CI diff.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Tuple

from repro.metrics.report import ExperimentResult
from repro.scenario.compile import compile_scenario
from repro.scenario.library import LIBRARY, get_scenario
from repro.scenario.run import POLICIES, run_scenario

EXPERIMENT_ID = "scenario-matrix"
TITLE = "Scenario library replay: scenario x policy x seed"

#: The fast arm trims to the three most adversarial families.
FAST_SCENARIOS = ("flash-crowd", "heavy-tail", "correlated-bursts")
FAST_DURATION_S = 15.0

#: (scenario, duration override, seed, policy, background hosts)
Job = Tuple[str, Optional[float], int, str, int]


def _jobs(seed: int, fast: bool) -> List[Job]:
    scenarios = FAST_SCENARIOS if fast else tuple(LIBRARY)
    duration = FAST_DURATION_S if fast else None
    seeds = (seed,) if fast else (seed, seed + 1)
    return [
        (name, duration, s, policy, 0)
        for name in scenarios
        for policy in POLICIES
        for s in seeds
    ]


def _cell(job: Job) -> Dict[str, object]:
    """Run one matrix cell; returns a picklable summary (pool transport)."""
    name, duration, seed, policy, background = job
    spec = get_scenario(name, duration)
    report = run_scenario(
        spec, seed=seed, policy=policy, background_hosts=background
    )
    served_s = sum(total for total, _peak in report.response_s.values())
    return {
        "scenario": name,
        "seed": seed,
        "policy": policy,
        "sha": report.compiled_sha,
        "issued": report.issued,
        "served": report.served,
        "failed": sum(s.failed for s in report.stats.values()),
        "shed": sum(s.shed for s in report.stats.values()),
        "priced_out": report.priced_out,
        "conserved": report.conservation_holds(),
        "mean_ms": (served_s / report.served * 1000.0) if report.served else 0.0,
        "digest": report.digest(),
    }


def run(seed: int = 0, fast: bool = False, parallel: int = 1) -> ExperimentResult:
    jobs = _jobs(seed, fast)
    if parallel > 1 and len(jobs) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(parallel, len(jobs))) as pool:
            cells = list(pool.map(_cell, jobs))  # map preserves job order
    else:
        cells = [_cell(job) for job in jobs]

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "scenario", "policy", "seed", "issued", "served", "failed",
            "shed", "priced out", "mean ms", "trace sha",
        ],
    )
    for cell in cells:
        result.add_row(
            cell["scenario"], cell["policy"], cell["seed"], cell["issued"],
            cell["served"], cell["failed"], cell["shed"], cell["priced_out"],
            f"{cell['mean_ms']:.1f}", cell["sha"],
        )

    # Conservation: every request accounted for in every cell.
    conserved = sum(1 for cell in cells if cell["conserved"])
    result.compare(
        "cells where served+failed+shed == issued",
        float(len(cells)), float(conserved), tolerance_rel=0.0,
    )
    # Common random numbers: the three policy arms of a (scenario, seed)
    # cell replay one compiled realisation — same trace sha, same issue
    # count — so policy deltas are policy effects, not workload noise.
    arms: Dict[Tuple[str, int], List[Dict[str, object]]] = {}
    for cell in cells:
        arms.setdefault((cell["scenario"], cell["seed"]), []).append(cell)
    aligned = sum(
        1 for group in arms.values()
        if len({c["sha"] for c in group}) == 1
        and len({c["issued"] for c in group}) == 1
    )
    result.compare(
        "(scenario, seed) groups sharing one workload realisation",
        float(len(arms)), float(aligned), tolerance_rel=0.0,
        note="same compiled sha and issue count across all policy arms",
    )
    # Compile purity across processes: the parent's compilation of each
    # (scenario, seed) must fingerprint exactly as the workers' did.
    duration = FAST_DURATION_S if fast else None
    pure = sum(
        1 for (name, s), group in arms.items()
        if compile_scenario(get_scenario(name, duration), s).digest_sha()
        == group[0]["sha"]
    )
    result.compare(
        "(scenario, seed) compilations pure across processes",
        float(len(arms)), float(pure), tolerance_rel=0.0,
    )
    # Hybrid fidelity: re-run one cell under a fluid background fleet;
    # the focus digest (every outcome instant, response float, price
    # tick) must not move.
    focus_job = jobs[0]
    baseline = _cell(focus_job)
    under_fleet = _cell(focus_job[:4] + (40,))
    result.compare(
        "focus digest bit-identical under 40-host fluid fleet", 1.0,
        1.0 if under_fleet["digest"] == baseline["digest"] else 0.0,
        tolerance_rel=0.0,
        note=f"{focus_job[0]}/{focus_job[3]} seed {focus_job[2]}",
    )

    shapes = len(FAST_SCENARIOS) if fast else len(LIBRARY)
    result.notes = (
        f"Seed {seed}: {len(cells)} cells ({shapes} scenarios x "
        f"{len(POLICIES)} policies x {len(cells) // (shapes * len(POLICIES))} "
        "seeds), each an independent replay of a compiled scenario on the "
        "paper testbed.  Every cell conserves requests; policy arms of a "
        "(scenario, seed) group share one compiled workload realisation "
        "(common random numbers); recompiling in the parent process "
        "reproduces each worker's trace fingerprint; and the first cell's "
        "digest is bit-identical with a 40-host fluid background fleet "
        "attached."
    )
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.scenario_matrix",
        description=TITLE,
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="fan cells across N worker processes (default: serial)",
    )
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    if args.parallel < 1:
        parser.error(f"--parallel must be >= 1, got {args.parallel}")
    result = run(seed=args.seed, fast=args.fast, parallel=args.parallel)
    print(result.render())
    return 0 if result.all_within_tolerance else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
