"""§4.3 (text) — active service image downloading time.

"We have measured the downloading time for service images of different
sizes within the 100Mbps LAN.  As expected, the downloading time grows
linearly with the size of the service image."  The experiment downloads
synthetic images of increasing size from an ASP repository to a HUP
host and fits a line.
"""

from __future__ import annotations

from typing import List

from repro.guestos.rootfs import RootFilesystem
from repro.image.image import ServiceImage
from repro.image.repository import ImageRepository
from repro.metrics.report import ExperimentResult
from repro.metrics.stats import linear_fit
from repro.net.http import HttpModel, TCP_EFFICIENCY
from repro.net.lan import LAN
from repro.sim.kernel import Simulator

EXPERIMENT_ID = "download"
TITLE = "Service image downloading time vs image size (100 Mbps LAN)"

SIZES_MB: List[float] = [10.0, 25.0, 50.0, 100.0, 200.0, 400.0]


def _synthetic_image(size_mb: float) -> ServiceImage:
    rootfs = RootFilesystem.build(
        f"synthetic-{size_mb:g}", base_mb=size_mb, services=[], data_mb=0.0
    )
    return ServiceImage(
        name=f"img-{size_mb:g}", rootfs=rootfs, required_services=(),
        entrypoint="noop",
    )


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    sizes = SIZES_MB[:4] if fast else SIZES_MB
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["image size (MB)", "download time (s)", "goodput (Mbps)"],
    )
    times = []
    for size in sizes:
        sim = Simulator()
        lan = LAN(sim, bandwidth_mbps=100.0)
        http = HttpModel(sim, lan)
        repo = ImageRepository("asp-repo", lan.nic("asp-repo", 100.0))
        repo.publish(_synthetic_image(size))
        hup_nic = lan.nic("hup-host", 100.0)
        proc = sim.process(repo.download(http, hup_nic, f"img-{size:g}"))
        stats = sim.run_until_process(proc)
        times.append(stats.elapsed)
        result.add_row(size, f"{stats.elapsed:.3f}", f"{stats.goodput_mbps:.1f}")

    slope, intercept, r_squared = linear_fit(sizes, times)
    result.series["download time (s) vs image size (MB)"] = (sizes, times)
    result.compare(
        "linearity r^2", 1.0, r_squared, tolerance_rel=0.01,
        note="paper: 'grows linearly with the size of the service image'",
    )
    expected_slope = 8.0 / (100.0 * TCP_EFFICIENCY)  # s per MB at ~94 Mbps goodput
    result.compare("slope (s/MB)", expected_slope, slope, tolerance_rel=0.05)
    result.notes = (
        f"fit: time = {slope:.4f} * size + {intercept:.4f}  (r^2 = {r_squared:.5f})"
    )
    return result
