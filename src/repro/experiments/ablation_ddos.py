"""Ablation — the §3.5 DDoS caveat, demonstrated and mitigated.

"the service isolation achieved by SODA is not absolute.  For example,
if a service is DDoS-attacked, its service switch will be inundated
with requests, affecting other virtual service nodes in the same HUP
host and therefore violating the service isolation" (§3.5).

Three runs of the Figure 2 deployment measure the web content service's
response times while the co-located honeypot is (a) idle, (b) flooded,
and (c) flooded with the §4.2 traffic shaper *enforced* — the
enforcement point the paper was still implementing, which caps the
victim's outbound share and largely restores isolation.
"""

from __future__ import annotations

from repro.core.node import Request
from repro.experiments._testbed import deploy_paper_services
from repro.guestos.syscall import SyscallMix
from repro.metrics.report import ExperimentResult
from repro.sim.rng import RandomStreams
from repro.workload.siege import Siege

EXPERIMENT_ID = "ablation-ddos"
TITLE = "The DDoS caveat: switch inundation vs co-located services"

WEB_RATE_RPS = 6.0
FLOOD_RATE_RPS = 30.0
FLOOD_RESPONSE_MB = 0.5
DURATION_S = 30.0


def _flood(sim, switch, attacker, rate_rps, duration_s, streams):
    """Open-loop request flood against the victim's switch."""
    deadline = sim.now + duration_s
    in_flight = []

    def one(sim):
        request = Request(
            client=attacker, response_mb=FLOOD_RESPONSE_MB,
            mix=SyscallMix(0.5, 20), label="flood",
        )
        try:
            yield sim.process(switch.serve(request))
        except Exception:
            pass

    while sim.now < deadline:
        gap = streams.exponential("flood", 1.0 / rate_rps)
        yield sim.timeout(gap)
        in_flight.append(sim.process(one(sim)))
    for proc in in_flight:
        yield proc


def _measure(seed: int, flooded: bool, shaped: bool, duration: float) -> float:
    deployment = deploy_paper_services(seed=seed)
    testbed = deployment.testbed
    if shaped:
        for daemon in testbed.daemons.values():
            daemon.shaper.enforced = True
    streams = RandomStreams(seed).spawn(f"ddos-{flooded}-{shaped}")
    if flooded:
        attacker = testbed.add_client("ddos-botnet")
        testbed.spawn(
            _flood(
                testbed.sim, deployment.honeypot.switch, attacker,
                FLOOD_RATE_RPS, duration, streams,
            ),
            name="flood",
        )
    siege = Siege(
        testbed.sim, deployment.web.switch, deployment.clients,
        streams.spawn("web"), dataset_mb=0.25,
    )
    report = testbed.run(siege.run_open_loop(rate_rps=WEB_RATE_RPS, duration_s=duration))
    return report.mean_response_s()


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    duration = 10.0 if fast else DURATION_S
    base_unshaped = _measure(seed, flooded=False, shaped=False, duration=duration)
    flood_unshaped = _measure(seed, flooded=True, shaped=False, duration=duration)
    base_shaped = _measure(seed, flooded=False, shaped=True, duration=duration)
    flood_shaped = _measure(seed, flooded=True, shaped=True, duration=duration)

    degradation_unshaped = flood_unshaped / base_unshaped
    degradation_shaped = flood_shaped / base_shaped

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "shaper", "web RT, no flood (s)", "web RT, flooded (s)",
            "flood degradation",
        ],
    )
    result.add_row(
        "off (paper's §5 state)", f"{base_unshaped:.4f}", f"{flood_unshaped:.4f}",
        f"{degradation_unshaped:.2f}x",
    )
    result.add_row(
        "ENFORCED (per-IP shares)", f"{base_shaped:.4f}", f"{flood_shaped:.4f}",
        f"{degradation_shaped:.2f}x",
    )

    result.compare(
        "unshaped flood degradation (x)", None, degradation_unshaped,
        note="the paper's §3.5 caveat: isolation is not absolute",
    )
    result.compare(
        "flood hurts without shaping (> 1.15x)", 1.0,
        float(degradation_unshaped > 1.15), tolerance_rel=0.0,
    )
    result.compare(
        "shaper restores isolation (degradation < unshaped)", 1.0,
        float(degradation_shaped < degradation_unshaped), tolerance_rel=0.0,
    )
    result.compare(
        "shaped flood degradation near 1.0", 1.0, degradation_shaped,
        tolerance_rel=0.15,
    )
    result.notes = (
        "The flood's responses leave through the shared host NIC, so a "
        "co-hosted service's transfers slow down — the caveat.  Enforcing "
        "the per-IP outbound shares (§4.2) caps the victim at its "
        "reserved bandwidth: shaped transfers are individually slower, "
        "but the flood can no longer touch the neighbour (degradation "
        "back to ~1x)."
    )
    return result
