"""Ablation — the slow-down inflation factor (paper footnote 2).

The paper fixes the factor at 1.5 and calls choosing it "a challenging
problem (and our on-going work)".  The ablation sweeps the factor and
measures the trade-off it controls:

* **capacity cost** — how many machine instances M the two-host HUP can
  admit (higher inflation reserves more per unit);
* **delivered performance** — whether a 1M virtual service node, run at
  its inflated CPU slice but paying the real UML slow-down (~1.4x),
  still delivers at least one native-M's worth of compute.
"""

from __future__ import annotations

from typing import List

from repro.core import MachineConfig, ResourceRequirement
from repro.core.allocation import inflated_unit_vector, plan_allocation
from repro.core.errors import AdmissionError
from repro.guestos.syscall import SyscallCostModel
from repro.host.machine import make_seattle, make_tacoma
from repro.metrics.report import ExperimentResult
from repro.sim.kernel import Simulator
from repro.workload.apps import web_request_mix

EXPERIMENT_ID = "ablation-inflation"
TITLE = "Sweep of the footnote-2 slow-down inflation factor"

FACTORS: List[float] = [1.0, 1.25, 1.5, 1.75, 2.0]
DATASET_MB = 1.0


def _admittable_units(inflation: float) -> int:
    """Machine instances M the paper HUP can hold at this inflation."""
    sim = Simulator()
    hosts = [make_seattle(sim), make_tacoma(sim)]
    availability = [(h.name, h.reservations.available) for h in hosts]
    units = 0
    while True:
        requirement = ResourceRequirement(n=units + 1, machine=MachineConfig())
        try:
            plan_allocation(requirement, availability, inflation=inflation)
        except AdmissionError:
            return units
        units += 1


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    factors = FACTORS[::2] if fast else FACTORS
    model = SyscallCostModel()
    mix = web_request_mix(DATASET_MB)
    m = MachineConfig()
    native_time = model.mix_time_s(mix, m.cpu_mhz, in_uml=False)

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "inflation", "HUP capacity (M units)",
            "1M-node service time (s)", "vs native M", "meets native-M SLA",
        ],
    )
    xs, capacities, ratios = [], [], []
    for factor in factors:
        capacity = _admittable_units(factor)
        unit = inflated_unit_vector(
            ResourceRequirement(n=1, machine=m), inflation=factor
        )
        node_time = model.mix_time_s(mix, unit.cpu_mhz, in_uml=True)
        ratio = node_time / native_time
        result.add_row(
            f"{factor:.2f}", capacity, f"{node_time * 1e3:.3f} ms",
            f"{ratio:.2f}x", "yes" if ratio <= 1.0 else "no",
        )
        xs.append(factor)
        capacities.append(float(capacity))
        ratios.append(ratio)
    result.series["HUP capacity (M units) vs inflation"] = (xs, capacities)
    result.series["node/native service-time ratio vs inflation"] = (xs, ratios)

    app_slowdown = model.application_slowdown(mix)
    result.compare(
        "application slow-down the factor must cover", None, app_slowdown,
        note="paper picked 1.5 'conservatively'",
    )
    # The paper's 1.5 should land a 1M node within a few percent of
    # native-M performance (the factor is a conservative *estimate* of a
    # dataset-dependent slow-down, not a hard bound).
    paper_unit = inflated_unit_vector(
        ResourceRequirement(n=1, machine=m), inflation=1.5
    )
    paper_ratio = model.mix_time_s(mix, paper_unit.cpu_mhz, in_uml=True) / native_time
    result.compare(
        "1.5x node within 5% of native-M (time ratio)", 1.0, paper_ratio,
        tolerance_rel=0.05,
    )
    if 1.0 in factors and 1.5 in factors:
        capacity_no_inflation = capacities[xs.index(1.0)]
        capacity_paper = capacities[xs.index(1.5)]
        result.compare(
            "capacity cost of 1.5x vs 1.0x (fraction kept)", None,
            capacity_paper / capacity_no_inflation,
        )
    result.notes = (
        "Inflation >= the real UML application slow-down keeps a 1M node "
        "at native-M speed; every extra 0.25x of conservatism costs the "
        "HUP admitted capacity."
    )
    return result
