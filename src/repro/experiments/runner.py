"""Experiment registry and CLI.

``soda-experiments list`` shows the catalogue; ``soda-experiments run
<id> [--seed N] [--fast]`` runs one; ``soda-experiments all`` runs the
lot and prints a summary.  ``soda-experiments report`` emits the
markdown block EXPERIMENTS.md embeds.

``all`` accepts ``--parallel N`` to fan the experiment/seed jobs across
``N`` worker processes (each experiment builds its own simulator, so
jobs are fully independent); output is merged in registry order, so a
parallel run prints exactly what the serial run would.  Invoking the
CLI with only flags (``python -m repro.experiments.runner --parallel
4``) implies the ``all`` subcommand.

Observability (``run`` and ``all``): ``--profile`` appends a kernel
wall-time profile to each experiment's output, ``--trace-out DIR``
writes per-job span and Chrome-trace JSON files, and ``--metrics-out
DIR`` writes per-job Prometheus text dumps — all readable with the
``soda-obs`` CLI.  Instrumentation observes without perturbing, so
results (and the determinism digests) are identical with or without
these flags.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import traceback
from typing import Callable, Dict, List, Optional, Tuple

from repro.metrics.report import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "run_all", "main"]


def _registry() -> Dict[str, Callable[..., ExperimentResult]]:
    # Imported lazily so `soda-experiments list` stays instant.
    from repro.experiments import (
        ablation_bridge_proxy,
        ablation_ddos,
        ablation_faults,
        ablation_inflation,
        ablation_market,
        ablation_placement,
        ablation_policies,
        ablation_scheduler_shares,
        ablation_tailoring,
        download_time,
        federation_scale,
        fig3_isolation,
        fig4_loadbalance,
        fig5_cpushares,
        fig6_slowdown,
        fleet_scale,
        scenario_matrix,
        table1_requirements,
        table2_bootstrap,
        table3_config,
        table4_syscall,
    )

    modules = [
        table1_requirements,
        table2_bootstrap,
        table3_config,
        table4_syscall,
        fig3_isolation,
        fig4_loadbalance,
        fig5_cpushares,
        fig6_slowdown,
        download_time,
        ablation_bridge_proxy,
        ablation_ddos,
        ablation_faults,
        ablation_inflation,
        ablation_policies,
        ablation_placement,
        ablation_scheduler_shares,
        ablation_tailoring,
        ablation_market,
        fleet_scale,
        federation_scale,
        scenario_matrix,
    ]
    return {m.EXPERIMENT_ID: m.run for m in modules}


#: experiment id -> run callable.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {}


def _experiments() -> Dict[str, Callable[..., ExperimentResult]]:
    if not EXPERIMENTS:
        EXPERIMENTS.update(_registry())
    return EXPERIMENTS


def run_experiment(experiment_id: str, seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Run one experiment by id."""
    experiments = _experiments()
    if experiment_id not in experiments:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(experiments)}"
        )
    return experiments[experiment_id](seed=seed, fast=fast)


def _run_observed(
    experiment_id: str,
    seed: int,
    fast: bool,
    profile: bool,
    trace_out: Optional[str],
    metrics_out: Optional[str],
) -> Tuple[str, bool]:
    """Run one job with the requested observability pillars active.

    Tracing and metrics are only enabled when an output directory asks
    for them, so plain runs build no observability state at all.
    """
    if not (profile or trace_out or metrics_out):
        result = run_experiment(experiment_id, seed=seed, fast=fast)
        return result.render(), result.all_within_tolerance
    from repro.obs import Observability

    hub = Observability(
        tracing=trace_out is not None, metrics=metrics_out is not None, profile=profile
    )
    with hub.activate():
        result = run_experiment(experiment_id, seed=seed, fast=fast)
    text = result.render()
    stem = f"{experiment_id}-seed{seed}"
    if trace_out is not None:
        os.makedirs(trace_out, exist_ok=True)
        hub.write_spans(os.path.join(trace_out, f"{stem}.spans.json"))
        hub.write_chrome_trace(os.path.join(trace_out, f"{stem}.chrome.json"))
        # Extra documents experiments deposited on the hub (e.g. the
        # federation critical-path profile as {stem}.fedprofile.json).
        for key in sorted(hub.artifacts):
            path = os.path.join(trace_out, f"{stem}.{key}.json")
            with open(path, "w") as handle:
                json.dump(hub.artifacts[key], handle, indent=1)
                handle.write("\n")
    if metrics_out is not None:
        os.makedirs(metrics_out, exist_ok=True)
        hub.write_prometheus(os.path.join(metrics_out, f"{stem}.prom"))
    if profile:
        text += "\n\n" + hub.kernel_profile()
    return text, result.all_within_tolerance


def _worker(
    job: Tuple[str, int, bool, bool, Optional[str], Optional[str]]
) -> Tuple[str, int, str, bool]:
    """Run one (experiment, seed) job; never raises (for pool transport)."""
    experiment_id, seed, fast, profile, trace_out, metrics_out = job
    try:
        text, ok = _run_observed(
            experiment_id, seed, fast, profile, trace_out, metrics_out
        )
        return experiment_id, seed, text, ok
    except Exception:
        return experiment_id, seed, traceback.format_exc(), False


def run_all(
    seeds: List[int],
    fast: bool = False,
    parallel: int = 1,
    profile: bool = False,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
) -> List[Tuple[str, int, str, bool]]:
    """Run every experiment for every seed; returns (id, seed, text, ok).

    With ``parallel > 1`` the jobs are fanned across worker processes.
    Results are merged back in registry order (seeds inner), so the
    returned list — and anything printed from it — is identical to a
    serial run's.  The observability options apply per job (one span /
    metrics file per experiment and seed), and ride through the job
    tuples so parallel workers honour them too.
    """
    jobs = [
        (eid, seed, fast, profile, trace_out, metrics_out)
        for eid in _experiments()
        for seed in seeds
    ]
    if parallel > 1 and len(jobs) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(parallel, len(jobs))) as pool:
            finished = list(pool.map(_worker, jobs))
        merged = {(eid, seed): (text, ok) for eid, seed, text, ok in finished}
        return [(job[0], job[1]) + merged[(job[0], job[1])] for job in jobs]
    return [_worker(job) for job in jobs]


_COMMANDS = ("list", "run", "all", "report")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="soda-experiments",
        description="Reproduce the SODA (HPDC 2003) tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    def _add_obs_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--profile", action="store_true",
            help="append a kernel wall-time profile to the output",
        )
        p.add_argument(
            "--trace-out", default=None, metavar="DIR",
            help="write span + Chrome trace JSON per job into DIR",
        )
        p.add_argument(
            "--metrics-out", default=None, metavar="DIR",
            help="write a Prometheus text dump per job into DIR",
        )

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--fast", action="store_true")
    _add_obs_flags(run_parser)
    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument("--seed", type=int, default=0)
    all_parser.add_argument(
        "--seeds", type=int, nargs="+", default=None,
        help="run each experiment once per seed (overrides --seed)",
    )
    all_parser.add_argument("--fast", action="store_true")
    all_parser.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="fan jobs across N worker processes (default: serial)",
    )
    _add_obs_flags(all_parser)
    report_parser = sub.add_parser("report", help="emit EXPERIMENTS.md markdown")
    report_parser.add_argument("--seed", type=int, default=0)
    report_parser.add_argument("--fast", action="store_true")
    report_parser.add_argument("--out", default=None, help="write to a file")

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0].startswith("-") and argv[0] not in ("-h", "--help"):
        argv = ["all"] + list(argv)  # flags only: imply `all`
    args = parser.parse_args(argv)
    if args.command == "list":
        for experiment_id in _experiments():
            print(experiment_id)
        return 0
    if args.command == "run":
        text, ok = _run_observed(
            args.experiment_id, args.seed, args.fast,
            args.profile, args.trace_out, args.metrics_out,
        )
        print(text)
        return 0 if ok else 1
    if args.command == "report":
        from repro.experiments.report_md import generate_markdown

        markdown = generate_markdown(seed=args.seed, fast=args.fast)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(markdown)
            print(f"wrote {args.out}")
        else:
            print(markdown)
        return 0
    # all
    seeds = args.seeds if args.seeds else [args.seed]
    if args.parallel < 1:
        parser.error(f"--parallel must be >= 1, got {args.parallel}")
    failures = []
    for experiment_id, seed, text, ok in run_all(
        seeds, args.fast, args.parallel,
        profile=args.profile, trace_out=args.trace_out, metrics_out=args.metrics_out,
    ):
        print(text)
        print()
        if not ok:
            failures.append(
                experiment_id if len(seeds) == 1 else f"{experiment_id}[seed={seed}]"
            )
    if failures:
        print(f"OUT OF TOLERANCE: {failures}", file=sys.stderr)
        return 1
    print("all experiments within tolerance")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
