"""Experiment registry and CLI.

``soda-experiments list`` shows the catalogue; ``soda-experiments run
<id> [--seed N] [--fast]`` runs one; ``soda-experiments all`` runs the
lot and prints a summary.  ``soda-experiments report`` emits the
markdown block EXPERIMENTS.md embeds.

``all`` accepts ``--parallel N`` to fan the experiment/seed jobs across
``N`` worker processes (each experiment builds its own simulator, so
jobs are fully independent); output is merged in registry order, so a
parallel run prints exactly what the serial run would.  Invoking the
CLI with only flags (``python -m repro.experiments.runner --parallel
4``) implies the ``all`` subcommand.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from typing import Callable, Dict, List, Optional, Tuple

from repro.metrics.report import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "run_all", "main"]


def _registry() -> Dict[str, Callable[..., ExperimentResult]]:
    # Imported lazily so `soda-experiments list` stays instant.
    from repro.experiments import (
        ablation_bridge_proxy,
        ablation_ddos,
        ablation_inflation,
        ablation_placement,
        ablation_policies,
        ablation_scheduler_shares,
        ablation_tailoring,
        download_time,
        fig3_isolation,
        fig4_loadbalance,
        fig5_cpushares,
        fig6_slowdown,
        table1_requirements,
        table2_bootstrap,
        table3_config,
        table4_syscall,
    )

    modules = [
        table1_requirements,
        table2_bootstrap,
        table3_config,
        table4_syscall,
        fig3_isolation,
        fig4_loadbalance,
        fig5_cpushares,
        fig6_slowdown,
        download_time,
        ablation_bridge_proxy,
        ablation_ddos,
        ablation_inflation,
        ablation_policies,
        ablation_placement,
        ablation_scheduler_shares,
        ablation_tailoring,
    ]
    return {m.EXPERIMENT_ID: m.run for m in modules}


#: experiment id -> run callable.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {}


def _experiments() -> Dict[str, Callable[..., ExperimentResult]]:
    if not EXPERIMENTS:
        EXPERIMENTS.update(_registry())
    return EXPERIMENTS


def run_experiment(experiment_id: str, seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Run one experiment by id."""
    experiments = _experiments()
    if experiment_id not in experiments:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(experiments)}"
        )
    return experiments[experiment_id](seed=seed, fast=fast)


def _worker(job: Tuple[str, int, bool]) -> Tuple[str, int, str, bool]:
    """Run one (experiment, seed) job; never raises (for pool transport)."""
    experiment_id, seed, fast = job
    try:
        result = run_experiment(experiment_id, seed=seed, fast=fast)
        return experiment_id, seed, result.render(), result.all_within_tolerance
    except Exception:
        return experiment_id, seed, traceback.format_exc(), False


def run_all(
    seeds: List[int], fast: bool = False, parallel: int = 1
) -> List[Tuple[str, int, str, bool]]:
    """Run every experiment for every seed; returns (id, seed, text, ok).

    With ``parallel > 1`` the jobs are fanned across worker processes.
    Results are merged back in registry order (seeds inner), so the
    returned list — and anything printed from it — is identical to a
    serial run's.
    """
    jobs = [(eid, seed, fast) for eid in _experiments() for seed in seeds]
    if parallel > 1 and len(jobs) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(parallel, len(jobs))) as pool:
            finished = list(pool.map(_worker, jobs))
        merged = {(eid, seed): (text, ok) for eid, seed, text, ok in finished}
        return [
            (eid, seed) + merged[(eid, seed)] for eid, seed, _fast in jobs
        ]
    return [_worker(job) for job in jobs]


_COMMANDS = ("list", "run", "all", "report")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="soda-experiments",
        description="Reproduce the SODA (HPDC 2003) tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--fast", action="store_true")
    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument("--seed", type=int, default=0)
    all_parser.add_argument(
        "--seeds", type=int, nargs="+", default=None,
        help="run each experiment once per seed (overrides --seed)",
    )
    all_parser.add_argument("--fast", action="store_true")
    all_parser.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="fan jobs across N worker processes (default: serial)",
    )
    report_parser = sub.add_parser("report", help="emit EXPERIMENTS.md markdown")
    report_parser.add_argument("--seed", type=int, default=0)
    report_parser.add_argument("--fast", action="store_true")
    report_parser.add_argument("--out", default=None, help="write to a file")

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0].startswith("-") and argv[0] not in ("-h", "--help"):
        argv = ["all"] + list(argv)  # flags only: imply `all`
    args = parser.parse_args(argv)
    if args.command == "list":
        for experiment_id in _experiments():
            print(experiment_id)
        return 0
    if args.command == "run":
        result = run_experiment(args.experiment_id, seed=args.seed, fast=args.fast)
        print(result.render())
        return 0 if result.all_within_tolerance else 1
    if args.command == "report":
        from repro.experiments.report_md import generate_markdown

        markdown = generate_markdown(seed=args.seed, fast=args.fast)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(markdown)
            print(f"wrote {args.out}")
        else:
            print(markdown)
        return 0
    # all
    seeds = args.seeds if args.seeds else [args.seed]
    if args.parallel < 1:
        parser.error(f"--parallel must be >= 1, got {args.parallel}")
    failures = []
    for experiment_id, seed, text, ok in run_all(seeds, args.fast, args.parallel):
        print(text)
        print()
        if not ok:
            failures.append(
                experiment_id if len(seeds) == 1 else f"{experiment_id}[seed={seed}]"
            )
    if failures:
        print(f"OUT OF TOLERANCE: {failures}", file=sys.stderr)
        return 1
    print("all experiments within tolerance")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
