"""Experiment registry and CLI.

``soda-experiments list`` shows the catalogue; ``soda-experiments run
<id> [--seed N] [--fast]`` runs one; ``soda-experiments all`` runs the
lot and prints a summary.  ``soda-experiments report`` emits the
markdown block EXPERIMENTS.md embeds.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from repro.metrics.report import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment", "main"]


def _registry() -> Dict[str, Callable[..., ExperimentResult]]:
    # Imported lazily so `soda-experiments list` stays instant.
    from repro.experiments import (
        ablation_bridge_proxy,
        ablation_ddos,
        ablation_inflation,
        ablation_placement,
        ablation_policies,
        ablation_scheduler_shares,
        ablation_tailoring,
        download_time,
        fig3_isolation,
        fig4_loadbalance,
        fig5_cpushares,
        fig6_slowdown,
        table1_requirements,
        table2_bootstrap,
        table3_config,
        table4_syscall,
    )

    modules = [
        table1_requirements,
        table2_bootstrap,
        table3_config,
        table4_syscall,
        fig3_isolation,
        fig4_loadbalance,
        fig5_cpushares,
        fig6_slowdown,
        download_time,
        ablation_bridge_proxy,
        ablation_ddos,
        ablation_inflation,
        ablation_policies,
        ablation_placement,
        ablation_scheduler_shares,
        ablation_tailoring,
    ]
    return {m.EXPERIMENT_ID: m.run for m in modules}


#: experiment id -> run callable.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {}


def _experiments() -> Dict[str, Callable[..., ExperimentResult]]:
    if not EXPERIMENTS:
        EXPERIMENTS.update(_registry())
    return EXPERIMENTS


def run_experiment(experiment_id: str, seed: int = 0, fast: bool = False) -> ExperimentResult:
    """Run one experiment by id."""
    experiments = _experiments()
    if experiment_id not in experiments:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(experiments)}"
        )
    return experiments[experiment_id](seed=seed, fast=fast)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="soda-experiments",
        description="Reproduce the SODA (HPDC 2003) tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--fast", action="store_true")
    all_parser = sub.add_parser("all", help="run every experiment")
    all_parser.add_argument("--seed", type=int, default=0)
    all_parser.add_argument("--fast", action="store_true")
    report_parser = sub.add_parser("report", help="emit EXPERIMENTS.md markdown")
    report_parser.add_argument("--seed", type=int, default=0)
    report_parser.add_argument("--fast", action="store_true")
    report_parser.add_argument("--out", default=None, help="write to a file")

    args = parser.parse_args(argv)
    if args.command == "list":
        for experiment_id in _experiments():
            print(experiment_id)
        return 0
    if args.command == "run":
        result = run_experiment(args.experiment_id, seed=args.seed, fast=args.fast)
        print(result.render())
        return 0 if result.all_within_tolerance else 1
    if args.command == "report":
        from repro.experiments.report_md import generate_markdown

        markdown = generate_markdown(seed=args.seed, fast=args.fast)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(markdown)
            print(f"wrote {args.out}")
        else:
            print(markdown)
        return 0
    # all
    failures = []
    for experiment_id in _experiments():
        result = run_experiment(experiment_id, seed=args.seed, fast=args.fast)
        print(result.render())
        print()
        if not result.all_within_tolerance:
            failures.append(experiment_id)
    if failures:
        print(f"OUT OF TOLERANCE: {failures}", file=sys.stderr)
        return 1
    print("all experiments within tolerance")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
