"""Figure 4 — request switching and load balancing.

"We measure the average request response time achieved by each virtual
service node; and the measurement is repeated under six different
dataset sizes.  [...] we reduce the request arrival rate with the
increase in dataset size.  We observe that the requests served by the
node in seattle is approximately twice as many as those served by the
node in tacoma.  More importantly, the request response time achieved
by the two nodes are approximately the same" (§5).

Protocol: the Figure 2 deployment (2M node on seattle, 1M on tacoma),
weighted round-robin 2:1, open-loop Poisson siege per dataset size with
the arrival rate set to ~50% of the LAN's payload capacity for that
size (the paper's rate reduction rule, made explicit).
"""

from __future__ import annotations

from typing import List

from repro.experiments._testbed import deploy_paper_services
from repro.metrics.report import ExperimentResult
from repro.sim.rng import RandomStreams
from repro.workload.siege import Siege

EXPERIMENT_ID = "fig4"
TITLE = "Average request response time per virtual service node vs dataset size"

#: Six dataset sizes (MB), spanning the regime where a 100 Mbps LAN can
#: carry a meaningful request rate.
DATASET_SIZES_MB: List[float] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0]

# Target fraction of LAN payload capacity offered as load.
UTILISATION = 0.5
LAN_PAYLOAD_MBPS = 100.0 * 0.94
MIN_REQUESTS = 120


def arrival_rate_rps(dataset_mb: float) -> float:
    """The paper's rule, made concrete: rate falls as size grows."""
    return UTILISATION * LAN_PAYLOAD_MBPS / (dataset_mb * 8.0)


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    sizes = DATASET_SIZES_MB[:3] if fast else DATASET_SIZES_MB
    min_requests = 40 if fast else MIN_REQUESTS
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "dataset (MB)", "rate (req/s)",
            "seattle mean RT (s)", "tacoma mean RT (s)",
            "seattle reqs", "tacoma reqs", "count ratio",
        ],
    )
    xs, seattle_rts, tacoma_rts = [], [], []
    for dataset_mb in sizes:
        deployment = deploy_paper_services(seed=seed)
        testbed = deployment.testbed
        seattle_node = next(n for n in deployment.web.nodes if n.host.name == "seattle")
        tacoma_node = next(n for n in deployment.web.nodes if n.host.name == "tacoma")
        rate = arrival_rate_rps(dataset_mb)
        duration = max(20.0, min_requests / rate)
        siege = Siege(
            testbed.sim, deployment.web.switch, deployment.clients,
            RandomStreams(seed).spawn(f"fig4-{dataset_mb}"), dataset_mb=dataset_mb,
        )
        report = testbed.run(siege.run_open_loop(rate_rps=rate, duration_s=duration))
        seattle_rt = report.mean_response_s(seattle_node.name)
        tacoma_rt = report.mean_response_s(tacoma_node.name)
        n_seattle = report.requests_served_by(seattle_node.name)
        n_tacoma = report.requests_served_by(tacoma_node.name)
        result.add_row(
            dataset_mb, f"{rate:.2f}", f"{seattle_rt:.3f}", f"{tacoma_rt:.3f}",
            n_seattle, n_tacoma, f"{n_seattle / n_tacoma:.2f}",
        )
        xs.append(dataset_mb)
        seattle_rts.append(seattle_rt)
        tacoma_rts.append(tacoma_rt)
        result.compare(
            f"count ratio seattle/tacoma @ {dataset_mb} MB", 2.0,
            n_seattle / n_tacoma, tolerance_rel=0.15,
        )
        result.compare(
            f"RT ratio seattle/tacoma @ {dataset_mb} MB", 1.0,
            seattle_rt / tacoma_rt, tolerance_rel=0.30,
            note="paper: 'approximately the same'",
        )
    result.series["seattle mean response time (s) vs dataset (MB)"] = (xs, seattle_rts)
    result.series["tacoma mean response time (s) vs dataset (MB)"] = (xs, tacoma_rts)
    result.notes = (
        "Weighted round-robin 2:1 sends seattle twice the requests; its "
        "node holds twice the capacity, so per-node response times track "
        "each other while growing with dataset size."
    )
    return result
