"""Ablation — fault injection, failover, and recovery (extension).

Paper §3.5: SODA "only helps to 'jail' the impact of fault or attack
within one service instead of 'saving' the service" — so this ablation
measures what the *extension* stack (switch health quarantine, retry
with capped backoff, capacity-aware shedding, watchdog reboots) buys on
top of that jail.  The same three-tier deployment and Poisson load runs
twice — once undisturbed, once through a seeded chaos campaign (node
crashes, a host outage, a link stall, a LAN degrade) — and the table
reports per-class request accounting, availability, and watchdog
recovery times.

The headline claims, encoded as comparisons: every request is accounted
for (served + failed + shed == issued), and platform availability never
reaches zero in any observation window — replicated tiers keep serving
while crashed nodes reboot.
"""

from __future__ import annotations

from repro.faults.chaos import run_chaos_scenario
from repro.metrics.report import ExperimentResult

EXPERIMENT_ID = "ablation-faults"
TITLE = "Chaos campaign: per-class availability and watchdog recovery"

DURATION_S = 80.0
FAST_DURATION_S = 40.0


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    duration_s = FAST_DURATION_S if fast else DURATION_S
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "config", "class", "issued", "served", "failed", "shed",
            "availability", "failovers", "reboots", "mean recovery (s)",
        ],
    )
    configs = (
        ("baseline", False),
        ("chaos", True),
    )
    reports = {}
    for label, with_faults in configs:
        report = run_chaos_scenario(
            seed=seed, duration_s=duration_s, with_faults=with_faults
        )
        reports[label] = report
        for name, stats in report.stats.items():
            reboots = report.reboots[name]
            recoveries = [restored - detected for detected, restored in reboots]
            mean_recovery = (
                sum(recoveries) / len(recoveries) if recoveries else 0.0
            )
            result.add_row(
                label, name, stats.issued, stats.served, stats.failed,
                stats.shed, f"{stats.availability:.4f}",
                report.failovers[name], len(reboots),
                f"{mean_recovery:.2f}" if recoveries else "-",
            )

    chaos = reports["chaos"]
    baseline = reports["baseline"]

    # Conservation: the harness accounts for every request it issued.
    issued = sum(s.issued for s in chaos.stats.values())
    accounted = sum(s.accounted for s in chaos.stats.values())
    result.compare(
        "chaos request conservation (accounted/issued)", 1.0,
        accounted / issued if issued else 0.0, tolerance_rel=0.0,
    )
    # Availability never reaches zero in any window: failover keeps the
    # platform serving while crashed nodes reboot.  Encoded as "min
    # window availability is within 90% of 1.0" => must exceed 0.1.
    result.compare(
        "min-window platform availability under chaos", 1.0,
        chaos.min_window_availability(), tolerance_rel=0.9,
        note="must stay above zero throughout the campaign",
    )
    # The faults actually happened and were actually repaired.
    crashlike = sum(
        1 for _t, kind, _target, phase in chaos.fault_log
        if phase == "inject" and kind in ("node_crash", "host_outage")
    )
    result.compare(
        "watchdog reboots vs injected crash-like faults",
        float(crashlike), float(chaos.total_reboots), tolerance_rel=1.0,
        note="an outage crashes several guests at once, so reboots may exceed events",
    )
    # Undisturbed run sanity: nothing fails without faults (paper=0
    # makes the tolerance an absolute bound).
    baseline_failed = sum(s.failed for s in baseline.stats.values())
    result.compare(
        "baseline failed requests", 0.0, float(baseline_failed),
        tolerance_rel=0.0,
    )

    timeline = chaos.availability_timeline()
    result.series["platform availability vs time (s), chaos"] = (
        [start for start, _ in timeline],
        [fraction for _, fraction in timeline],
    )
    result.notes = (
        f"Chaos campaign: {len(chaos.fault_log)} fault-log entries, "
        f"{chaos.total_reboots} watchdog reboots, per-class shed counts "
        + ", ".join(
            f"{name}={stats.shed}" for name, stats in chaos.stats.items()
        )
        + ". Replicas are spread across hosts (WORST_FIT), so every tier "
        "keeps at least one live node through single-host faults; the "
        "switch quarantines dead replicas and retries with capped "
        "backoff, and bronze sheds first when capacity drops."
    )
    return result
