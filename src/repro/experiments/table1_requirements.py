"""Table 1 — example machine configuration M in requirement <n, M>.

A specification artefact rather than a measurement: the experiment
renders the configuration and validates the ``<n, M>`` arithmetic the
rest of the system builds on.
"""

from __future__ import annotations

from repro.core.requirements import TABLE1_EXAMPLE, ResourceRequirement
from repro.metrics.report import ExperimentResult

EXPERIMENT_ID = "table1"
TITLE = "Example machine configuration M in resource requirement <n, M>"


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["Type of resource", "Amount of resource"],
    )
    m = TABLE1_EXAMPLE
    result.add_row("CPU", f"{m.cpu_mhz:g}MHz")
    result.add_row("Memory", f"{m.mem_mb:g}MB")
    result.add_row("Disk", f"{m.disk_mb / 1024:g}GB")
    result.add_row("Bandwidth", f"{m.bw_mbps:g}Mbps")

    result.compare("M.cpu (MHz)", 512.0, m.cpu_mhz, tolerance_rel=0.0)
    result.compare("M.memory (MB)", 256.0, m.mem_mb, tolerance_rel=0.0)
    result.compare("M.disk (MB)", 1024.0, m.disk_mb, tolerance_rel=0.0)
    result.compare("M.bandwidth (Mbps)", 10.0, m.bw_mbps, tolerance_rel=0.0)

    requirement = ResourceRequirement(n=3, machine=m)
    total = requirement.total_vector()
    result.compare("<3, M> total CPU (MHz)", 1536.0, total.cpu_mhz, tolerance_rel=0.0)
    result.notes = f"requirement rendered: {requirement}"
    return result
