"""Ablation — unequal CPU shares from the admission path.

Figure 5 demonstrates *equal* shares, but the mechanism is general:
"The CPU share is determined by the SODA Master when the corresponding
service is admitted" (§4.2) — a node holding 2 machine instances M is
entitled to twice the CPU of a 1M node.  The ablation gives the three
Figure 5 workloads ticket ratios matching multi-M allocations and
checks the proportional-share scheduler delivers them (and vanilla
Linux, which has no notion of tickets, does not).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.host.scheduler import (
    ProportionalShareScheduler,
    TaskGroup,
    VanillaLinuxScheduler,
    WorkloadSpec,
)
from repro.metrics.report import ExperimentResult
from repro.sim.rng import RandomStreams

EXPERIMENT_ID = "ablation-scheduler-shares"
TITLE = "Unequal CPU shares: tickets follow admitted machine instances"

HORIZON_S = 60.0

#: (label, M-units per node) scenarios.
SCENARIOS: List[Tuple[str, Dict[str, float]]] = [
    ("2M web : 1M comp : 1M log", {"web": 2.0, "comp": 1.0, "log": 1.0}),
    ("1M web : 3M comp : 2M log", {"web": 1.0, "comp": 3.0, "log": 2.0}),
]


def _groups(tickets: Dict[str, float]) -> List[TaskGroup]:
    # CPU-hungry variants of the Figure 5 workloads so every node can
    # absorb any share it is entitled to.
    return [
        TaskGroup("web", [WorkloadSpec.web_server(run_quanta=4, block_s=0.010)] * 2,
                  tickets=tickets["web"]),
        TaskGroup("comp", [WorkloadSpec.cpu_hog()] * 3, tickets=tickets["comp"]),
        TaskGroup("log", [WorkloadSpec.disk_logger(block_s=0.005)] * 2,
                  tickets=tickets["log"]),
    ]


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    horizon = 20.0 if fast else HORIZON_S
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=[
            "allocation", "scheduler",
            "web share", "comp share", "log share",
        ],
    )
    streams = RandomStreams(seed)
    for label, tickets in SCENARIOS:
        total = sum(tickets.values())
        entitled = {g: t / total for g, t in tickets.items()}
        prop = ProportionalShareScheduler(
            _groups(tickets), streams.spawn(f"shares-p-{label}")
        ).run(horizon)
        vanilla = VanillaLinuxScheduler(
            _groups(tickets), streams.spawn(f"shares-v-{label}")
        ).run(horizon)
        for name, trace in (("proportional", prop), ("vanilla", vanilla)):
            shares = {g: trace.total_share(g) for g in ("web", "comp", "log")}
            result.add_row(
                label, name,
                *(f"{shares[g]:.3f} (want {entitled[g]:.2f})" for g in ("web", "comp", "log")),
            )
        for group in ("web", "comp", "log"):
            result.compare(
                f"proportional {group} share [{label}]",
                entitled[group], prop.total_share(group), tolerance_rel=0.15,
            )
        # Vanilla misses at least one entitlement badly.
        worst_vanilla_error = max(
            abs(vanilla.total_share(g) - entitled[g]) / entitled[g]
            for g in ("web", "comp", "log")
        )
        result.compare(
            f"vanilla worst share error [{label}]", None, worst_vanilla_error,
            note="> 0.15 means vanilla cannot honour the allocation",
        )
    result.notes = (
        "Stride tickets set from the admitted machine-instance counts "
        "turn Figure 5's equal-share demo into general weighted CPU "
        "isolation; vanilla Linux tracks process counts instead."
    )
    return result
