"""Figure 5 — CPU shares of web/comp/log under the two host schedulers.

"we create two additional virtual service nodes *comp* and *log* in
*tacoma*, besides the one for web content service (*web*). [...] Each
of the three virtual service nodes is allocated an *equal* share of the
CPU.  However, their loads are *higher* than their respective shares.
Under this loaded condition, we measure the actual CPU shares [...]
We observe that the 'equal-share' isolation between the virtual service
nodes is better enforced by our enhanced host OS" (§5).
"""

from __future__ import annotations

import numpy as np

from repro.host.scheduler import (
    ProportionalShareScheduler,
    VanillaLinuxScheduler,
    figure5_groups,
)
from repro.metrics.report import ExperimentResult
from repro.sim.rng import RandomStreams

EXPERIMENT_ID = "fig5"
TITLE = "CPU shares (versus time) of virtual service nodes web, comp, log"

HORIZON_S = 60.0
BUCKET_S = 2.0
GROUPS = ("web", "comp", "log")


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    horizon = 20.0 if fast else HORIZON_S
    streams = RandomStreams(seed)
    vanilla = VanillaLinuxScheduler(figure5_groups(), streams.spawn("fig5-vanilla")).run(horizon)
    prop = ProportionalShareScheduler(figure5_groups(), streams.spawn("fig5-prop")).run(horizon)

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["scheduler", "web share", "comp share", "log share", "max-min spread"],
    )
    for label, trace in (("(a) unmodified Linux", vanilla), ("(b) proportional-share", prop)):
        shares = [trace.total_share(g) for g in GROUPS]
        result.add_row(
            label, *(f"{s:.3f}" for s in shares), f"{max(shares) - min(shares):.3f}"
        )

    for name, trace in (("vanilla", vanilla), ("proportional", prop)):
        centres, per_group = trace.shares(BUCKET_S)
        for group in GROUPS:
            result.series[f"{name}: {group} CPU share vs time (s)"] = (
                centres.tolist(), per_group[group].tolist(),
            )

    v_shares = [vanilla.total_share(g) for g in GROUPS]
    p_shares = [prop.total_share(g) for g in GROUPS]
    result.compare(
        "vanilla max-min spread", None, max(v_shares) - min(v_shares),
        note="paper Fig 5(a): clearly unequal shares",
    )
    for group, share in zip(GROUPS, p_shares):
        result.compare(
            f"proportional {group} share", 1 / 3, share, tolerance_rel=0.15,
            note="paper Fig 5(b): ~equal shares",
        )
    # Fluctuation check: the proportional scheduler's per-bucket shares
    # stay near 1/3; vanilla's wander.
    _, prop_buckets = prop.shares(BUCKET_S)
    prop_std = float(np.mean([np.std(prop_buckets[g]) for g in GROUPS]))
    _, vanilla_buckets = vanilla.shares(BUCKET_S)
    vanilla_std = float(np.mean([np.std(vanilla_buckets[g]) for g in GROUPS]))
    result.compare(
        "bucket-share std: vanilla / proportional", None,
        vanilla_std / max(prop_std, 1e-9),
        note="> 1 means the enhanced host OS also reduces fluctuation",
    )
    result.notes = (
        "Vanilla Linux schedules processes, so comp's 3 CPU hogs harvest "
        "the most CPU; the userid-keyed proportional-share scheduler "
        "enforces ~1/3 per node regardless of process count."
    )
    return result
