"""Figure 3 — attack isolation: honeypot and web service co-existing.

"In this experiment, the honeypot service is constantly attacked and
crashed.  However, the web content service is *not* affected" (§5).
The experiment runs the ghttpd exploit campaign against the honeypot
while the web content service serves a steady siege; it then reproduces
the Figure 3 evidence: both guests' ``ps -ef`` views, and the isolation
ledger (0 host compromises, 0 sibling compromises, web failure rate 0).
"""

from __future__ import annotations

from repro.experiments._testbed import deploy_paper_services
from repro.metrics.report import ExperimentResult
from repro.sim.rng import RandomStreams
from repro.workload.attack import AttackCampaign
from repro.workload.siege import Siege

EXPERIMENT_ID = "fig3"
TITLE = "Attack isolation: co-existing web content and honeypot services"


def run(seed: int = 0, fast: bool = False) -> ExperimentResult:
    waves = 3 if fast else 8
    siege_duration = 15.0 if fast else 60.0
    deployment = deploy_paper_services(seed=seed)
    testbed = deployment.testbed
    attacker = testbed.add_client("attacker")
    siblings = [n for n in deployment.web.nodes if n.host.name == "seattle"]
    campaign = AttackCampaign(
        testbed.sim, deployment.honeypot.switch, attacker, siblings=siblings
    )
    siege = Siege(
        testbed.sim, deployment.web.switch, deployment.clients,
        RandomStreams(seed).spawn("fig3"), dataset_mb=0.25,
    )

    attack_proc = testbed.spawn(campaign.run(waves=waves), name="attack")
    report = testbed.run(siege.run_open_loop(rate_rps=8.0, duration_s=siege_duration))
    outcome = testbed.sim.run_until_process(attack_proc)

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        headers=["metric", "value"],
    )
    result.add_row("attack waves", outcome.waves)
    result.add_row("guest-root shells bound", outcome.shells_bound)
    result.add_row("honeypot guest crashes", outcome.guest_crashes)
    result.add_row("honeypot reboots", outcome.reboots)
    result.add_row("host OS compromises", outcome.host_compromises)
    result.add_row("sibling (web) node compromises", outcome.sibling_compromises)
    result.add_row("web requests completed during attack", report.completed)
    result.add_row("web request failures during attack", report.failures)

    result.compare("host compromises", 0, outcome.host_compromises, tolerance_rel=0.0)
    result.compare("sibling compromises", 0, outcome.sibling_compromises, tolerance_rel=0.0)
    result.compare("web failures under attack", 0, report.failures, tolerance_rel=0.0)
    result.compare(
        "guest crashes == waves", float(outcome.waves), float(outcome.guest_crashes),
        tolerance_rel=0.0, note="every wave crashed the honeypot guest",
    )

    # The Figure 3 screenshot: log into each co-existing guest and run
    # ps -ef under its own guest root.
    from repro.guestos.console import GuestConsole

    web_node = siblings[0]
    pot_node = deployment.honeypot.nodes[0]
    screenshots = []
    for hostname, node in (("Web", web_node), ("HoneyPot", pot_node)):
        console = GuestConsole(node.vm, hostname)
        console.login("root")
        console.run("ps -ef")
        screenshots.append(console.screenshot())
    result.notes = (
        "Figure 3: console screenshots of the two co-existing virtual "
        "service nodes on seattle\n"
        "--- left terminal (web content service) ---\n" + screenshots[0] + "\n"
        "--- right terminal (honeypot service) ---\n" + screenshots[1]
    )
    return result
