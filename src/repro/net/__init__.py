"""Network substrate.

Models the paper's 100 Mbps departmental LAN (§4) at flow granularity:

* :mod:`repro.net.lan` — a shared segment plus per-host NICs with
  max-min fair bandwidth sharing between concurrent flows (fluid model).
* :mod:`repro.net.ip` — IPv4 address pools; each SODA Daemon owns a
  disjoint pool to hand out to virtual service nodes (§4.3).
* :mod:`repro.net.http` — an HTTP/1.1 transfer model used for active
  service image downloading (§4.3) and for client request/response
  exchanges.
"""

from repro.net.http import HttpModel, HttpTransferStats
from repro.net.ip import IPAddressPool, IPPoolExhausted, parse_ipv4
from repro.net.lan import LAN, Flow, NetworkInterface

__all__ = [
    "LAN",
    "Flow",
    "HttpModel",
    "HttpTransferStats",
    "IPAddressPool",
    "IPPoolExhausted",
    "NetworkInterface",
    "parse_ipv4",
]
