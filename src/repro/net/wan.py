"""Wide-area links between LANs (§3.5's wide-area HUP).

"One way to construct a wide-area HUP is to *federate* multiple local
HUPs" — which makes cross-HUP traffic (above all, service image
downloads from an ASP repository in another site) traverse a WAN link.
A :class:`WanLink` joins two LANs through gateway NICs and carries
cross-site transfers with:

* fair sharing of the WAN bandwidth among concurrent cross transfers
  (per-flow caps recomputed as transfers join/leave),
* cut-through forwarding approximated by running the two LAN-side
  flows concurrently under the WAN cap (completion = both sides done),
* WAN propagation latency added once.

Intra-LAN traffic is untouched; the WAN appears to each LAN only as a
pair of ordinary (busy) NICs.

Two extensions serve the parallel federated simulator
(:mod:`repro.sim.parallel`):

* :class:`WanTransferDescriptor` — a picklable, pure-data description
  of a cross-cluster transfer.  Sub-kernel shards cannot hand each
  other live :class:`Flow` objects, so the message plane ships
  descriptors and each side applies the same closed-form timing
  (``latency + size / bandwidth``).  Descriptors allow ``size_mb == 0``
  (latency-only control messages); the flow-based
  :meth:`WanLink.transfer` requires a positive size, like the LAN.
* **Lookahead declaration** — :attr:`WanLink.lookahead_s` (and the
  descriptor's field of the same name) is the link's guaranteed lower
  bound on cross-cluster event propagation: no byte sent at ``t`` can
  be observed remotely before ``t + lookahead_s``.  Conservative
  parallel simulation synchronizes shards in epochs of the *minimum*
  lookahead over all inter-cluster links.

Fault hooks (:meth:`WanLink.stall` / :meth:`WanLink.restore`) mirror
the LAN's ``stall_nic``/``unstall_nic`` so the fault injector can
freeze a WAN link: a stalled link's gateway NICs are stalled on both
member LANs, pinning every active (and newly started) transfer at zero
rate until restore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.net.lan import LAN, Flow, NetworkInterface
from repro.sim.kernel import Event, Simulator

__all__ = ["WanTransfer", "WanTransferDescriptor", "WanLink"]


@dataclass(frozen=True)
class WanTransferDescriptor:
    """A serializable cross-shard WAN transfer (pure data, picklable).

    The analytic twin of a :class:`WanTransfer`: ``delivery_time``
    applies the link's propagation latency plus the serialization time
    of ``size_mb`` at the link rate, with no live simulator objects
    involved — both sides of an epoch barrier can evaluate it and agree
    bit-for-bit.  ``size_mb == 0`` models a latency-only control
    message (broker calls, placement broadcasts).
    """

    src: str
    dst: str
    size_mb: float
    bandwidth_mbps: float
    lookahead_s: float  # the link's declared latency lower bound
    label: str = ""

    def __post_init__(self) -> None:
        if self.size_mb < 0:
            raise ValueError(f"size_mb must be non-negative, got {self.size_mb}")
        if self.bandwidth_mbps <= 0:
            raise ValueError(
                f"bandwidth_mbps must be positive, got {self.bandwidth_mbps}"
            )
        if self.lookahead_s <= 0:
            raise ValueError(
                "a cross-shard link needs a positive lookahead "
                f"(latency), got {self.lookahead_s}"
            )

    @property
    def transfer_s(self) -> float:
        """Serialization time of the payload at the full link rate."""
        return self.size_mb * 8.0 / self.bandwidth_mbps

    def delivery_time(self, send_time: float) -> float:
        """When the last byte lands, for a send at ``send_time``."""
        return send_time + self.lookahead_s + self.transfer_s

    def segments(self, send_time: float) -> dict:
        """The hop as trace-span material, for a send at ``send_time``.

        The returned interval ``[start, end]`` has duration exactly
        ``latency_s + transfer_s``, so ``wan_transfer`` spans built from
        it tile the end-to-end path of a federated trace to 1e-9 (see
        :mod:`repro.obs.federation`).
        """
        return {
            "start": send_time,
            "end": self.delivery_time(send_time),
            "latency_s": self.lookahead_s,
            "transfer_s": self.transfer_s,
        }


class WanTransfer:
    """One cross-LAN transfer; ``done`` fires when the last byte lands."""

    def __init__(self, link: "WanLink", flow_a: Flow, flow_b: Flow):
        self.link = link
        self.flow_a = flow_a
        self.flow_b = flow_b
        self.done: Event = Event(link.sim)
        self.started_at = link.sim.now
        self.finished_at: Optional[float] = None

    @property
    def size_mb(self) -> float:
        return self.flow_a.size_mb

    @property
    def elapsed(self) -> float:
        end = self.finished_at if self.finished_at is not None else self.link.sim.now
        return end - self.started_at


class WanLink:
    """A bandwidth/latency pipe joining two LANs."""

    def __init__(
        self,
        sim: Simulator,
        lan_a: LAN,
        lan_b: LAN,
        bandwidth_mbps: float,
        latency_s: float = 0.030,
        name: str = "wan",
    ):
        if bandwidth_mbps <= 0:
            raise ValueError(f"WAN bandwidth must be positive, got {bandwidth_mbps}")
        if latency_s < 0:
            raise ValueError(f"latency must be non-negative, got {latency_s}")
        if lan_a is lan_b:
            raise ValueError("a WAN link must join two distinct LANs")
        self.sim = sim
        self.lan_a = lan_a
        self.lan_b = lan_b
        self.bandwidth_mbps = bandwidth_mbps
        self.latency_s = latency_s
        self.name = name
        # Gateway routers: one NIC on each LAN, sized to the WAN rate so
        # the gateway itself never under-sells the pipe.
        self.gateway_a = lan_a.nic(f"{name}-gw-a", bandwidth_mbps)
        self.gateway_b = lan_b.nic(f"{name}-gw-b", bandwidth_mbps)
        self._active: List[WanTransfer] = []
        self._stalled = False

    def _side_of(self, nic: NetworkInterface) -> Optional[LAN]:
        for lan in (self.lan_a, self.lan_b):
            if lan._nics.get(nic.name) is nic:
                return lan
        return None

    @property
    def active_transfers(self) -> List[WanTransfer]:
        return list(self._active)

    # -- lookahead declaration (conservative parallel simulation) ----------
    @property
    def lookahead_s(self) -> float:
        """The guaranteed lower bound on cross-LAN event propagation.

        Propagation latency is paid by every transfer regardless of
        size, so nothing sent at ``t`` is observable on the far side
        before ``t + lookahead_s`` — the property conservative epoch
        synchronization rests on (see :mod:`repro.sim.parallel`).
        """
        return self.latency_s

    def describe(self, size_mb: float, label: str = "") -> WanTransferDescriptor:
        """A picklable descriptor of a transfer over this link."""
        return WanTransferDescriptor(
            src=self.gateway_a.name,
            dst=self.gateway_b.name,
            size_mb=size_mb,
            bandwidth_mbps=self.bandwidth_mbps,
            lookahead_s=self.latency_s,
            label=label or self.name,
        )

    # -- fault hooks (mirror LAN.stall_nic/unstall_nic) --------------------
    @property
    def stalled(self) -> bool:
        return self._stalled

    def stall(self) -> None:
        """Freeze the link: all transfers (current and new) stop moving.

        Implemented by stalling the gateway NIC on each member LAN, so
        the LAN allocators pin every flow through the gateways at zero
        rate.  Idempotent; transfers resume from their remaining bytes
        on :meth:`restore`.
        """
        if self._stalled:
            return
        self._stalled = True
        self.lan_a.stall_nic(self.gateway_a)
        self.lan_b.stall_nic(self.gateway_b)

    def restore(self) -> None:
        """Unfreeze the link; blocked transfers pick up where they left off."""
        if not self._stalled:
            return
        self._stalled = False
        self.lan_a.unstall_nic(self.gateway_a)
        self.lan_b.unstall_nic(self.gateway_b)

    def _reshare(self) -> None:
        """Fair WAN share for each active transfer, applied as caps."""
        if not self._active:
            return
        share = self.bandwidth_mbps / len(self._active)
        for transfer in self._active:
            for flow in (transfer.flow_a, transfer.flow_b):
                if flow.remaining_mb > 0:
                    flow.set_rate_cap(share)

    def transfer(
        self,
        src: NetworkInterface,
        dst: NetworkInterface,
        size_mb: float,
        label: str = "",
    ) -> WanTransfer:
        """Start a cross-LAN transfer from ``src`` to ``dst``."""
        if size_mb <= 0:
            raise ValueError(
                f"WAN transfer size must be positive, got {size_mb} "
                "(latency-only messages use WanTransferDescriptor)"
            )
        src_lan = self._side_of(src)
        dst_lan = self._side_of(dst)
        if src_lan is None or dst_lan is None:
            raise ValueError(
                f"endpoints must live on the linked LANs "
                f"(src={src.name!r}, dst={dst.name!r})"
            )
        if src_lan is dst_lan:
            raise ValueError(
                f"{src.name!r} and {dst.name!r} share a LAN; use LAN.transfer"
            )
        src_gateway = self.gateway_a if src_lan is self.lan_a else self.gateway_b
        dst_gateway = self.gateway_a if dst_lan is self.lan_a else self.gateway_b
        share = self.bandwidth_mbps / (len(self._active) + 1)
        flow_a = src_lan.transfer(
            src, src_gateway, size_mb, rate_cap_mbps=share, label=f"{label}:wan-in"
        )
        flow_b = dst_lan.transfer(
            dst_gateway, dst, size_mb, rate_cap_mbps=share, label=f"{label}:wan-out"
        )
        transfer = WanTransfer(self, flow_a, flow_b)
        self._active.append(transfer)
        self._reshare()

        both = self.sim.all_of([flow_a.done, flow_b.done])

        def _finish(_event: Event) -> None:
            self._active.remove(transfer)
            self._reshare()
            if self.latency_s > 0:
                delay = self.sim.timeout(self.latency_s)
                delay.callbacks.append(
                    lambda _ev: (_set_finished(), transfer.done.succeed(transfer))
                )
            else:
                _set_finished()
                transfer.done.succeed(transfer)

        def _set_finished() -> None:
            transfer.finished_at = self.sim.now

        both.callbacks.append(_finish)
        return transfer
