"""HTTP/1.1 transfer model.

Used in two places:

* **Active service image downloading** (paper §4.3): "the SODA Daemon on
  each selected HUP host will download the service image using
  HTTP/1.1".  The paper measures download time growing linearly with
  image size on the 100 Mbps LAN; that linearity falls out of the
  bandwidth-dominated regime of this model.
* **Client request/response exchanges** driven by the siege workload
  generator (§5).

The model charges, per request: one request transmission (latency +
small request message), server-side processing supplied by the caller,
and a response body transfer over the LAN fluid model with a TCP
efficiency factor (protocol headers + slow-start ramp amortised).
HTTP/1.1 persistent connections are modelled by paying the connection
setup only on the first request of a session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.net.lan import LAN, NetworkInterface
from repro.sim.kernel import Event, Simulator

__all__ = ["HttpTransferStats", "HttpModel"]

# Effective goodput fraction after TCP/IP + HTTP header overhead.  A
# 100 Mbps LAN yields ~11.xx MB/s of application payload in practice.
TCP_EFFICIENCY = 0.94

# TCP three-way handshake ≈ 1.5 RTT; we charge it once per session
# (HTTP/1.1 keeps the connection alive across requests).
HANDSHAKE_RTTS = 1.5

# Request messages are small; modelled as a fixed size.
REQUEST_SIZE_MB = 0.0005  # ~500 bytes


@dataclass
class HttpTransferStats:
    """Outcome of one HTTP exchange."""

    started_at: float
    finished_at: float
    payload_mb: float
    connection_setup_s: float = 0.0
    server_time_s: float = 0.0

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at

    @property
    def goodput_mbps(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.payload_mb * 8.0 / self.elapsed


@dataclass
class HttpSession:
    """Tracks per-connection state (persistent connections)."""

    client: NetworkInterface
    server: NetworkInterface
    connected: bool = False
    requests_served: int = field(default=0)


class HttpModel:
    """HTTP/1.1 request/response mechanics over a :class:`LAN`."""

    def __init__(self, sim: Simulator, lan: LAN):
        self.sim = sim
        self.lan = lan

    def session(self, client: NetworkInterface, server: NetworkInterface) -> HttpSession:
        """Open a logical persistent-connection session."""
        return HttpSession(client=client, server=server)

    def exchange(
        self,
        session: HttpSession,
        response_mb: float,
        server_time_s: float = 0.0,
        rate_cap_mbps: Optional[float] = None,
        label: str = "http",
    ) -> Generator[Event, object, HttpTransferStats]:
        """One request/response on ``session`` (a simulated-process step).

        Yields simulation events; returns :class:`HttpTransferStats`.
        ``server_time_s`` is the simulated server-side processing charged
        between receiving the request and starting the response.
        ``rate_cap_mbps`` caps the response flow (traffic-shaper hook).
        """
        if response_mb < 0:
            raise ValueError(f"negative response size: {response_mb}")
        if server_time_s < 0:
            raise ValueError(f"negative server time: {server_time_s}")
        started = self.sim.now
        setup = 0.0
        if not session.connected:
            setup = HANDSHAKE_RTTS * 2 * self.lan.latency_s
            if setup > 0:
                yield self.sim.timeout(setup)
            session.connected = True
        # Request message client -> server.
        request_flow = self.lan.transfer(
            session.client, session.server, REQUEST_SIZE_MB, label=f"{label}:req"
        )
        yield request_flow.done
        # Server-side processing.
        if server_time_s > 0:
            yield self.sim.timeout(server_time_s)
        # Response body server -> client, inflated for protocol overhead.
        # An empty body puts nothing on the wire (the LAN model rejects
        # zero-size flows); the header-only response is modelled as one
        # propagation latency.
        wire_mb = response_mb / TCP_EFFICIENCY
        if wire_mb > 0:
            response_flow = self.lan.transfer(
                session.server,
                session.client,
                wire_mb,
                rate_cap_mbps=rate_cap_mbps,
                label=f"{label}:resp",
            )
            yield response_flow.done
        else:
            yield self.sim.timeout(self.lan.latency_s)
        session.requests_served += 1
        return HttpTransferStats(
            started_at=started,
            finished_at=self.sim.now,
            payload_mb=response_mb,
            connection_setup_s=setup,
            server_time_s=server_time_s,
        )

    def download(
        self,
        client: NetworkInterface,
        server: NetworkInterface,
        size_mb: float,
        server_time_s: float = 0.0,
        rate_cap_mbps: Optional[float] = None,
        label: str = "download",
    ) -> Generator[Event, object, HttpTransferStats]:
        """One-shot GET on a fresh connection (image download path)."""
        session = self.session(client, server)
        stats = yield from self.exchange(
            session,
            response_mb=size_mb,
            server_time_s=server_time_s,
            rate_cap_mbps=rate_cap_mbps,
            label=label,
        )
        return stats
