"""Flow-level LAN model with max-min fair bandwidth sharing.

The paper's testbed is a 100 Mbps departmental LAN (§4).  We model it as
a fluid system: each active :class:`Flow` drains at a rate determined by
progressive-filling max-min fairness subject to

* the shared LAN segment capacity,
* the source and destination NIC capacities, and
* an optional per-flow rate cap (this is the hook the host-OS traffic
  shaper of §4.2 uses to enforce per-node outbound bandwidth shares).

Rates are recomputed whenever the flow set changes, and the kernel wakes
the LAN exactly at the next flow-completion instant, so the model is
event-driven and exact for piecewise-constant rate allocations.
Transfers between two endpoints on the same NIC short-circuit through a
loopback path and consume no LAN bandwidth.

Incremental recomputation
-------------------------
Recomputing the allocation used to happen eagerly on *every* flow
arrival, departure, and cap change.  The allocator is now incremental
and batched:

* Mutations only mark the LAN dirty; one flush — scheduled at the same
  instant with URGENT priority via ``Simulator.call_soon`` — drains the
  fluid state and recomputes rates once for all mutations made before
  the flush fires.  Because the flush runs at URGENT priority, it sorts
  ahead of same-instant NORMAL-priority events: a mutation made by a
  *later* event at the same instant re-arms another flush.  Results are
  identical either way; the coalescing bounds the number of max-min
  passes per instant by the number of urgent batches, not by the number
  of flow mutations.
* All rate assignment happens inside the flush, never at mutation time:
  the flush first drains every flow at its *old* rate up to now, then
  assigns new rates.  (A new flow therefore carries rate 0 until the
  flush — assigning eagerly would let the drain charge the new rate
  over time before the flow existed.)
* Per-NIC active-flow sets are maintained on arrival/departure, so the
  progressive-filling pass seeds its residual/share-count tables directly
  instead of rebuilding them from scratch.
* Bottleneck groups are recomputed selectively: loopback flows form
  singleton groups whose rate is ``min(cap, loopback)`` independent of
  every other flow, and the wire group (all flows sharing the LAN
  segment) is only re-filled when a *wire* flow arrives, departs, or
  changes cap — loopback churn never triggers a max-min pass.

Fault hooks
-----------
The fault-injection layer (``repro.faults``) drives three degradation
knobs, all of which go through the same dirty-flag/flush discipline so
faulted runs stay deterministic:

* ``stall_nic`` / ``unstall_nic`` — a stalled NIC carries no wire
  traffic (rate 0 on every flow touching it); this models a dead
  switch-to-host link.  Loopback traffic is unaffected: a co-located
  switch and node keep talking even when the host's cable is pulled.
* ``partition`` / ``heal_partition`` — flows crossing the partition
  boundary are frozen at rate 0 until the partition heals.
* ``set_bandwidth`` — changes the shared segment capacity mid-run
  (LAN degradation), e.g. to model congestion from a bulk transfer.

Blocked flows are not cancelled — they resume draining when the fault
is lifted, exactly like a real TCP stream surviving a brief outage.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

import numpy as np

from repro.sim.kernel import Event, Simulator

__all__ = ["NetworkInterface", "Flow", "LAN"]

# Wire-group size at which the allocator switches from the scalar
# progressive-filling loop to the vectorized one.  Small groups are
# faster in pure Python (no array set-up cost); the crossover sits
# around a couple dozen concurrent wire flows.
VECTORIZE_MIN_FLOWS = 24

# Rate granted to co-located (same-NIC) transfers, in MB/s.  Generous but
# finite so loopback transfers still take simulated time.
LOOPBACK_RATE_MBPS = 4000.0
_LOOPBACK_RATE_MBS = LOOPBACK_RATE_MBPS / 8.0

_EPS = 1e-9


class NetworkInterface:
    """A host NIC attached to the LAN."""

    __slots__ = ("name", "rate_mbps", "rate_mbs")

    def __init__(self, name: str, rate_mbps: float):
        if rate_mbps <= 0:
            raise ValueError(f"NIC rate must be positive, got {rate_mbps}")
        self.name = name
        self.rate_mbps = rate_mbps
        # Capacity in megabytes per second (cached: read in the
        # allocator's inner loop).
        self.rate_mbs = rate_mbps / 8.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NetworkInterface({self.name!r}, {self.rate_mbps} Mbps)"


class Flow:
    """One in-flight transfer.

    ``done`` fires (with the flow itself as value) when the last byte has
    arrived at the destination, i.e. after the data has drained plus one
    propagation latency.
    """

    __slots__ = (
        "lan", "src", "dst", "size_mb", "remaining_mb", "rate_cap_mbps",
        "label", "rate_mbs", "started_at", "finished_at", "done",
        "_cap_mbs", "_loopback", "_fixed", "_limit",
    )

    def __init__(
        self,
        lan: "LAN",
        src: NetworkInterface,
        dst: NetworkInterface,
        size_mb: float,
        rate_cap_mbps: Optional[float],
        label: str,
    ):
        self.lan = lan
        self.src = src
        self.dst = dst
        self.size_mb = size_mb
        self.remaining_mb = size_mb
        self.rate_cap_mbps = rate_cap_mbps
        self.label = label
        self.rate_mbs = 0.0  # current allocated rate, MB/s
        self.started_at = lan.sim.now
        self.finished_at: Optional[float] = None
        self.done: Event = Event(lan.sim)
        self._cap_mbs = math.inf if rate_cap_mbps is None else rate_cap_mbps / 8.0
        self._loopback = src is dst
        self._fixed = False  # allocator scratch state
        self._limit = 0.0

    @property
    def is_loopback(self) -> bool:
        return self._loopback

    @property
    def cap_mbs(self) -> float:
        return self._cap_mbs

    def set_rate_cap(self, rate_cap_mbps: Optional[float]) -> None:
        """Change the cap mid-flight (used by dynamic traffic shaping)."""
        if rate_cap_mbps is not None and rate_cap_mbps <= 0:
            raise ValueError(f"rate cap must be positive, got {rate_cap_mbps}")
        self.rate_cap_mbps = rate_cap_mbps
        self._cap_mbs = math.inf if rate_cap_mbps is None else rate_cap_mbps / 8.0
        self.lan._mark_dirty(wire=not self._loopback, loopback=self._loopback)

    @property
    def elapsed(self) -> float:
        end = self.finished_at if self.finished_at is not None else self.lan.sim.now
        return end - self.started_at

    def mean_rate_mbps(self) -> float:
        """Achieved average rate over the flow's lifetime, in Mbps."""
        if self.elapsed <= 0:
            return 0.0
        return (self.size_mb - self.remaining_mb) * 8.0 / self.elapsed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Flow({self.label!r}, {self.src.name}->{self.dst.name}, "
            f"{self.remaining_mb:.3f}/{self.size_mb:.3f} MB)"
        )


class LAN:
    """The shared network segment connecting all HUP hosts and clients."""

    def __init__(self, sim: Simulator, bandwidth_mbps: float = 100.0, latency_s: float = 0.0002):
        if bandwidth_mbps <= 0:
            raise ValueError(f"LAN bandwidth must be positive, got {bandwidth_mbps}")
        if latency_s < 0:
            raise ValueError(f"latency must be non-negative, got {latency_s}")
        self.sim = sim
        self.bandwidth_mbps = bandwidth_mbps
        self.latency_s = latency_s
        self._nics: Dict[str, NetworkInterface] = {}
        self._flows: List[Flow] = []  # all active flows, arrival order
        self._wire: List[Flow] = []  # non-loopback active flows, arrival order
        # Per-NIC active (non-loopback) flow sets, maintained on
        # arrival/departure so the allocator can seed its residual and
        # share-count tables without scanning every flow.
        self._nic_flows: Dict[NetworkInterface, Set[Flow]] = {}
        self._last_update = sim.now
        self._wake_generation = 0
        self._flush_pending = False
        self._wire_dirty = False
        self._loopback_dirty = False
        # Fault state: stalled NICs carry no wire traffic; a partition
        # freezes flows that cross its boundary.  Both empty in the
        # common case so the allocator fast path stays fault-free.
        self._stalled: Set[NetworkInterface] = set()
        self._partition: Optional[FrozenSet[NetworkInterface]] = None
        # Observability: counter children bound once per attached
        # registry so the hot flush path pays one identity check, not a
        # registry lookup-and-create per flush.
        self._obs_registry = None
        self._obs_flushes = None
        self._obs_transfers = None
        # Preallocated scratch for the vectorized allocator, grown on
        # demand and reused across flushes (see _compute_wire_rates_vec).
        self._vec_flows = 0
        self._vec_caps: Optional[np.ndarray] = None
        self._vec_src: Optional[np.ndarray] = None
        self._vec_dst: Optional[np.ndarray] = None
        self._vec_limit: Optional[np.ndarray] = None
        self._vec_active: Optional[np.ndarray] = None
        self._vec_nics = 0
        self._vec_nic_res: Optional[np.ndarray] = None
        self._vec_nic_count: Optional[np.ndarray] = None

    def _obs_bind(self, registry) -> None:
        self._obs_registry = registry
        self._obs_flushes = registry.counter(
            "soda_lan_flushes_total",
            "Batched LAN allocator flushes (rate recomputations).",
        ).labels()
        self._obs_transfers = registry.counter(
            "soda_lan_transfers_total",
            "Transfers started on the LAN, by path kind.",
            ("kind",),
        )

    # -- topology ---------------------------------------------------------
    def nic(self, name: str, rate_mbps: Optional[float] = None) -> NetworkInterface:
        """Get or create the NIC named ``name``.

        ``rate_mbps`` is required on first creation; on later lookups it
        must be omitted or match.
        """
        if name in self._nics:
            existing = self._nics[name]
            if rate_mbps is not None and rate_mbps != existing.rate_mbps:
                raise ValueError(
                    f"NIC {name!r} already attached at {existing.rate_mbps} Mbps"
                )
            return existing
        if rate_mbps is None:
            raise ValueError(f"unknown NIC {name!r} and no rate given")
        nic = NetworkInterface(name, rate_mbps)
        self._nics[name] = nic
        return nic

    @property
    def active_flows(self) -> List[Flow]:
        return list(self._flows)

    def find_nic(self, name: str) -> NetworkInterface:
        """Look up an already-attached NIC by name."""
        try:
            return self._nics[name]
        except KeyError:
            raise ValueError(f"unknown NIC {name!r}") from None

    # -- fault hooks --------------------------------------------------------
    def stall_nic(self, nic: NetworkInterface) -> None:
        """Freeze all wire traffic through ``nic`` (dead link).

        Idempotent.  Loopback flows on the NIC keep draining — the stall
        models the cable, not the host.
        """
        if nic not in self._stalled:
            self._stalled.add(nic)
            self._mark_dirty(wire=True)

    def unstall_nic(self, nic: NetworkInterface) -> None:
        """Lift a stall; frozen flows resume from where they stopped."""
        if nic in self._stalled:
            self._stalled.discard(nic)
            self._mark_dirty(wire=True)

    @property
    def stalled_nics(self) -> Set[NetworkInterface]:
        return set(self._stalled)

    def partition(self, group: Iterable[NetworkInterface]) -> None:
        """Split the segment: flows crossing ``group``'s boundary freeze.

        Only one partition can be active at a time (the model is a
        single shared segment, so one cut fully describes it).
        """
        if self._partition is not None:
            raise ValueError("a partition is already active; heal it first")
        members = frozenset(group)
        if not members:
            raise ValueError("partition group must be non-empty")
        self._partition = members
        self._mark_dirty(wire=True)

    def heal_partition(self) -> None:
        """Rejoin the segment; frozen cross-partition flows resume."""
        if self._partition is not None:
            self._partition = None
            self._mark_dirty(wire=True)

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    def set_bandwidth(self, bandwidth_mbps: float) -> None:
        """Change the shared segment capacity mid-run (LAN degradation)."""
        if bandwidth_mbps <= 0:
            raise ValueError(f"LAN bandwidth must be positive, got {bandwidth_mbps}")
        if bandwidth_mbps != self.bandwidth_mbps:
            self.bandwidth_mbps = bandwidth_mbps
            self._mark_dirty(wire=True)

    def _blocked(self, flow: Flow) -> bool:
        """True when a fault freezes ``flow`` (stalled NIC / partition cut)."""
        if flow.src in self._stalled or flow.dst in self._stalled:
            return True
        partition = self._partition
        if partition is not None and (flow.src in partition) != (flow.dst in partition):
            return True
        return False

    # -- transfers ----------------------------------------------------------
    def transfer(
        self,
        src: NetworkInterface,
        dst: NetworkInterface,
        size_mb: float,
        rate_cap_mbps: Optional[float] = None,
        label: str = "",
    ) -> Flow:
        """Start a transfer; ``flow.done`` fires on completion."""
        if size_mb <= 0:
            raise ValueError(f"transfer size must be positive, got {size_mb}")
        if rate_cap_mbps is not None and rate_cap_mbps <= 0:
            raise ValueError(f"rate cap must be positive, got {rate_cap_mbps}")
        flow = Flow(self, src, dst, size_mb, rate_cap_mbps, label)
        registry = getattr(self.sim, "metrics", None)
        if registry is not None:
            if registry is not self._obs_registry:
                self._obs_bind(registry)
            self._obs_transfers.inc(kind="loopback" if flow._loopback else "wire")
        self._flows.append(flow)
        if flow._loopback:
            # Singleton bottleneck group — but the rate is assigned in
            # the flush (after the drain settles ``_last_update``), not
            # here: a rate granted before the flush would be charged
            # over the whole interval since the last drain, pre-draining
            # the flow for time before it existed.
            self._mark_dirty(loopback=True)
        else:
            self._wire.append(flow)
            self._nic_flows.setdefault(src, set()).add(flow)
            self._nic_flows.setdefault(dst, set()).add(flow)
            self._mark_dirty(wire=True)
        return flow

    # -- fluid-model internals ----------------------------------------------
    def _mark_dirty(self, wire: bool = False, loopback: bool = False) -> None:
        """Note a flow-set/cap mutation; coalesce same-instant flushes."""
        if wire:
            self._wire_dirty = True
        if loopback:
            self._loopback_dirty = True
        if not self._flush_pending:
            self._flush_pending = True
            self.sim.call_soon(self._flush)

    def _flush(self) -> None:
        """Drain, recompute affected groups, and re-arm the wake-up."""
        self._flush_pending = False
        registry = getattr(self.sim, "metrics", None)
        if registry is not None:
            if registry is not self._obs_registry:
                self._obs_bind(registry)
            self._obs_flushes.inc()
        self._advance()
        if self._loopback_dirty:
            self._loopback_dirty = False
            for flow in self._flows:
                if flow._loopback:
                    flow.rate_mbs = min(flow._cap_mbs, _LOOPBACK_RATE_MBS)
        if self._wire_dirty:
            self._wire_dirty = False
            self._compute_wire_rates()
        self._arm_wake()

    def _advance(self) -> None:
        """Drain all flows at their current rates up to now."""
        now = self.sim.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._flows:
            return
        finished: Optional[List[Flow]] = None
        for flow in self._flows:
            remaining = flow.remaining_mb - flow.rate_mbs * dt
            if remaining <= _EPS:
                flow.remaining_mb = 0.0
                if finished is None:
                    finished = []
                finished.append(flow)
            else:
                flow.remaining_mb = remaining
        if finished:
            self._flows = [f for f in self._flows if f.remaining_mb > 0.0]
            wire_changed = False
            for flow in finished:
                if not flow._loopback:
                    wire_changed = True
                    self._discard_nic(flow.src, flow)
                    self._discard_nic(flow.dst, flow)
            if wire_changed:
                self._wire = [f for f in self._wire if f.remaining_mb > 0.0]
                self._wire_dirty = True
            for flow in finished:
                self._finish(flow)

    def _discard_nic(self, nic: NetworkInterface, flow: Flow) -> None:
        flows = self._nic_flows.get(nic)
        if flows is not None:
            flows.discard(flow)
            if not flows:
                del self._nic_flows[nic]

    def _finish(self, flow: Flow) -> None:
        """Deliver the last byte after one propagation latency."""
        flow.finished_at = self.sim.now + self.latency_s
        if self.latency_s == 0:
            flow.done.succeed(flow)
        else:
            delivery = self.sim.timeout(self.latency_s)
            delivery.callbacks.append(lambda _ev, f=flow: f.done.succeed(f))

    def _compute_wire_rates(self) -> None:
        """Progressive-filling max-min fairness over the wire group.

        Resources: the LAN segment (used by every non-loopback flow) and
        each NIC (as source or destination).  Per-flow caps are honoured.
        The per-NIC active-flow sets seed the residual/count tables, and
        the rounds iterate the wire list in arrival order, which keeps
        the allocation deterministic.
        """
        wire = self._wire
        if not wire:
            return
        if self._stalled or self._partition is not None:
            # Fault path: blocked flows freeze at rate 0 and drop out of
            # the max-min pass entirely (they hold no share of the
            # segment or of their NICs while frozen).  The residual and
            # count tables are rebuilt from the active subset — this is
            # a scan, but it only runs while a fault is armed.
            active: List[Flow] = []
            for flow in wire:
                if self._blocked(flow):
                    flow.rate_mbs = 0.0
                else:
                    active.append(flow)
            if not active:
                return
            wire = active
            residual = {}
            count = {}
            for flow in wire:
                for nic in (flow.src, flow.dst):
                    if nic in count:
                        count[nic] += 1
                    else:
                        count[nic] = 1
                        residual[nic] = nic.rate_mbs
        else:
            residual = {}
            count = {}
            for nic, flows in self._nic_flows.items():
                residual[nic] = nic.rate_mbs
                count[nic] = len(flows)
        if len(wire) >= VECTORIZE_MIN_FLOWS:
            # Large groups: same fill, vectorized (bit-identical rates).
            self._compute_wire_rates_vec(wire, residual, count)
            return
        lan_residual = self.bandwidth_mbps / 8.0
        lan_count = len(wire)
        for flow in wire:
            flow._fixed = False
        unfixed = len(wire)
        while unfixed:
            bottleneck = math.inf
            for flow in wire:
                if flow._fixed:
                    continue
                limit = flow._cap_mbs
                share = lan_residual / lan_count
                if share < limit:
                    limit = share
                share = residual[flow.src] / count[flow.src]
                if share < limit:
                    limit = share
                share = residual[flow.dst] / count[flow.dst]
                if share < limit:
                    limit = share
                flow._limit = limit
                if limit < bottleneck:
                    bottleneck = limit
            threshold = bottleneck + _EPS
            progressed = False
            for flow in wire:
                if flow._fixed:
                    continue
                limit = flow._limit
                if limit > threshold:
                    continue
                flow._fixed = True
                flow.rate_mbs = limit
                progressed = True
                unfixed -= 1
                lan_residual -= limit
                if lan_residual < 0.0:
                    lan_residual = 0.0
                lan_count -= 1
                src, dst = flow.src, flow.dst
                left = residual[src] - limit
                residual[src] = left if left > 0.0 else 0.0
                count[src] -= 1
                left = residual[dst] - limit
                residual[dst] = left if left > 0.0 else 0.0
                count[dst] -= 1
            assert progressed, "progressive filling must fix at least one flow"

    def _vec_scratch(self, n_flows: int, n_nics: int) -> None:
        """Size the reusable allocator buffers (amortised growth)."""
        if n_flows > self._vec_flows:
            size = max(n_flows, 2 * self._vec_flows)
            self._vec_flows = size
            self._vec_caps = np.empty(size)
            self._vec_src = np.empty(size, dtype=np.intp)
            self._vec_dst = np.empty(size, dtype=np.intp)
            self._vec_limit = np.empty(size)
            self._vec_active = np.empty(size, dtype=bool)
        if n_nics > self._vec_nics:
            size = max(n_nics, 2 * self._vec_nics)
            self._vec_nics = size
            self._vec_nic_res = np.empty(size)
            self._vec_nic_count = np.empty(size)

    def _compute_wire_rates_vec(
        self,
        wire: List[Flow],
        residual: Dict[NetworkInterface, float],
        count: Dict[NetworkInterface, int],
    ) -> None:
        """The progressive fill over preallocated numpy buffers.

        Bit-identical to the scalar pass by construction: each round's
        per-flow limits are the same IEEE-754 divisions and mins (per-NIC
        shares are computed once per round, but from the same operands
        the scalar loop divides per flow), the bottleneck is the same
        minimum, and the fixing pass subtracts residuals *sequentially in
        arrival order* with the same clamping — only the O(flows)-per-
        round limit computation is vectorized, which is where the scalar
        allocator spends its time on fleet-sized wire groups.
        """
        n = len(wire)
        nic_pos: Dict[NetworkInterface, int] = {}
        nics: List[NetworkInterface] = []
        for nic in residual:
            nic_pos[nic] = len(nics)
            nics.append(nic)
        self._vec_scratch(n, len(nics))
        caps = self._vec_caps[:n]
        src_idx = self._vec_src[:n]
        dst_idx = self._vec_dst[:n]
        limit = self._vec_limit[:n]
        active = self._vec_active[:n]
        m = len(nics)
        nic_res = self._vec_nic_res[:m]
        nic_count = self._vec_nic_count[:m]
        for i, flow in enumerate(wire):
            caps[i] = flow._cap_mbs
            src_idx[i] = nic_pos[flow.src]
            dst_idx[i] = nic_pos[flow.dst]
        for nic, p in nic_pos.items():
            nic_res[p] = residual[nic]
            nic_count[p] = count[nic]
        active[:] = True
        lan_residual = self.bandwidth_mbps / 8.0
        lan_count = n
        unfixed = n
        while unfixed:
            # Round limits: min(cap, segment share, src share, dst share)
            # for every still-unfixed flow, in one vector pass.  Fixed
            # positions may compute garbage (their NIC counts can be 0);
            # they are masked out below.
            with np.errstate(divide="ignore", invalid="ignore"):
                share = nic_res / nic_count
                np.minimum(caps, lan_residual / lan_count, out=limit)
                np.minimum(limit, share[src_idx], out=limit)
                np.minimum(limit, share[dst_idx], out=limit)
            bottleneck = limit[active].min()
            threshold = bottleneck + _EPS
            # Fixing pass: arrival order, sequential subtraction with
            # clamping — float-for-float the scalar allocator's updates.
            fixed_now = np.nonzero(active & (limit <= threshold))[0]
            for i in fixed_now:
                flow_limit = float(limit[i])
                wire[i].rate_mbs = flow_limit
                active[i] = False
                unfixed -= 1
                lan_residual -= flow_limit
                if lan_residual < 0.0:
                    lan_residual = 0.0
                lan_count -= 1
                for p in (src_idx[i], dst_idx[i]):
                    left = nic_res[p] - flow_limit
                    nic_res[p] = left if left > 0.0 else 0.0
                    nic_count[p] -= 1
            assert len(fixed_now), "progressive filling must fix at least one flow"

    def _arm_wake(self) -> None:
        """Arm a wake-up at the next flow-completion instant."""
        self._wake_generation += 1
        generation = self._wake_generation
        next_completion = math.inf
        for flow in self._flows:
            if flow.rate_mbs > 0:
                dt = flow.remaining_mb / flow.rate_mbs
                if dt < next_completion:
                    next_completion = dt
        if math.isinf(next_completion):
            return
        wake = self.sim.timeout(next_completion)
        wake.callbacks.append(lambda _ev: self._on_wake(generation))

    def _on_wake(self, generation: int) -> None:
        if generation != self._wake_generation:
            return  # superseded by a newer reschedule
        # Drain now (firing completions before anything else at this
        # instant), then let the batched flush recompute rates once all
        # same-instant reactions (e.g. follow-up transfers started by
        # `done` waiters) have been applied.
        self._advance()
        self._mark_dirty()
