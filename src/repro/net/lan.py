"""Flow-level LAN model with max-min fair bandwidth sharing.

The paper's testbed is a 100 Mbps departmental LAN (§4).  We model it as
a fluid system: each active :class:`Flow` drains at a rate determined by
progressive-filling max-min fairness subject to

* the shared LAN segment capacity,
* the source and destination NIC capacities, and
* an optional per-flow rate cap (this is the hook the host-OS traffic
  shaper of §4.2 uses to enforce per-node outbound bandwidth shares).

Rates are recomputed whenever the flow set changes, and the kernel wakes
the LAN exactly at the next flow-completion instant, so the model is
event-driven and exact for piecewise-constant rate allocations.
Transfers between two endpoints on the same NIC short-circuit through a
loopback path and consume no LAN bandwidth.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set

from repro.sim.kernel import Event, Simulator

__all__ = ["NetworkInterface", "Flow", "LAN"]

# Rate granted to co-located (same-NIC) transfers, in MB/s.  Generous but
# finite so loopback transfers still take simulated time.
LOOPBACK_RATE_MBPS = 4000.0

_EPS = 1e-9


class NetworkInterface:
    """A host NIC attached to the LAN."""

    def __init__(self, name: str, rate_mbps: float):
        if rate_mbps <= 0:
            raise ValueError(f"NIC rate must be positive, got {rate_mbps}")
        self.name = name
        self.rate_mbps = rate_mbps

    @property
    def rate_mbs(self) -> float:
        """Capacity in megabytes per second."""
        return self.rate_mbps / 8.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NetworkInterface({self.name!r}, {self.rate_mbps} Mbps)"


class Flow:
    """One in-flight transfer.

    ``done`` fires (with the flow itself as value) when the last byte has
    arrived at the destination, i.e. after the data has drained plus one
    propagation latency.
    """

    def __init__(
        self,
        lan: "LAN",
        src: NetworkInterface,
        dst: NetworkInterface,
        size_mb: float,
        rate_cap_mbps: Optional[float],
        label: str,
    ):
        self.lan = lan
        self.src = src
        self.dst = dst
        self.size_mb = size_mb
        self.remaining_mb = size_mb
        self.rate_cap_mbps = rate_cap_mbps
        self.label = label
        self.rate_mbs = 0.0  # current allocated rate, MB/s
        self.started_at = lan.sim.now
        self.finished_at: Optional[float] = None
        self.done: Event = Event(lan.sim)

    @property
    def is_loopback(self) -> bool:
        return self.src is self.dst

    @property
    def cap_mbs(self) -> float:
        if self.rate_cap_mbps is None:
            return math.inf
        return self.rate_cap_mbps / 8.0

    def set_rate_cap(self, rate_cap_mbps: Optional[float]) -> None:
        """Change the cap mid-flight (used by dynamic traffic shaping)."""
        if rate_cap_mbps is not None and rate_cap_mbps <= 0:
            raise ValueError(f"rate cap must be positive, got {rate_cap_mbps}")
        self.lan._advance()
        self.rate_cap_mbps = rate_cap_mbps
        self.lan._reschedule()

    @property
    def elapsed(self) -> float:
        end = self.finished_at if self.finished_at is not None else self.lan.sim.now
        return end - self.started_at

    def mean_rate_mbps(self) -> float:
        """Achieved average rate over the flow's lifetime, in Mbps."""
        if self.elapsed <= 0:
            return 0.0
        return (self.size_mb - self.remaining_mb) * 8.0 / self.elapsed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Flow({self.label!r}, {self.src.name}->{self.dst.name}, "
            f"{self.remaining_mb:.3f}/{self.size_mb:.3f} MB)"
        )


class LAN:
    """The shared network segment connecting all HUP hosts and clients."""

    def __init__(self, sim: Simulator, bandwidth_mbps: float = 100.0, latency_s: float = 0.0002):
        if bandwidth_mbps <= 0:
            raise ValueError(f"LAN bandwidth must be positive, got {bandwidth_mbps}")
        if latency_s < 0:
            raise ValueError(f"latency must be non-negative, got {latency_s}")
        self.sim = sim
        self.bandwidth_mbps = bandwidth_mbps
        self.latency_s = latency_s
        self._nics: Dict[str, NetworkInterface] = {}
        self._flows: List[Flow] = []
        self._last_update = sim.now
        self._wake_generation = 0

    # -- topology ---------------------------------------------------------
    def nic(self, name: str, rate_mbps: Optional[float] = None) -> NetworkInterface:
        """Get or create the NIC named ``name``.

        ``rate_mbps`` is required on first creation; on later lookups it
        must be omitted or match.
        """
        if name in self._nics:
            existing = self._nics[name]
            if rate_mbps is not None and rate_mbps != existing.rate_mbps:
                raise ValueError(
                    f"NIC {name!r} already attached at {existing.rate_mbps} Mbps"
                )
            return existing
        if rate_mbps is None:
            raise ValueError(f"unknown NIC {name!r} and no rate given")
        nic = NetworkInterface(name, rate_mbps)
        self._nics[name] = nic
        return nic

    @property
    def active_flows(self) -> List[Flow]:
        return list(self._flows)

    # -- transfers ----------------------------------------------------------
    def transfer(
        self,
        src: NetworkInterface,
        dst: NetworkInterface,
        size_mb: float,
        rate_cap_mbps: Optional[float] = None,
        label: str = "",
    ) -> Flow:
        """Start a transfer; ``flow.done`` fires on completion."""
        if size_mb < 0:
            raise ValueError(f"negative transfer size: {size_mb}")
        if rate_cap_mbps is not None and rate_cap_mbps <= 0:
            raise ValueError(f"rate cap must be positive, got {rate_cap_mbps}")
        flow = Flow(self, src, dst, size_mb, rate_cap_mbps, label)
        if size_mb == 0:
            self._finish(flow)
            return flow
        self._advance()
        self._flows.append(flow)
        self._reschedule()
        return flow

    # -- fluid-model internals ----------------------------------------------
    def _advance(self) -> None:
        """Drain all flows at their current rates up to now."""
        dt = self.sim.now - self._last_update
        self._last_update = self.sim.now
        if dt <= 0:
            return
        finished: List[Flow] = []
        for flow in self._flows:
            flow.remaining_mb = max(0.0, flow.remaining_mb - flow.rate_mbs * dt)
            if flow.remaining_mb <= _EPS:
                flow.remaining_mb = 0.0
                finished.append(flow)
        for flow in finished:
            self._flows.remove(flow)
            self._finish(flow)

    def _finish(self, flow: Flow) -> None:
        """Deliver the last byte after one propagation latency."""
        flow.finished_at = self.sim.now + self.latency_s
        if self.latency_s == 0:
            flow.done.succeed(flow)
        else:
            delivery = self.sim.timeout(self.latency_s)
            delivery.callbacks.append(lambda _ev, f=flow: f.done.succeed(f))

    def _compute_rates(self) -> None:
        """Progressive-filling max-min fair allocation.

        Resources: the LAN segment (used by every non-loopback flow) and
        each NIC (as source or destination).  Per-flow caps are honoured.
        """
        residual: Dict[object, float] = {"lan": self.bandwidth_mbps / 8.0}
        count: Dict[object, int] = {"lan": 0}
        flow_resources: Dict[Flow, List[object]] = {}
        for flow in self._flows:
            if flow.is_loopback:
                flow_resources[flow] = []
                continue
            resources: List[object] = ["lan", flow.src, flow.dst]
            flow_resources[flow] = resources
            for r in resources:
                if r not in residual:
                    assert isinstance(r, NetworkInterface)
                    residual[r] = r.rate_mbs
                    count[r] = 0
                count[r] += 1

        unfixed: Set[Flow] = set(self._flows)
        while unfixed:
            limits: Dict[Flow, float] = {}
            for flow in unfixed:
                limit = min(flow.cap_mbs, LOOPBACK_RATE_MBPS / 8.0) if flow.is_loopback else flow.cap_mbs
                for r in flow_resources[flow]:
                    if count[r] > 0:
                        limit = min(limit, residual[r] / count[r])
                limits[flow] = limit
            bottleneck = min(limits.values())
            newly_fixed = [f for f in unfixed if limits[f] <= bottleneck + _EPS]
            assert newly_fixed, "progressive filling must fix at least one flow"
            for flow in newly_fixed:
                flow.rate_mbs = limits[flow]
                for r in flow_resources[flow]:
                    residual[r] = max(0.0, residual[r] - flow.rate_mbs)
                    count[r] -= 1
                unfixed.discard(flow)

    def _reschedule(self) -> None:
        """Recompute rates and arm a wake-up at the next completion."""
        self._compute_rates()
        self._wake_generation += 1
        generation = self._wake_generation
        next_completion = math.inf
        for flow in self._flows:
            if flow.rate_mbs > 0:
                next_completion = min(next_completion, flow.remaining_mb / flow.rate_mbs)
        if math.isinf(next_completion):
            return
        wake = self.sim.timeout(next_completion)
        wake.callbacks.append(lambda _ev: self._on_wake(generation))

    def _on_wake(self, generation: int) -> None:
        if generation != self._wake_generation:
            return  # superseded by a newer reschedule
        self._advance()
        self._reschedule()
