"""IPv4 address pools for virtual service nodes.

Each SODA Daemon "maintains a pool of IP addresses to be assigned to the
virtual service nodes running in this HUP host. For different HUP hosts,
their pools of IP addresses must be disjoint" (paper §4.3).  The pools
here enforce both properties: allocation/release within a pool, and a
module-level disjointness check used when a HUP is assembled.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

__all__ = ["parse_ipv4", "format_ipv4", "IPPoolExhausted", "IPAddressPool"]


class IPPoolExhausted(RuntimeError):
    """Raised when a pool has no free addresses left."""


def parse_ipv4(address: str) -> int:
    """Parse dotted-quad IPv4 into an int; raises ValueError if malformed."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {address!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"malformed IPv4 address: {address!r}")
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {address!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Int back to dotted-quad."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 int out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class IPAddressPool:
    """A contiguous range of IPv4 addresses owned by one SODA Daemon.

    Addresses are handed out lowest-first and can be released back;
    released addresses are reused before fresh ones (lowest-first again),
    keeping allocation deterministic.

    >>> pool = IPAddressPool("128.10.9.125", size=4)
    >>> pool.allocate()
    '128.10.9.125'
    >>> pool.allocate()
    '128.10.9.126'
    """

    def __init__(self, first: str, size: int, owner: str = ""):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self._first = parse_ipv4(first)
        if self._first + size - 1 > 0xFFFFFFFF:
            raise ValueError("pool overflows IPv4 space")
        self.size = size
        self.owner = owner
        self._free: List[int] = list(range(self._first, self._first + size))
        self._allocated: Set[int] = set()

    @property
    def first(self) -> str:
        return format_ipv4(self._first)

    @property
    def last(self) -> str:
        return format_ipv4(self._first + self.size - 1)

    @property
    def n_free(self) -> int:
        return len(self._free)

    @property
    def n_allocated(self) -> int:
        return len(self._allocated)

    def allocate(self) -> str:
        """Hand out the lowest free address."""
        if not self._free:
            raise IPPoolExhausted(
                f"pool {self.first}-{self.last} (owner {self.owner!r}) exhausted"
            )
        value = min(self._free)
        self._free.remove(value)
        self._allocated.add(value)
        return format_ipv4(value)

    def release(self, address: str) -> None:
        """Return ``address`` to the pool."""
        value = parse_ipv4(address)
        if value not in self._allocated:
            raise ValueError(f"address {address} was not allocated from this pool")
        self._allocated.remove(value)
        self._free.append(value)

    def contains(self, address: str) -> bool:
        value = parse_ipv4(address)
        return self._first <= value < self._first + self.size

    def range(self) -> Tuple[int, int]:
        """(first, last) as ints — used by the disjointness check."""
        return self._first, self._first + self.size - 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IPAddressPool({self.first}-{self.last}, owner={self.owner!r}, "
            f"free={self.n_free}/{self.size})"
        )


def check_disjoint(pools: Iterable[IPAddressPool]) -> Optional[Tuple[str, str]]:
    """Return a pair of owner names whose pools overlap, or None.

    The SODA Master calls this when the HUP is assembled; overlapping
    daemon pools would let two virtual service nodes claim the same IP.
    """
    ranges = sorted((pool.range(), pool.owner) for pool in pools)
    for ((_, prev_last), prev_owner), ((cur_first, _), cur_owner) in zip(
        ranges, ranges[1:]
    ):
        if cur_first <= prev_last:
            return prev_owner, cur_owner
    return None
