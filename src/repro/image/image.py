"""Service images published by ASPs.

A :class:`ServiceImage` is everything the SODA Daemon downloads and
boots: a guest rootfs configuration, the set of system services the
application needs (the tailoring input), the application's RPM
packages, and the entry-point command.  ``components`` supports the
partitionable-service extension (paper §3.5 lists it as future work):
an image may declare multiple components, and the Master can map
different components to different virtual service nodes instead of full
replication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.guestos.rootfs import RootFilesystem
from repro.image.rpm import RpmPackage, total_size_mb

__all__ = ["ServiceComponent", "ServiceImage"]


@dataclass(frozen=True)
class ServiceComponent:
    """One component of a partitionable service."""

    name: str
    entrypoint: str
    required_services: Tuple[str, ...]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"component {self.name!r}: weight must be positive")


@dataclass(frozen=True)
class ServiceImage:
    """An ASP's published application service image."""

    name: str
    rootfs: RootFilesystem
    required_services: Tuple[str, ...]
    entrypoint: str
    app_packages: Tuple[RpmPackage, ...] = ()
    port: int = 8080
    app_kind: str = "generic"
    components: Tuple[ServiceComponent, ...] = ()

    def __post_init__(self) -> None:
        if not 1 <= self.port <= 65535:
            raise ValueError(f"image {self.name!r}: port {self.port} out of range")
        closure = self.rootfs.registry.dependency_closure(self.required_services)
        missing = closure - self.rootfs.services
        if missing:
            raise ValueError(
                f"image {self.name!r}: rootfs {self.rootfs.name!r} lacks "
                f"required services {sorted(missing)}"
            )
        for component in self.components:
            comp_closure = self.rootfs.registry.dependency_closure(
                component.required_services
            )
            if not comp_closure <= self.rootfs.services:
                raise ValueError(
                    f"image {self.name!r}: component {component.name!r} needs "
                    f"services missing from the rootfs"
                )

    @property
    def size_mb(self) -> float:
        """Download volume: rootfs plus application packages."""
        return self.rootfs.size_mb + total_size_mb(self.app_packages)

    @property
    def is_partitionable(self) -> bool:
        return len(self.components) > 0

    def tailored_rootfs(self) -> RootFilesystem:
        """The rootfs the Daemon boots after customization (§4.3)."""
        return self.rootfs.tailored_for(self.required_services)

    def component_rootfs(self, component_name: str) -> RootFilesystem:
        """Tailored rootfs for one component of a partitionable image."""
        for component in self.components:
            if component.name == component_name:
                return self.rootfs.tailored_for(component.required_services)
        raise KeyError(f"image {self.name!r} has no component {component_name!r}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServiceImage({self.name!r}, {self.size_mb:.1f} MB, kind={self.app_kind!r})"
