"""RPM-like application packaging.

"We assume that the ASP has properly packaged the service image
(including the executable and the data files) using RPM, so that it is
organized into a file system with one root" (paper §4.3).  The model
keeps what matters for SODA: package sizes (download volume), a
provides/requires capability graph (so priming can verify an image is
installable), and file lists (so the rootfs gains the app's files).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

__all__ = ["DependencyError", "RpmPackage", "resolve_dependencies"]


class DependencyError(RuntimeError):
    """Unsatisfiable package requirement."""


@dataclass(frozen=True)
class RpmPackage:
    """One package in a service image."""

    name: str
    version: str
    size_mb: float
    provides: Tuple[str, ...] = ()
    requires: Tuple[str, ...] = ()
    files: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.size_mb < 0:
            raise ValueError(f"package {self.name!r}: negative size")
        if not self.name:
            raise ValueError("package name cannot be empty")

    @property
    def nvr(self) -> str:
        """name-version label, e.g. ``ghttpd-1.4``."""
        return f"{self.name}-{self.version}"

    def all_provides(self) -> FrozenSet[str]:
        """Capabilities this package satisfies (its own name included)."""
        return frozenset((self.name,) + self.provides)


def resolve_dependencies(
    roots: Sequence[RpmPackage], universe: Iterable[RpmPackage]
) -> List[RpmPackage]:
    """Dependency-closed install set for ``roots`` drawn from ``universe``.

    Returns packages in a deterministic install order (dependencies
    before dependents, ties by name).  Raises :class:`DependencyError`
    when a requirement has no provider.  Cyclic requirements are
    tolerated (RPM installs cycles as a single transaction).
    """
    by_capability: Dict[str, RpmPackage] = {}
    for pkg in universe:
        for cap in pkg.all_provides():
            # First provider wins; deterministic given universe order.
            by_capability.setdefault(cap, pkg)
    for pkg in roots:
        for cap in pkg.all_provides():
            by_capability.setdefault(cap, pkg)

    selected: Dict[str, RpmPackage] = {}
    order: List[RpmPackage] = []
    visiting: Set[str] = set()

    def visit(pkg: RpmPackage) -> None:
        if pkg.name in selected:
            return
        if pkg.name in visiting:
            return  # cycle: will be installed in the same transaction
        visiting.add(pkg.name)
        for requirement in sorted(pkg.requires):
            provider = by_capability.get(requirement)
            if provider is None:
                raise DependencyError(
                    f"package {pkg.nvr}: requirement {requirement!r} has no provider"
                )
            visit(provider)
        visiting.discard(pkg.name)
        selected[pkg.name] = pkg
        order.append(pkg)

    for pkg in sorted(roots, key=lambda p: p.name):
        visit(pkg)
    return order


def total_size_mb(packages: Iterable[RpmPackage]) -> float:
    """Sum of package sizes (download volume)."""
    return sum(p.size_mb for p in packages)
