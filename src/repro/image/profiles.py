"""The four application-service images of the paper's Table 2.

| Service | Linux configuration                       | Image size |
| S_I     | rootfs_base_1.0                           | 29.3 MB    |
| S_II    | root_fs_tomrtbt_1.7.205                   | 15 MB      |
| S_III   | root_fs_lfs_4.0                           | 400 MB     |
| S_IV    | root_fs.rh-7.2-server.pristine.20021012   | 253 MB     |

"Each of S_I, S_II and S_III requires a tailored (and different) subset
of Linux system services, while S_IV requires a full-blown Linux
server" (§4.3).  S_I is the web content service and S_II the honeypot
used in the §5 experiments.

The base size of each rootfs is derived so the total image size matches
the paper exactly; the *service sets* are the modelling choice (they
determine boot time).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.guestos.rootfs import RootFilesystem
from repro.guestos.services import ServiceRegistry, default_registry
from repro.image.image import ServiceImage
from repro.image.rpm import RpmPackage

__all__ = [
    "make_s1_web_content",
    "make_s2_honeypot",
    "make_s3_lfs",
    "make_s4_full_server",
    "paper_profiles",
]

# Paper Table 2 image sizes (MB).
S1_SIZE_MB = 29.3
S2_SIZE_MB = 15.0
S3_SIZE_MB = 400.0
S4_SIZE_MB = 253.0

# Service sets per profile (tailored subsets; S_IV = everything).
S1_SERVICES = ("syslog", "network", "inetd", "sshd", "crond", "random", "keytable")
S2_SERVICES = ("syslog", "network", "inetd", "random", "keytable")
S3_SERVICES = ("syslog", "network")


def _rootfs(
    name: str,
    target_mb: float,
    services,
    app_mb: float,
    data_mb: float,
    registry: ServiceRegistry,
) -> RootFilesystem:
    """Build a rootfs whose image total hits ``target_mb`` exactly."""
    services_mb = registry.total_size(services)
    base_mb = target_mb - services_mb - app_mb - data_mb
    if base_mb <= 0:
        raise ValueError(
            f"profile {name!r}: services+app+data ({services_mb + app_mb + data_mb:.1f} MB) "
            f"exceed the target image size {target_mb} MB"
        )
    return RootFilesystem.build(
        name, base_mb=base_mb, services=services, data_mb=data_mb, registry=registry
    )


def make_s1_web_content(registry: Optional[ServiceRegistry] = None) -> ServiceImage:
    """S_I: the static web content service (rootfs_base_1.0)."""
    registry = registry or default_registry()
    httpd = RpmPackage(
        name="httpd_19_5",
        version="19.5",
        size_mb=1.0,
        provides=("webserver",),
        files=("/usr/sbin/httpd_19_5", "/etc/httpd.conf", "/var/www/"),
    )
    rootfs = _rootfs(
        "rootfs_base_1.0", S1_SIZE_MB, S1_SERVICES, app_mb=1.0, data_mb=0.0, registry=registry
    )
    return ServiceImage(
        name="web-content",
        rootfs=rootfs,
        required_services=S1_SERVICES,
        entrypoint="httpd_19_5",
        app_packages=(httpd,),
        port=8080,
        app_kind="web",
    )


def make_s2_honeypot(registry: Optional[ServiceRegistry] = None) -> ServiceImage:
    """S_II: the honeypot with the vulnerable ghttpd 'victim' server."""
    registry = registry or default_registry()
    ghttpd = RpmPackage(
        name="ghttpd",
        version="1.4",
        size_mb=0.3,
        provides=("webserver",),
        files=("/usr/sbin/ghttpd", "/etc/ghttpd.conf"),
    )
    rootfs = _rootfs(
        "root_fs_tomrtbt_1.7.205", S2_SIZE_MB, S2_SERVICES, app_mb=0.3, data_mb=0.0,
        registry=registry,
    )
    return ServiceImage(
        name="honeypot",
        rootfs=rootfs,
        required_services=S2_SERVICES,
        entrypoint="ghttpd-1.4",
        app_packages=(ghttpd,),
        port=80,
        app_kind="honeypot",
    )


def make_s3_lfs(registry: Optional[ServiceRegistry] = None) -> ServiceImage:
    """S_III: a big-data service on a Linux-From-Scratch rootfs.

    Few system services but a 400 MB filesystem (the LFS build tree) —
    the profile that exposes the RAM-disk / disk-mount asymmetry
    between *seattle* and *tacoma* in Table 2.
    """
    registry = registry or default_registry()
    matcher = RpmPackage(
        name="genome-matcher",
        version="0.9",
        size_mb=2.0,
        files=("/usr/bin/genome-matcher", "/var/genome/db/"),
    )
    rootfs = _rootfs(
        "root_fs_lfs_4.0", S3_SIZE_MB, S3_SERVICES, app_mb=2.0, data_mb=383.0,
        registry=registry,
    )
    return ServiceImage(
        name="genome-matching",
        rootfs=rootfs,
        required_services=S3_SERVICES,
        entrypoint="genome-matcher",
        app_packages=(matcher,),
        port=9000,
        app_kind="compute",
    )


def make_s4_full_server(registry: Optional[ServiceRegistry] = None) -> ServiceImage:
    """S_IV: a full-blown Red Hat 7.2 server image — no tailoring wins."""
    registry = registry or default_registry()
    portal = RpmPackage(
        name="intranet-portal",
        version="2.1",
        size_mb=2.0,
        requires=("webserver",),
        files=("/var/www/portal/",),
    )
    all_services = tuple(registry.names)
    rootfs = _rootfs(
        "root_fs.rh-7.2-server.pristine.20021012",
        S4_SIZE_MB,
        all_services,
        app_mb=2.0,
        data_mb=0.0,
        registry=registry,
    )
    return ServiceImage(
        name="full-server",
        rootfs=rootfs,
        required_services=all_services,
        entrypoint="portal",
        app_packages=(portal,),
        port=80,
        app_kind="web",
    )


def paper_profiles(registry: Optional[ServiceRegistry] = None) -> Dict[str, ServiceImage]:
    """All four Table 2 images, keyed S_I..S_IV."""
    registry = registry or default_registry()
    return {
        "S_I": make_s1_web_content(registry),
        "S_II": make_s2_honeypot(registry),
        "S_III": make_s3_lfs(registry),
        "S_IV": make_s4_full_server(registry),
    }
