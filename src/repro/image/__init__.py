"""Service image substrate.

An ASP prepares "the image of service S, including the executables and
data files, properly organized in a file system" (paper §3), packaged
with RPM (§4.3) and stored on a machine the ASP owns.  This package
models that pipeline:

* :mod:`repro.image.rpm` — RPM-like packages with provides/requires and
  dependency resolution.
* :mod:`repro.image.image` — the :class:`ServiceImage` an ASP publishes:
  rootfs configuration, required system services, application packages,
  entry point, and (for the partitionable-service extension)
  components.
* :mod:`repro.image.repository` — the ASP-side image repository the
  SODA Daemons download from over HTTP.
* :mod:`repro.image.profiles` — the four application-service images of
  the paper's Table 2 (S_I .. S_IV).
"""

from repro.image.image import ServiceComponent, ServiceImage
from repro.image.profiles import (
    make_s1_web_content,
    make_s2_honeypot,
    make_s3_lfs,
    make_s4_full_server,
    paper_profiles,
)
from repro.image.repository import ImageRepository, UnknownImage
from repro.image.rpm import DependencyError, RpmPackage, resolve_dependencies

__all__ = [
    "DependencyError",
    "ImageRepository",
    "RpmPackage",
    "ServiceComponent",
    "ServiceImage",
    "UnknownImage",
    "make_s1_web_content",
    "make_s2_honeypot",
    "make_s3_lfs",
    "make_s4_full_server",
    "paper_profiles",
    "resolve_dependencies",
]
