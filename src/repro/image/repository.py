"""ASP-side image repository.

"The image should be stored in a machine owned by the ASP" (paper §3);
the service creation request carries "the service image location"
(§3.1), and each selected SODA Daemon "will download the service image
using HTTP/1.1" (§4.3).  A repository is a named catalogue of images
attached to a NIC on the LAN; its URL scheme is
``http://<repo-host>/<image-name>.rpm``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator

from repro.image.image import ServiceImage
from repro.net.http import HttpModel, HttpTransferStats
from repro.net.lan import NetworkInterface
from repro.sim.kernel import Event

__all__ = ["UnknownImage", "ImageRepository"]

# Server-side time to locate and start streaming an RPM (per request).
REPO_LOOKUP_S = 0.010


class UnknownImage(KeyError):
    """Requested image is not in the repository."""


@dataclass(frozen=True)
class ImageLocation:
    """A downloadable image URL."""

    repo_host: str
    image_name: str

    @property
    def url(self) -> str:
        return f"http://{self.repo_host}/{self.image_name}.rpm"


class ImageRepository:
    """Catalogue of published images on one ASP machine."""

    def __init__(self, host_name: str, nic: NetworkInterface):
        self.host_name = host_name
        self.nic = nic
        self._images: Dict[str, ServiceImage] = {}
        self.downloads_served = 0

    def publish(self, image: ServiceImage) -> ImageLocation:
        """Make ``image`` downloadable; returns its location/URL."""
        if image.name in self._images:
            raise ValueError(f"image {image.name!r} already published")
        self._images[image.name] = image
        return ImageLocation(repo_host=self.host_name, image_name=image.name)

    def unpublish(self, image_name: str) -> None:
        if image_name not in self._images:
            raise UnknownImage(image_name)
        del self._images[image_name]

    def get(self, image_name: str) -> ServiceImage:
        try:
            return self._images[image_name]
        except KeyError:
            raise UnknownImage(image_name) from None

    def location(self, image_name: str) -> ImageLocation:
        self.get(image_name)
        return ImageLocation(repo_host=self.host_name, image_name=image_name)

    def __contains__(self, image_name: str) -> bool:
        return image_name in self._images

    def __len__(self) -> int:
        return len(self._images)

    def download(
        self, http: HttpModel, client: NetworkInterface, image_name: str
    ) -> Generator[Event, object, HttpTransferStats]:
        """Serve one image download to ``client`` (simulated-process step)."""
        image = self.get(image_name)
        stats = yield from http.download(
            client,
            self.nic,
            size_mb=image.size_mb,
            server_time_s=REPO_LOOKUP_S,
            label=f"image:{image_name}",
        )
        self.downloads_served += 1
        return stats
