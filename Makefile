# Convenience targets for the SODA reproduction.

.PHONY: install test lint bench bench-compare bench-pytest experiments report examples obs-demo all

install:
	pip install -e . || python setup.py develop

test:
	PYTHONPATH=src python -m pytest -x -q

lint:
	ruff check src/ tests/ examples/

bench:
	PYTHONPATH=src python -m repro.bench

bench-compare:
	PYTHONPATH=src python -m repro.bench --dry-run --compare

bench-pytest:
	pytest benchmarks/ --benchmark-only

experiments:
	soda-experiments all

report:
	soda-experiments report --out EXPERIMENTS.md

examples:
	python examples/quickstart.py
	python examples/genome_service.py
	python examples/honeypot_isolation.py
	python examples/custom_switch_policy.py
	python examples/capacity_planning.py
	python examples/diurnal_autoscaler.py
	python examples/sla_tiers.py
	python examples/observability.py

obs-demo:
	PYTHONPATH=src python examples/observability.py obs-demo

all: test bench
