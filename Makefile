# Convenience targets for the SODA reproduction.

.PHONY: install test lint chaos coverage bench bench-compare bench-pytest experiments report examples obs-demo market-demo scenarios all

install:
	pip install -e . || python setup.py develop

test:
	PYTHONPATH=src python -m pytest -x -q

lint:
	ruff check src/ tests/ examples/

# Chaos soak: the seeded fault campaign over the open-loop web workload,
# run for each of the three pinned seeds (0, 7, 123).
chaos:
	PYTHONPATH=src python -m pytest tests/faults/test_chaos_soak.py -q

# Needs pytest-cov (pip install pytest-cov); the floor matches CI's.
coverage:
	PYTHONPATH=src python -m pytest -q --cov=repro --cov-report=term --cov-fail-under=80

bench:
	PYTHONPATH=src python -m repro.bench

bench-compare:
	PYTHONPATH=src python -m repro.bench --dry-run --compare

bench-pytest:
	pytest benchmarks/ --benchmark-only

experiments:
	soda-experiments all

report:
	soda-experiments report --out EXPERIMENTS.md

examples:
	python examples/quickstart.py
	python examples/genome_service.py
	python examples/honeypot_isolation.py
	python examples/custom_switch_policy.py
	python examples/capacity_planning.py
	python examples/diurnal_autoscaler.py
	python examples/sla_tiers.py
	python examples/observability.py
	python examples/market_economics.py

obs-demo:
	PYTHONPATH=src python examples/observability.py obs-demo

# The scenario library: list the catalogue, then run the fast matrix
# (scenario x policy x seed) serially and with 2 workers — byte-identical.
scenarios:
	PYTHONPATH=src python -m repro.scenario.cli list
	PYTHONPATH=src python -m repro.experiments.scenario_matrix --fast --parallel 2

# Spot pricing, bid-aware admission, and the market-vs-FCFS ablation.
market-demo:
	PYTHONPATH=src python examples/market_economics.py
	PYTHONPATH=src python -m repro.experiments.runner run ablation-market --fast

all: test bench
