# Convenience targets for the SODA reproduction.

.PHONY: install test bench experiments report examples all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	soda-experiments all

report:
	soda-experiments report --out EXPERIMENTS.md

examples:
	python examples/quickstart.py
	python examples/genome_service.py
	python examples/honeypot_isolation.py
	python examples/custom_switch_policy.py
	python examples/capacity_planning.py
	python examples/diurnal_autoscaler.py

all: test bench
