"""Tests for the kernel profiler and the kernel's profiled loops."""

from repro.obs.profiler import KernelProfiler, profiler_of
from repro.sim.kernel import Simulator


def test_record_aggregates_and_collapses_instance_digits():
    profiler = KernelProfiler()
    profiler.record("resume:siege-arrival-3", 0.25)
    profiler.record("resume:siege-arrival-17", 0.75)
    profiler.record("call_soon:LAN._flush", 0.5)
    assert profiler.events_total == 3
    assert profiler.wall_s_total == 1.5
    site = profiler.sites["resume:siege-arrival-N"]
    assert site.events == 2 and site.wall_s == 1.0
    assert "call_soon:LAN._flush" in profiler.sites


def test_collapse_can_be_disabled():
    profiler = KernelProfiler(collapse_instances=False)
    profiler.record("resume:worker-1", 0.1)
    profiler.record("resume:worker-2", 0.1)
    assert set(profiler.sites) == {"resume:worker-1", "resume:worker-2"}


def test_heap_high_water_and_clear():
    profiler = KernelProfiler()
    for depth in (3, 9, 5):
        profiler.note_heap_depth(depth)
    assert profiler.heap_high_water == 9
    profiler.record("x", 0.1)
    profiler.clear()
    assert profiler.events_total == 0
    assert profiler.heap_high_water == 0
    assert not profiler.sites


def test_top_sites_and_render():
    profiler = KernelProfiler()
    assert profiler.render() == "(no events profiled)"
    profiler.record("narrow", 0.1)
    profiler.record("wide", 0.9)
    assert [site for site, _ in profiler.top_sites()] == ["wide", "narrow"]
    assert [site for site, _ in profiler.top_sites(1)] == ["wide"]
    text = profiler.render(top=5)
    assert "kernel profile: 2 events" in text
    assert "wide" in text and "narrow" in text
    snap = profiler.snapshot()
    assert snap["events_total"] == 2
    assert snap["sites"]["wide"]["events"] == 1


def _workload(sim, log):
    def ticker(sim):
        for _ in range(3):
            yield sim.timeout(1.0)
            log.append(sim.now)

    def nested(sim):
        value = yield sim.process(ticker(sim), name="inner")
        log.append(("done", sim.now, value))

    sim.process(nested(sim), name="outer")


def test_profiled_run_matches_unprofiled_results():
    plain_log = []
    sim = Simulator()
    _workload(sim, plain_log)
    sim.run()

    profiled_log = []
    sim2 = Simulator()
    profiler = KernelProfiler().install(sim2)
    assert profiler_of(sim2) is profiler
    _workload(sim2, profiled_log)
    sim2.run()

    assert profiled_log == plain_log
    assert sim2.now == sim.now
    assert profiler.events_total > 0
    assert profiler.heap_high_water >= 1
    assert any(site.startswith("resume:") for site in profiler.sites)


def test_profiled_run_until_process():
    sim = Simulator()
    profiler = KernelProfiler()
    sim.set_profiler(profiler)

    def job(sim):
        yield sim.timeout(2.0)
        return 42

    process = sim.process(job(sim), name="job")
    assert sim.run_until_process(process) == 42
    assert sim.now == 2.0
    assert profiler.events_total > 0


def test_install_accumulates_across_run_resumptions():
    """Epoch-style runs resume one sim with run(until=...) many times;
    install() must keep accumulating unless reset is requested."""
    sim = Simulator()
    profiler = KernelProfiler().install(sim)

    def forever(sim):
        while True:
            yield sim.timeout(1.0)

    sim.process(forever(sim), name="loop")
    sim.run(until=3.0)
    after_first = profiler.events_total
    assert after_first > 0
    # A re-install between epochs (same sim or the next shard) keeps
    # the statistics; only reset=True clears them.
    profiler.install(sim)
    sim.run(until=6.0)
    assert profiler.events_total > after_first
    profiler.install(sim, reset=True)
    assert profiler.events_total == 0
    sim.run(until=9.0)
    assert 0 < profiler.events_total <= after_first


def test_reset_keeps_clear_alias():
    profiler = KernelProfiler()
    profiler.record("x", 0.1)
    profiler.clear()  # backwards-compatible alias for reset()
    assert profiler.events_total == 0
    profiler.record("y", 0.2)
    profiler.reset()
    assert profiler.events_total == 0 and not profiler.sites


def test_profiled_run_with_until_clamp():
    sim = Simulator()
    sim.set_profiler(KernelProfiler())

    def forever(sim):
        while True:
            yield sim.timeout(1.0)

    sim.process(forever(sim), name="loop")
    sim.run(until=5.5)
    assert sim.now == 5.5
