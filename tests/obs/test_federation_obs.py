"""Federation-wide observability: propagation, merge rules, profiler.

Pins the PR's three contracts end-to-end on a real 4-cluster federated
run plus unit coverage of the merge/attribution machinery:

* **observe, never perturb** — federated digests bit-identical with the
  full stack on vs off, at every worker count;
* **layout-blind reassembly** — the merged span payload is byte-identical
  whatever the process layout, and every ``geo_request`` trace tiles
  end-to-end to 1e-9 out of wan_transfer / pending_wait / remote_service
  segments whose WAN legs match latency + transfer exactly;
* **critical-path attribution** — the epoch profiler's books balance
  (busy + stall = n_workers * critical path) and round-trip through the
  ``soda-fedprofile/1`` document and the multi-lane Chrome export.
"""

import json
import pickle

import pytest

from repro.obs.federation import (
    FEDPROFILE_FORMAT,
    FederatedMetrics,
    FederationObservability,
    FederationProfiler,
    TraceContext,
    merge_shard_spans,
    trace_completeness,
)
from repro.obs.metrics import MetricsRegistry
from repro.sim.parallel import run_federation
from tests.sim.test_parallel import build_topology

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def fed_runs():
    """One obs-off and one obs-on run per worker count (module-shared)."""
    topology = build_topology()
    runs = {}
    for n_workers in WORKER_COUNTS:
        plain = run_federation(topology, duration_s=1.5, seed=11, n_workers=n_workers)
        observed = run_federation(
            topology, duration_s=1.5, seed=11, n_workers=n_workers,
            obs=FederationObservability(),
        )
        runs[n_workers] = (plain, observed)
    return runs


# -- observe, never perturb --------------------------------------------------


def test_obs_digest_parity_at_every_worker_count(fed_runs):
    for n_workers, (plain, observed) in fed_runs.items():
        assert observed.digest_sha == plain.digest_sha, f"{n_workers} workers"
        assert observed.digests == plain.digests
        assert plain.observability is None
        assert observed.observability is not None


def test_obs_off_spec_is_equivalent_to_none():
    topology = build_topology()
    disabled = FederationObservability(tracing=False, metrics=False, profile=False)
    assert not disabled.enabled
    run = run_federation(topology, duration_s=0.5, seed=0, obs=disabled)
    assert run.observability is None


# -- layout-blind trace reassembly -------------------------------------------


def test_merged_spans_byte_identical_across_worker_counts(fed_runs):
    payloads = {
        n: json.dumps(observed.observability.spans, sort_keys=True)
        for n, (_, observed) in fed_runs.items()
    }
    reference = payloads[1]
    assert all(payload == reference for payload in payloads.values())


def test_span_conservation(fed_runs):
    fed = fed_runs[1][1].observability
    stats = fed.trace_stats()
    assert stats["spans"] > 0 and stats["traces"] > 0
    assert stats["orphan_parents"] == 0
    assert stats["open_spans"] == 0
    assert fed.spans_dropped == 0


def test_geo_traces_tile_to_wan_segments(fed_runs):
    """Every geo_request root is exactly tiled by its children, and every
    wan_transfer's duration is its recorded latency + transfer time."""
    fed = fed_runs[1][1].observability
    by_trace = {}
    for span in fed.spans:
        by_trace.setdefault(span["trace"], []).append(span)
    geo_traces = [
        spans for spans in by_trace.values()
        if any(s["name"] == "geo_request" for s in spans)
    ]
    assert geo_traces, "no geo_request traces in the run"
    for spans in geo_traces:
        root = next(s for s in spans if s["parent"] is None)
        assert root["name"] == "geo_request"
        children = sorted(
            (s for s in spans if s["parent"] is not None),
            key=lambda s: s["start"],
        )
        assert children, "remote geo_request with no segments"
        # Contiguous tiling: child k ends where child k+1 starts, and the
        # chain covers [root.start, root.end].
        assert children[0]["start"] == pytest.approx(root["start"], abs=1e-9)
        for before, after in zip(children, children[1:]):
            assert after["start"] == pytest.approx(before["end"], abs=1e-9)
        assert children[-1]["end"] == pytest.approx(root["end"], abs=1e-9)
        for segment in children:
            if segment["name"] == "wan_transfer":
                modeled = (
                    segment["attrs"]["latency_s"] + segment["attrs"]["transfer_s"]
                )
                assert segment["end"] - segment["start"] == pytest.approx(
                    modeled, abs=1e-12
                )


def test_trace_context_is_picklable_and_frozen():
    ctx = TraceContext("east:00000001", "east:00000002", "east")
    assert pickle.loads(pickle.dumps(ctx)) == ctx
    with pytest.raises(AttributeError):
        ctx.origin = "west"


def test_merge_shard_spans_orders_by_trace_then_span():
    merged = merge_shard_spans({
        "b": [{"trace": "b:00000001", "span": "b:00000002", "parent": None}],
        "a": [
            {"trace": "a:00000010", "span": "a:00000011", "parent": None},
            {"trace": "a:00000001", "span": "a:00000003", "parent": "a:09"},
            {"trace": "a:00000001", "span": "a:00000002", "parent": None},
        ],
    })
    assert [(s["trace"], s["span"]) for s in merged] == [
        ("a:00000001", "a:00000002"),
        ("a:00000001", "a:00000003"),
        ("a:00000010", "a:00000011"),
        ("b:00000001", "b:00000002"),
    ]
    stats = trace_completeness(merged)
    assert stats == {
        "spans": 4, "traces": 3, "orphan_parents": 1, "open_spans": 4,
    }


# -- metrics federation -------------------------------------------------------


def _dump(registry):
    return registry.dump()


def test_federated_metrics_merge_rules():
    east, west = MetricsRegistry(), MetricsRegistry()
    for registry, n in ((east, 3), (west, 5)):
        counter = registry.counter("reqs_total", "Requests.", ("kind",))
        counter.inc(n, kind="geo")
        registry.gauge("queue_depth", "Depth.").set(float(n))
        histogram = registry.histogram(
            "latency_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(float(n))

    fed = FederatedMetrics()
    fed.update("east", _dump(east))
    fed.update("west", _dump(west))
    fed.note_epoch(7, 42)
    fed.note_barrier_wait({"0": 0.25})
    assert fed.shards == ["east", "west"]

    merged = MetricsRegistry()
    fed.merge_into(merged)
    text = merged.render()
    # Counters keep their per-shard children under the shard label.
    assert 'reqs_total{shard="east",kind="geo"} 3' in text
    assert 'reqs_total{shard="west",kind="geo"} 5' in text
    assert 'queue_depth{shard="east"} 3' in text
    assert 'queue_depth{shard="west"} 5' in text
    # Histogram buckets add element-wise within each shard child.
    assert 'latency_seconds_bucket{shard="west",le="0.1"} 1' in text
    assert 'latency_seconds_bucket{shard="west",le="+Inf"} 2' in text
    assert 'latency_seconds_count{shard="west"} 2' in text
    assert "soda_federation_epoch 7" in text
    assert "soda_federation_messages_exchanged 42" in text
    assert 'soda_federation_barrier_wait_seconds{worker="0"} 0.25' in text
    # render() is the same exposition from a throwaway registry.
    assert fed.render() == text


def test_federated_metrics_counter_sum_rule():
    # Two snapshots from the *same* merge target: counters inc (sum),
    # gauges last-write — merging twice doubles counters, not gauges.
    registry = MetricsRegistry()
    registry.counter("c_total", "C.").inc(2)
    registry.gauge("g", "G.").set(9.0)
    fed = FederatedMetrics()
    fed.update("east", _dump(registry))
    merged = MetricsRegistry()
    fed.merge_into(merged)
    fed.merge_into(merged)
    text = merged.render()
    assert 'c_total{shard="east"} 4' in text
    assert 'g{shard="east"} 9' in text


def test_run_metrics_include_shard_and_federation_families(fed_runs):
    fed = fed_runs[2][1].observability
    text = fed.metrics.render()
    assert 'soda_shard_messages_total{shard="east",direction="sent"' in text
    assert 'soda_geo_requests_total{shard="west",scope="remote"}' in text
    assert "soda_federation_epoch" in text
    assert "soda_federation_messages_exchanged" in text
    assert 'soda_federation_barrier_wait_seconds{worker="0"}' in text
    # The broker (east) recorded its placement decisions.
    assert 'soda_broker_placements_total{shard="east"' in text


# -- the epoch critical-path profiler -----------------------------------------


def _profiler():
    profiler = FederationProfiler(0.05, {"east": 0, "north": 0, "west": 1})
    profiler.record_epoch({"east": 0.2, "north": 0.1, "west": 0.1})
    profiler.record_epoch({"east": 0.1, "north": 0.1, "west": 0.5})
    return profiler


def test_profiler_attribution_books_balance():
    profiler = _profiler()
    # Epoch 1: worker0 = 0.3, worker1 = 0.1 -> slowest 0.3.
    # Epoch 2: worker0 = 0.2, worker1 = 0.5 -> slowest 0.5.
    assert profiler.critical_path_s == pytest.approx(0.8)
    assert profiler.total_busy_s == pytest.approx(1.1)
    assert profiler.worker_totals() == pytest.approx([0.5, 0.6])
    assert profiler.barrier_wait_by_worker() == pytest.approx([0.3, 0.2])
    assert profiler.achievable_speedup == pytest.approx(1.1 / 0.8)
    # busy + stall tiles the dedicated-core wall on every worker.
    assert (
        profiler.total_busy_s + profiler.barrier_wait_s
        == pytest.approx(profiler.n_workers * profiler.critical_path_s)
    )
    assert profiler.shard_totals() == {
        "east": pytest.approx(0.3),
        "north": pytest.approx(0.2),
        "west": pytest.approx(0.6),
    }


def test_profiler_render_and_payload_round_trip():
    profiler = _profiler()
    text = profiler.render()
    assert "3 shards on 2 workers, 2 epochs" in text
    assert "slowest shard: west" in text
    payload = profiler.to_payload()
    assert payload["format"] == FEDPROFILE_FORMAT
    clone = FederationProfiler.from_payload(json.loads(json.dumps(payload)))
    assert clone.render() == text
    with pytest.raises(ValueError, match="soda-fedprofile"):
        FederationProfiler.from_payload({"format": "bogus"})


def test_profiler_validation():
    with pytest.raises(ValueError, match="positive"):
        FederationProfiler(0.0, {"east": 0})
    with pytest.raises(ValueError, match="at least one shard"):
        FederationProfiler(0.05, {})
    profiler = _profiler()
    with pytest.raises(ValueError, match="unknown shards"):
        profiler.record_epoch({"mars": 1.0})
    assert FederationProfiler(0.05, {"east": 0}).render() == "(no epochs profiled)"


def test_profiler_chrome_trace_lanes_and_barriers():
    trace = _profiler().chrome_trace()
    events = trace["traceEvents"]
    names = {
        e["args"]["name"] for e in events if e["ph"] == "M" and e["tid"] > 0
    }
    assert names == {"shard:east [w0]", "shard:north [w0]", "shard:west [w1]"}
    compute = [e for e in events if e["ph"] == "X"]
    assert len(compute) == 6  # 3 shards x 2 epochs
    barriers = [e for e in events if e["ph"] == "i"]
    assert [e["ts"] for e in barriers] == [pytest.approx(0.3e6), pytest.approx(0.8e6)]
    # Shards sharing worker 0 stack sequentially inside each epoch.
    east, north = (
        next(e for e in compute if e["tid"] == tid and e["args"]["epoch"] == 1)
        for tid in (1, 2)
    )
    assert north["ts"] == pytest.approx(east["ts"] + east["dur"])


def test_run_profiler_epochs_match_run(fed_runs):
    for n_workers, (plain, observed) in fed_runs.items():
        profiler = observed.observability.profiler
        assert profiler.n_epochs == plain.epochs
        assert profiler.n_workers == observed.n_workers
        if n_workers == 1:
            # Serial layout: every shard on worker 0, zero stall by
            # construction.
            assert profiler.barrier_wait_s == 0.0
        kernel = observed.observability.kernel_profiles
        assert set(kernel) == {"east", "north", "south", "west"}
        assert all(p["events_total"] > 0 for p in kernel.values())


def test_span_capacity_is_honoured_and_counted():
    topology = build_topology()
    run = run_federation(
        topology, duration_s=1.5, seed=11,
        obs=FederationObservability(span_capacity=5, metrics=False, profile=False),
    )
    fed = run.observability
    assert len(fed.spans) <= 5 * len(topology.clusters)
    assert fed.spans_dropped > 0
    with pytest.raises(ValueError, match="span_capacity"):
        FederationObservability(span_capacity=0)
