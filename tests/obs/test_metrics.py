"""Tests for the labeled metrics registry."""

import math

import pytest

from repro.obs.metrics import MetricsRegistry, registry_of


def test_counter_inc_and_value():
    registry = MetricsRegistry()
    c = registry.counter("soda_test_total", "help", ("service",))
    c.inc(service="web")
    c.inc(2.5, service="web")
    c.inc(service="db")
    assert c.value(service="web") == 3.5
    assert c.value(service="db") == 1.0


def test_counter_rejects_negative_increment():
    registry = MetricsRegistry()
    c = registry.counter("soda_up_total")
    with pytest.raises(ValueError, match="only go up"):
        c.inc(-1.0)


def test_gauge_set_inc_dec():
    registry = MetricsRegistry()
    g = registry.gauge("soda_inflight", labels=("node",))
    g.set(4.0, node="n0")
    g.inc(node="n0")
    g.dec(2.0, node="n0")
    assert g.value(node="n0") == 3.0


def test_histogram_buckets_and_inf():
    registry = MetricsRegistry()
    h = registry.histogram("soda_lat_seconds", buckets=(0.1, 1.0))
    assert h.buckets[-1] == math.inf  # +Inf auto-appended
    h.observe(0.05)
    h.observe(0.5)
    h.observe(100.0)
    child = h.labels()
    assert child.counts == [1, 1, 1]
    assert child.count == 3
    assert child.sum == pytest.approx(100.55)


def test_histogram_rejects_bad_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="sorted"):
        registry.histogram("soda_bad_seconds", buckets=(1.0, 0.1))
    with pytest.raises(ValueError, match="at least one bucket"):
        registry.histogram("soda_empty_seconds", buckets=())


def test_label_shape_is_enforced():
    registry = MetricsRegistry()
    c = registry.counter("soda_shape_total", labels=("a", "b"))
    with pytest.raises(ValueError, match="expected labels"):
        c.inc(a="1")  # missing b
    with pytest.raises(ValueError, match="expected labels"):
        c.inc(a="1", b="2", c="3")  # extra


def test_registration_is_idempotent_for_same_shape():
    registry = MetricsRegistry()
    first = registry.counter("soda_idem_total", labels=("x",))
    again = registry.counter("soda_idem_total", labels=("x",))
    assert first is again
    assert len(registry) == 1


def test_registration_rejects_shape_change():
    registry = MetricsRegistry()
    registry.counter("soda_clash_total", labels=("x",))
    with pytest.raises(ValueError, match="already registered"):
        registry.counter("soda_clash_total", labels=("y",))
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("soda_clash_total", labels=("x",))


def test_invalid_metric_name_rejected():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="invalid metric name"):
        registry.counter("9starts_with_digit")


def test_collect_sorted_and_snapshot():
    registry = MetricsRegistry()
    registry.gauge("soda_z_gauge").set(2.0)
    registry.counter("soda_a_total", labels=("k",)).inc(k="v")
    registry.histogram("soda_m_seconds", buckets=(1.0,)).observe(0.5)
    assert [m.name for m in registry.collect()] == [
        "soda_a_total", "soda_m_seconds", "soda_z_gauge",
    ]
    snap = registry.snapshot()
    assert snap["soda_a_total"] == {("v",): 1.0}
    assert snap["soda_z_gauge"] == {(): 2.0}
    assert snap["soda_m_seconds_sum"] == {(): 0.5}
    assert snap["soda_m_seconds_count"] == {(): 1.0}


def test_registry_of_defaults_to_none():
    class FakeSim:
        pass

    sim = FakeSim()
    assert registry_of(sim) is None
    sim.metrics = MetricsRegistry()
    assert registry_of(sim) is sim.metrics
