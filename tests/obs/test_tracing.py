"""Tests for the span model and the request tracer."""

import pytest

from repro.obs.tracing import RequestTracer, tracer_of


def test_span_lifecycle():
    tracer = RequestTracer()
    span = tracer.start_span("request", lane="client-0", start=1.0)
    assert not span.finished
    assert span.status == "open"
    with pytest.raises(ValueError, match="still open"):
        _ = span.duration
    span.finish(3.5)
    assert span.finished
    assert span.status == "ok"
    assert span.duration == 2.5


def test_span_double_finish_raises():
    tracer = RequestTracer()
    span = tracer.start_span("x", lane="l", start=0.0)
    span.finish(1.0)
    with pytest.raises(ValueError, match="already finished"):
        span.finish(2.0)


def test_span_cannot_end_before_start():
    tracer = RequestTracer()
    span = tracer.start_span("x", lane="l", start=5.0)
    with pytest.raises(ValueError, match="ends before it starts"):
        span.finish(4.0)


def test_span_annotate_merges_attrs():
    tracer = RequestTracer()
    span = tracer.start_span("x", lane="l", start=0.0, service="web")
    span.annotate(node="web@seattle#0").annotate(node="web@tacoma#0", extra=1)
    assert span.attrs == {"service": "web", "node": "web@tacoma#0", "extra": 1}


def test_ids_are_deterministic_sequence_counters():
    def build():
        tracer = RequestTracer()
        root = tracer.start_span("request", lane="c", start=0.0)
        child = tracer.start_span("dispatch", lane="s", start=0.0, parent=root)
        other = tracer.start_span("request", lane="c", start=1.0)
        return [
            (s.context.trace_id, s.context.span_id, s.context.parent_id)
            for s in (root, child, other)
        ]

    first, second = build(), build()
    assert first == second  # no wall-clock / uuid material
    root_ids, child_ids, other_ids = first
    assert child_ids[0] == root_ids[0]  # child shares the trace
    assert child_ids[2] == root_ids[1]  # and points at the root span
    assert other_ids[0] == root_ids[0] + 1  # new request, new trace


def test_capacity_ring_retains_newest_spans():
    tracer = RequestTracer(capacity=2)
    for i in range(5):
        tracer.start_span(f"s{i}", lane="l", start=float(i))
    assert [s.name for s in tracer.spans()] == ["s3", "s4"]
    assert tracer.dropped == 3
    with pytest.raises(ValueError):
        RequestTracer(capacity=0)


def test_epochs_stamp_spans():
    tracer = RequestTracer()
    assert tracer.begin_epoch() == 1
    a = tracer.start_span("a", lane="l", start=0.0)
    assert tracer.begin_epoch() == 2
    b = tracer.start_span("b", lane="l", start=0.0)
    assert (a.epoch, b.epoch) == (1, 2)


def test_roots_children_and_requests():
    tracer = RequestTracer()
    root = tracer.start_span("request", lane="c", start=0.0)
    late = tracer.start_span("tx", lane="n", start=2.0, parent=root)
    early = tracer.start_span("dispatch", lane="s", start=0.0, parent=root)
    root.finish(3.0, "failed")
    other = tracer.start_span("request", lane="c", start=1.0)
    other.finish(2.0)

    assert tracer.roots() == [root, other]
    assert tracer.roots(status="failed") == [root]
    assert tracer.children_of(root) == [early, late]  # start order
    requests = tracer.requests(status="ok")
    assert requests == [(other, [])]
    assert len(tracer.finished_spans()) == 2


def test_to_dict_is_json_ready():
    tracer = RequestTracer()
    span = tracer.start_span("request", lane="c", start=0.25, service="web")
    span.finish(0.75)
    data = span.to_dict()
    assert data["name"] == "request"
    assert data["start"] == 0.25 and data["end"] == 0.75
    assert data["status"] == "ok"
    assert data["attrs"] == {"service": "web"}
    assert data["parent"] is None


def test_tracer_of_defaults_to_none():
    class FakeSim:
        pass

    sim = FakeSim()
    assert tracer_of(sim) is None
    sim.obs_tracer = RequestTracer()
    assert tracer_of(sim) is sim.obs_tracer
