"""End-to-end: spans and metrics over a real traced siege.

The acceptance criterion pinned here: every traced request decomposes
into dispatch / queue_wait / cpu_service / tx segments whose durations
sum — within 1e-9 — to its measured response time.
"""

import pytest

from repro.core import MachineConfig, ResourceRequirement, build_paper_testbed
from repro.core.auth import Credentials
from repro.image.profiles import make_s1_web_content
from repro.obs import Observability, active
from repro.workload.clients import ClientPool
from repro.workload.siege import Siege

SEGMENT_NAMES = ["dispatch", "queue_wait", "cpu_service", "tx"]


@pytest.fixture(scope="module")
def sieged_hub():
    """One traced siege shared by the assertions below."""
    hub = Observability(tracing=True, metrics=True)
    with hub.activate():
        testbed = build_paper_testbed(seed=3)
        repo = testbed.add_repository()
        repo.publish(make_s1_web_content())
        testbed.agent.register_asp("acme", "supersecret")
        testbed.run(
            testbed.agent.service_creation(
                Credentials("acme", "supersecret"), "web", repo, "web-content",
                ResourceRequirement(n=2, machine=MachineConfig()),
            )
        )
        record = testbed.master.get_service("web")
        clients = ClientPool(testbed.lan, n=2)
        siege = Siege(
            testbed.sim, record.switch, clients,
            streams=testbed.streams, dataset_mb=0.5,
        )
        report = testbed.run(siege.run_open_loop(rate_rps=15.0, duration_s=4.0))
    return hub, report


def test_ok_requests_decompose_into_the_four_segments(sieged_hub):
    hub, report = sieged_hub
    requests = hub.tracer.requests(status="ok")
    assert len(requests) == report.completed > 0
    for root, segments in requests:
        assert [s.name for s in segments] == SEGMENT_NAMES
        assert all(s.finished for s in segments)


def test_segments_sum_to_measured_response_time(sieged_hub):
    hub, _report = sieged_hub
    for root, segments in hub.tracer.requests(status="ok"):
        total = sum(s.duration for s in segments)
        assert total == pytest.approx(root.duration, abs=1e-9)


def test_segments_tile_the_request_interval(sieged_hub):
    hub, _report = sieged_hub
    for root, segments in hub.tracer.requests(status="ok"):
        assert segments[0].start == root.start
        assert segments[-1].end == root.end
        for left, right in zip(segments, segments[1:]):
            assert left.end == right.start  # contiguous, no gaps


def test_switch_and_node_metrics_agree_with_the_report(sieged_hub):
    hub, report = sieged_hub
    ok = hub.registry.get("soda_switch_requests_total").value(
        service="web", outcome="ok"
    )
    assert ok == report.completed
    served = hub.registry.get("soda_node_served_total")
    assert sum(child.value for _labels, child in served.samples()) == report.completed
    inflight = hub.registry.get("soda_node_inflight")
    assert all(child.value == 0 for _labels, child in inflight.samples())
    text = hub.prometheus()
    assert "soda_daemon_priming_total" in text
    assert "soda_master_admissions_total" in text
    assert "soda_lan_flushes_total" in text


def test_hub_reporting_surfaces(sieged_hub, tmp_path):
    hub, report = sieged_hub
    breakdown = hub.breakdown(limit=5)
    assert "cpu_service ms" in breakdown
    assert "request" in hub.flame_summary(top=3)
    spans_path = str(tmp_path / "siege.spans.json")
    hub.write_spans(spans_path)
    hub.write_chrome_trace(str(tmp_path / "siege.chrome.json"))
    hub.write_prometheus(str(tmp_path / "siege.prom"))
    from repro.obs.export import load_spans_json

    assert len(load_spans_json(spans_path)) == len(hub.tracer.spans())


def test_ambient_activation_scopes_and_nests():
    assert active() is None
    outer, inner = Observability(), Observability()
    with outer.activate():
        assert active() is outer
        with inner.activate():
            assert active() is inner  # newest wins
        assert active() is outer
    assert active() is None


def test_disabled_pillars_raise_on_use():
    hub = Observability(tracing=False, metrics=False)
    with pytest.raises(ValueError, match="tracing is disabled"):
        hub.breakdown()
    with pytest.raises(ValueError, match="metrics are disabled"):
        hub.prometheus()
    with pytest.raises(ValueError, match="profiling is disabled"):
        hub.kernel_profile()
