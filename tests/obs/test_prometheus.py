"""Tests for the Prometheus text exposition."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import escape_label_value, format_value, render


def test_format_value():
    assert format_value(3.0) == "3"
    assert format_value(0.5) == "0.5"
    assert format_value(float("inf")) == "+Inf"
    assert format_value(float("-inf")) == "-Inf"


def test_escape_label_value():
    assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


def test_counter_exposition_with_help_and_sorted_children():
    registry = MetricsRegistry()
    c = registry.counter("soda_req_total", "Requests.", ("service", "outcome"))
    c.inc(service="web", outcome="shed")
    c.inc(3, service="web", outcome="ok")
    text = render(registry)
    lines = text.splitlines()
    assert lines[0] == "# HELP soda_req_total Requests."
    assert lines[1] == "# TYPE soda_req_total counter"
    # children sort by label values: ("web","ok") < ("web","shed")
    assert lines[2] == 'soda_req_total{service="web",outcome="ok"} 3'
    assert lines[3] == 'soda_req_total{service="web",outcome="shed"} 1'
    assert text.endswith("\n")


def test_histogram_exposition_cumulative_buckets():
    registry = MetricsRegistry()
    h = registry.histogram("soda_lat_seconds", buckets=(0.1, 1.0))
    for value in (0.05, 0.06, 0.5, 9.0):
        h.observe(value)
    lines = render(registry).splitlines()
    assert 'soda_lat_seconds_bucket{le="0.1"} 2' in lines
    assert 'soda_lat_seconds_bucket{le="1"} 3' in lines
    assert 'soda_lat_seconds_bucket{le="+Inf"} 4' in lines
    assert "soda_lat_seconds_count 4" in lines
    assert any(line.startswith("soda_lat_seconds_sum ") for line in lines)


def test_families_sorted_by_name():
    registry = MetricsRegistry()
    registry.gauge("soda_z").set(1.0)
    registry.counter("soda_a_total").inc()
    text = render(registry)
    assert text.index("soda_a_total") < text.index("soda_z")


def test_empty_registry_renders_empty():
    assert render(MetricsRegistry()) == ""


def test_registry_render_shortcut_matches():
    registry = MetricsRegistry()
    registry.counter("soda_x_total").inc()
    assert registry.render() == render(registry)
