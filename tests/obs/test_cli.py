"""Tests for the ``soda-obs`` CLI."""

import json

import pytest

from repro.obs.cli import main
from repro.obs.export import write_federation_profile, write_spans_json
from repro.obs.federation import FederationProfiler
from repro.obs.tracing import RequestTracer


def spans_file(tmp_path):
    tracer = RequestTracer()
    tracer.begin_epoch()
    root = tracer.start_span("request", lane="client-0", start=0.0)
    tracer.start_span("dispatch", lane="node-0", start=0.0, parent=root).finish(0.001)
    tracer.start_span("tx", lane="node-0", start=0.001, parent=root).finish(0.070)
    root.finish(0.070)
    shed = tracer.start_span("request", lane="client-1", start=0.5)
    shed.finish(0.5, "shed")
    path = str(tmp_path / "run.spans.json")
    write_spans_json(path, tracer.spans())
    return path


def test_trace_summary(tmp_path, capsys):
    path = spans_file(tmp_path)
    assert main(["trace-summary", path, "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "2 requests" in out
    assert "1 not-ok" in out
    assert "dispatch" in out


def test_chrome_export_default_output_name(tmp_path, capsys):
    path = spans_file(tmp_path)
    assert main(["chrome-export", path]) == 0
    out_path = path[: -len(".spans.json")] + ".chrome.json"
    assert out_path in capsys.readouterr().out
    with open(out_path) as handle:
        events = json.load(handle)["traceEvents"]
    assert any(e["ph"] == "X" for e in events)


def test_chrome_export_explicit_output(tmp_path):
    path = spans_file(tmp_path)
    out = str(tmp_path / "custom.json")
    assert main(["chrome-export", path, "-o", out]) == 0
    with open(out) as handle:
        assert json.load(handle)["traceEvents"]


def fedprofile_file(tmp_path):
    profiler = FederationProfiler(0.03, {"east": 0, "west": 1})
    profiler.record_epoch({"east": 0.2, "west": 0.1})
    profiler.record_epoch({"east": 0.1, "west": 0.3})
    path = str(tmp_path / "run.fedprofile.json")
    write_federation_profile(path, profiler.to_payload())
    return path


def test_federation_summary(tmp_path, capsys):
    path = fedprofile_file(tmp_path)
    assert main(["federation-summary", path]) == 0
    out = capsys.readouterr().out
    assert "2 shards on 2 workers, 2 epochs" in out
    assert "achievable speedup" in out
    assert "slowest shard" in out


def test_federation_summary_rejects_spans_file(tmp_path):
    path = spans_file(tmp_path)
    with pytest.raises(ValueError, match="soda-fedprofile"):
        main(["federation-summary", path])


def test_chrome_export_federated(tmp_path, capsys):
    path = fedprofile_file(tmp_path)
    assert main(["chrome-export", "--federated", path]) == 0
    # The federated export must not collide with the span export's
    # default name for the same run stem.
    out_path = path[: -len(".json")] + ".chrome.json"
    assert out_path.endswith(".fedprofile.chrome.json")
    assert out_path in capsys.readouterr().out
    with open(out_path) as handle:
        events = json.load(handle)["traceEvents"]
    assert [e for e in events if e["ph"] == "i"], "no barrier instants"
    lanes = {
        e["args"]["name"] for e in events if e["ph"] == "M" and e["tid"] > 0
    }
    assert lanes == {"shard:east [w0]", "shard:west [w1]"}


def test_metrics_dump_validates_and_greps(tmp_path, capsys):
    path = str(tmp_path / "run.prom")
    with open(path, "w") as handle:
        handle.write(
            "# TYPE soda_x_total counter\n"
            'soda_x_total{service="web"} 3\n'
            "soda_y_gauge 0.5\n"
        )
    assert main(["metrics-dump", path]) == 0
    captured = capsys.readouterr()
    assert "soda_y_gauge 0.5" in captured.out
    assert "2 samples ok" in captured.err

    assert main(["metrics-dump", path, "--grep", "soda_x"]) == 0
    out = capsys.readouterr().out
    assert "soda_x_total" in out and "soda_y_gauge" not in out


def test_metrics_dump_rejects_malformed(tmp_path, capsys):
    path = str(tmp_path / "bad.prom")
    with open(path, "w") as handle:
        handle.write("soda_x_total notanumber\n")
    assert main(["metrics-dump", path]) == 1
    assert "non-numeric" in capsys.readouterr().err

    with open(path, "w") as handle:
        handle.write("loneword\n")
    assert main(["metrics-dump", path]) == 1
    assert "malformed" in capsys.readouterr().err
