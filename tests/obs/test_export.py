"""Tests for span export: JSON, Chrome trace events, text tables."""

import json

import pytest

from repro.obs.export import (
    SPANS_FORMAT,
    breakdown_table,
    chrome_trace,
    flame_summary,
    load_spans_json,
    spans_payload,
    write_chrome_trace,
    write_spans_json,
)
from repro.obs.tracing import RequestTracer


def traced_request(tracer, start=0.0, lane="client-0"):
    root = tracer.start_span("request", lane=lane, start=start)
    cursor = start
    for name, width in (
        ("dispatch", 0.001), ("queue_wait", 0.0), ("cpu_service", 0.004), ("tx", 0.065),
    ):
        segment = tracer.start_span(name, lane="node-0", start=cursor, parent=root)
        cursor += width
        segment.finish(cursor)
    root.finish(cursor)
    return root


def test_spans_json_roundtrip(tmp_path):
    tracer = RequestTracer()
    tracer.begin_epoch()
    traced_request(tracer)
    path = str(tmp_path / "run.spans.json")
    write_spans_json(path, tracer.spans())
    loaded = load_spans_json(path)
    assert loaded == [s.to_dict() for s in tracer.spans()]
    assert spans_payload(tracer.spans())["format"] == SPANS_FORMAT


def test_load_rejects_foreign_documents(tmp_path):
    path = str(tmp_path / "bad.json")
    with open(path, "w") as handle:
        json.dump({"format": "other/1", "spans": []}, handle)
    with pytest.raises(ValueError, match="not a soda-spans/1"):
        load_spans_json(path)
    with open(path, "w") as handle:
        json.dump({"format": SPANS_FORMAT}, handle)
    with pytest.raises(ValueError, match="missing span list"):
        load_spans_json(path)


def test_chrome_trace_structure():
    tracer = RequestTracer()
    tracer.begin_epoch()
    traced_request(tracer, start=1.0)
    tracer.start_span("open", lane="node-0", start=2.0)  # open: skipped
    trace = chrome_trace(tracer.spans())
    events = trace["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(spans) == 5  # root + 4 segments; open span skipped
    names = {e["args"]["name"] for e in meta}
    assert {"sim-1", "client-0", "node-0"} <= names
    root = next(e for e in spans if e["name"] == "request")
    assert root["pid"] == 1  # epoch
    assert root["ts"] == pytest.approx(1.0 * 1e6)  # microseconds
    assert root["dur"] == pytest.approx(0.070 * 1e6)
    # lanes map to stable tids within one export
    tid_by_lane = {e["args"]["name"]: e["tid"] for e in meta if e["tid"] != 0}
    for event in spans:
        assert event["tid"] in tid_by_lane.values()


def test_chrome_trace_one_process_per_epoch(tmp_path):
    tracer = RequestTracer()
    tracer.begin_epoch()
    traced_request(tracer)
    tracer.begin_epoch()
    traced_request(tracer)
    trace = chrome_trace(tracer.spans())
    pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"}
    assert pids == {1, 2}
    path = str(tmp_path / "run.chrome.json")
    write_chrome_trace(path, tracer.spans())
    with open(path) as handle:
        assert json.load(handle) == trace


def test_flame_summary_aggregates():
    tracer = RequestTracer()
    traced_request(tracer, start=0.0)
    traced_request(tracer, start=1.0)
    text = flame_summary(tracer.spans())
    lines = text.splitlines()
    assert lines[0].split()[:2] == ["lane", "span"]
    tx_row = next(line for line in lines if " tx " in f" {line} ")
    assert "2" in tx_row.split()  # two tx spans aggregated
    # top=1 keeps only the widest row
    assert len(flame_summary(tracer.spans(), top=1).splitlines()) == 2
    assert flame_summary([]) == "(no finished spans)"


def test_breakdown_table_columns_sum_visibly():
    tracer = RequestTracer()
    traced_request(tracer)
    text = breakdown_table(tracer.requests())
    header, row = text.splitlines()
    for name in ("dispatch", "queue_wait", "cpu_service", "tx"):
        assert name in header
    assert row.split()[1] == "client-0"
    assert breakdown_table([]) == "(no traced requests)"
    assert breakdown_table(tracer.requests(), limit=1) == text
