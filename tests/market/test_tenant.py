"""Tenant registry: budgets, two-phase commit/settle, ASP layering."""

import pytest

from repro.core.auth import ASPRegistry, Credentials
from repro.market import BudgetExceededError, TenantRegistry
from repro.sla.contract import ServiceClass


def test_register_and_lookup():
    reg = TenantRegistry()
    t = reg.register("acme", budget=10.0, bid_per_m_hour=2.0,
                     priority=ServiceClass.GOLD)
    assert "acme" in reg
    assert reg.get("acme") is t
    assert t.priority is ServiceClass.GOLD
    assert t.remaining_budget == pytest.approx(10.0)
    assert len(reg) == 1
    assert reg.names == ["acme"]


def test_duplicate_registration_rejected():
    reg = TenantRegistry()
    reg.register("acme", budget=1.0, bid_per_m_hour=1.0)
    with pytest.raises(ValueError, match="already registered"):
        reg.register("acme", budget=1.0, bid_per_m_hour=1.0)


def test_unknown_tenant_raises():
    with pytest.raises(KeyError, match="not registered"):
        TenantRegistry().get("ghost")


def test_layers_over_asp_registry():
    asps = ASPRegistry()
    reg = TenantRegistry(asps)
    reg.register("acme", budget=5.0, bid_per_m_hour=1.0, secret="s3cret-long")
    account = asps.authenticate(Credentials("acme", "s3cret-long"))
    assert account.name == "acme"


def test_commit_reserves_budget():
    reg = TenantRegistry()
    reg.register("acme", budget=10.0, bid_per_m_hour=1.0)
    reg.commit("acme", 4.0)
    t = reg.get("acme")
    assert t.committed == pytest.approx(4.0)
    assert t.remaining_budget == pytest.approx(6.0)
    with pytest.raises(BudgetExceededError):
        reg.commit("acme", 6.5)
    # The failed commit reserved nothing.
    assert t.committed == pytest.approx(4.0)


def test_settle_converts_commitment_to_spend():
    reg = TenantRegistry()
    reg.register("acme", budget=10.0, bid_per_m_hour=1.0)
    reg.commit("acme", 4.0)
    reg.settle("acme", committed=4.0, actual=2.5)
    t = reg.get("acme")
    assert t.spent == pytest.approx(2.5)
    assert t.committed == pytest.approx(0.0)
    assert t.remaining_budget == pytest.approx(7.5)


def test_settle_cannot_exceed_commitment():
    reg = TenantRegistry()
    reg.register("acme", budget=10.0, bid_per_m_hour=1.0)
    reg.commit("acme", 2.0)
    with pytest.raises(BudgetExceededError):
        reg.settle("acme", committed=2.0, actual=3.0)


def test_release_frees_commitment():
    reg = TenantRegistry()
    reg.register("acme", budget=10.0, bid_per_m_hour=1.0)
    reg.commit("acme", 3.0)
    reg.release("acme", 3.0)
    assert reg.get("acme").remaining_budget == pytest.approx(10.0)


def test_negative_commit_rejected():
    reg = TenantRegistry()
    reg.register("acme", budget=10.0, bid_per_m_hour=1.0)
    with pytest.raises(ValueError, match="negative"):
        reg.commit("acme", -1.0)


def test_credit_and_totals():
    reg = TenantRegistry()
    reg.register("a", budget=10.0, bid_per_m_hour=1.0)
    reg.register("b", budget=10.0, bid_per_m_hour=1.0)
    reg.commit("a", 5.0)
    reg.settle("a", 5.0, 5.0)
    reg.commit("b", 2.0)
    reg.settle("b", 2.0, 1.0)
    reg.credit("a", 0.5)
    assert reg.get("a").credits == pytest.approx(0.5)
    assert reg.total_spent() == pytest.approx(6.0)
    assert reg.over_budget() == []


def test_tenant_validation():
    reg = TenantRegistry()
    with pytest.raises(ValueError):
        reg.register("acme", budget=-1.0, bid_per_m_hour=1.0)
    with pytest.raises(ValueError):
        reg.register("acme", budget=1.0, bid_per_m_hour=-2.0)
