"""Spot-rate billing: segments split at rate changes, never back-billed."""

import pytest

from repro.core.billing import BillingLedger, Invoice


def test_rate_change_splits_open_segment_mid_span():
    ledger = BillingLedger(rate_per_m_hour=1.0)
    ledger.service_started(service="s", asp="acme", now=0.0, m_units=2)
    ledger.set_rate(3.0, now=1800.0)  # half an hour in
    ledger.service_stopped(service="s", now=3600.0)
    # First half-hour at 1.0, second at 3.0: 2 units * (0.5 + 1.5).
    assert ledger.gross("acme", 3600.0) == pytest.approx(4.0)
    segments = ledger.segments
    assert len(segments) == 2
    assert [s.rate_per_m_hour for s in segments] == [1.0, 3.0]
    assert segments[0].end == segments[1].start == 1800.0


def test_rate_change_never_back_bills_closed_usage():
    ledger = BillingLedger(rate_per_m_hour=1.0)
    ledger.service_started(service="s", asp="acme", now=0.0, m_units=1)
    ledger.service_stopped(service="s", now=3600.0)
    before = ledger.gross("acme", 3600.0)
    ledger.set_rate(10.0, now=3600.0)
    assert ledger.gross("acme", 3600.0) == pytest.approx(before)


def test_reprice_at_exact_segment_boundary_no_zero_segment():
    ledger = BillingLedger(rate_per_m_hour=1.0)
    ledger.service_started(service="s", asp="acme", now=100.0, m_units=1)
    # Rate change at the very instant the segment opened: no split, the
    # whole span simply accrues at the new rate.
    ledger.set_rate(2.0, now=100.0)
    ledger.service_stopped(service="s", now=100.0 + 3600.0)
    segments = ledger.segments
    assert len(segments) == 1
    assert segments[0].rate_per_m_hour == 2.0
    assert ledger.gross("acme", 100.0 + 3600.0) == pytest.approx(2.0)


def test_zero_duration_segment_costs_nothing():
    ledger = BillingLedger(rate_per_m_hour=1.0)
    ledger.service_started(service="s", asp="acme", now=50.0, m_units=4)
    ledger.service_stopped(service="s", now=50.0)
    assert ledger.gross("acme", 50.0) == 0.0
    assert ledger.machine_hours("s", 50.0) == 0.0


def test_consecutive_repricings_stack_splits():
    ledger = BillingLedger(rate_per_m_hour=1.0)
    ledger.service_started(service="s", asp="acme", now=0.0, m_units=1)
    ledger.set_rate(2.0, now=900.0)
    ledger.set_rate(4.0, now=1800.0)
    ledger.service_stopped(service="s", now=2700.0)
    # 0.25h each at 1, 2, 4.
    assert ledger.gross("acme", 2700.0) == pytest.approx(0.25 * (1 + 2 + 4))
    assert ledger.rate_history == [(900.0, 2.0), (1800.0, 4.0)]


def test_same_rate_is_a_no_op():
    ledger = BillingLedger(rate_per_m_hour=1.5)
    ledger.service_started(service="s", asp="acme", now=0.0, m_units=1)
    ledger.set_rate(1.5, now=100.0)
    assert ledger.rate_history == []
    assert ledger.n_open == 1


def test_set_rate_validation():
    ledger = BillingLedger()
    with pytest.raises(ValueError):
        ledger.set_rate(-1.0, now=0.0)
    ledger.service_started(service="s", asp="acme", now=100.0, m_units=1)
    with pytest.raises(ValueError):
        ledger.set_rate(2.0, now=50.0)  # before the open segment began


def test_open_segment_accrues_at_current_rate():
    ledger = BillingLedger(rate_per_m_hour=1.0)
    ledger.service_started(service="s", asp="acme", now=0.0, m_units=1)
    ledger.set_rate(5.0, now=3600.0)
    # One hour closed at 1.0, one open hour at 5.0.
    assert ledger.gross("acme", 7200.0) == pytest.approx(6.0)


def test_invoice_detail_nets_credits():
    ledger = BillingLedger(rate_per_m_hour=2.0)
    ledger.service_started(service="s", asp="acme", now=0.0, m_units=1)
    ledger.service_stopped(service="s", now=3600.0)
    ledger.add_credit(service="s", asp="acme", amount=0.5, reason="sla",
                      now=3600.0)
    detail = ledger.invoice_detail("acme", 3600.0)
    assert isinstance(detail, Invoice)
    assert detail.gross == pytest.approx(2.0)
    assert detail.credits == pytest.approx(0.5)
    assert detail.amount_due == pytest.approx(1.5)
    assert ledger.invoice("acme", 3600.0) == pytest.approx(1.5)
